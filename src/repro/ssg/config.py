"""SWIM protocol parameters.

Defaults are calibrated so that a single join propagates to every
member of a ~10-process group in roughly 1–2 seconds, matching the
paper's Fig. 4 (elastic resize ≈ 5 s including the ~3.5 s srun launch)
and §II-E (group-change overhead "in the order of a second" at
``activate``). The paper itself notes the overhead "depends on SSG's
configuration parameters such as how frequently information is
exchanged" — these are those parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SwimConfig"]


@dataclass(frozen=True)
class SwimConfig:
    #: Protocol period: one probe per member per period (seconds).
    period: float = 0.25
    #: Direct-ping ack deadline within a period (seconds).
    ping_timeout: float = 0.08
    #: Number of proxies used for indirect ping-req probes.
    k_indirect: int = 3
    #: Indirect-probe ack deadline (seconds).
    ping_req_timeout: float = 0.15
    #: How long a member stays suspected before being declared dead.
    suspect_timeout: float = 2.0
    #: Max membership updates piggy-backed per protocol message.
    max_piggyback: int = 8
    #: Dissemination multiplier: each update is relayed
    #: ceil(lambda * log2(n + 1)) times.
    dissemination_lambda: float = 3.0
    #: Random jitter applied to each protocol period (fraction of period).
    jitter: float = 0.1
    #: Approximate wire size of one serialized membership update (bytes).
    update_wire_bytes: int = 48

    def transmissions_for(self, group_size: int) -> int:
        """How many times a fresh update should be piggy-backed."""
        import math

        return max(1, math.ceil(self.dissemination_lambda * math.log2(group_size + 1)))
