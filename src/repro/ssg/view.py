"""SWIM membership state: per-member records and update precedence.

This module is pure logic (no simulation dependencies) so the SWIM
precedence rules can be property-tested in isolation. The rules follow
the SWIM paper's order of overriding:

- ``ALIVE(inc=i)``   overrides ``ALIVE(j)`` and ``SUSPECT(j)`` iff ``i > j``
  (a member refutes suspicion by incrementing its incarnation);
- ``SUSPECT(inc=i)`` overrides ``ALIVE(j)`` iff ``i >= j`` and
  ``SUSPECT(j)`` iff ``i > j``;
- ``DEAD``/``LEFT``  override everything and are terminal.
"""

from __future__ import annotations

import enum
from bisect import bisect_left, insort
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.na.address import Address

__all__ = ["MemberState", "MembershipView", "Status", "Update"]


class Status(enum.Enum):
    ALIVE = "alive"
    SUSPECT = "suspect"
    DEAD = "dead"
    LEFT = "left"

    @property
    def terminal(self) -> bool:
        return self in (Status.DEAD, Status.LEFT)


@dataclass(frozen=True)
class Update:
    """A disseminated membership assertion."""

    status: Status
    member: Address
    incarnation: int

    def overrides(self, state: Optional["MemberState"]) -> bool:
        """Whether this update supersedes the current local record."""
        if state is None:
            # Unknown member: any assertion is news. A terminal update
            # about an unknown member is still recorded (tombstone) so
            # that stale ALIVE gossip cannot resurrect it.
            return True
        if state.status.terminal:
            return False
        if self.status in (Status.DEAD, Status.LEFT):
            return True
        if self.status is Status.ALIVE:
            return self.incarnation > state.incarnation
        if self.status is Status.SUSPECT:
            if state.status is Status.ALIVE:
                return self.incarnation >= state.incarnation
            return self.incarnation > state.incarnation
        raise AssertionError(self.status)  # pragma: no cover


@dataclass
class MemberState:
    """Local record about one member."""

    status: Status
    incarnation: int


class MembershipView:
    """One agent's (eventually consistent) picture of the group.

    Passing ``sim`` keeps the module's pure-logic default intact but
    stores the member table in a SimTSan-observable
    :class:`~repro.analysis.simtsan.Shared` container, so reads of the
    view that span a yield point while another task applies an update
    are flagged as races when a detector is installed.
    """

    def __init__(self, self_address: Address, sim=None):
        self.self_address = self_address
        initial = {self_address: MemberState(Status.ALIVE, 0)}
        if sim is None:
            self._members: Dict[Address, MemberState] = initial
        else:
            from repro.analysis.simtsan import Shared

            self._members = Shared(
                initial, sim=sim, label=f"ssg.view@{self_address}"
            )
        # Incrementally maintained sorted list of non-terminal members —
        # the membership *delta* structure. Every churn event adjusts it
        # in O(log n) compares + one memmove instead of the old full
        # sort-per-read; alive()/size() become copy/O(1). Perf-budget
        # tests assert rebuilds stays at 0 outside construction.
        self._alive_sorted: List[Address] = [self_address]
        #: Full re-sorts of the cache (diagnostics; should stay 0).
        self.rebuilds = 0

    # ------------------------------------------------------------------
    def _rebuild_alive(self) -> None:
        """Recompute the sorted-alive cache from scratch (cold path)."""
        self._alive_sorted = sorted(
            addr
            for addr, st in self._members.items()
            if not st.status.terminal
        )
        self.rebuilds += 1

    def alive(self) -> List[Address]:
        """Sorted addresses currently believed alive (incl. suspects,
        which SWIM still treats as members until declared dead)."""
        # Touch the member table so an installed SimTSan detector still
        # observes this as a whole-view read (the cache itself is only
        # ever mutated by apply/forget_terminal, under the same tasks).
        len(self._members)
        return list(self._alive_sorted)

    def status_of(self, member: Address) -> Optional[Status]:
        state = self._members.get(member)
        return state.status if state else None

    def incarnation_of(self, member: Address) -> int:
        state = self._members.get(member)
        return state.incarnation if state else -1

    def contains(self, member: Address) -> bool:
        state = self._members.get(member)
        return state is not None and not state.status.terminal

    def size(self) -> int:
        return len(self._alive_sorted)

    # ------------------------------------------------------------------
    def apply(self, update: Update) -> bool:
        """Apply an update; returns True if it changed the view."""
        state = self._members.get(update.member)
        if not update.overrides(state):
            return False
        # Terminal updates win regardless of incarnation; keep the
        # highest incarnation seen so the record stays monotone.
        incarnation = update.incarnation
        if state is not None:
            incarnation = max(incarnation, state.incarnation)
        self._members[update.member] = MemberState(update.status, incarnation)
        # Delta-maintain the sorted-alive cache. ALIVE<->SUSPECT flips
        # keep membership; only join (unknown/terminal -> non-terminal)
        # and departure (non-terminal -> terminal) move the list.
        was_alive = state is not None and not state.status.terminal
        is_alive = not update.status.terminal
        if is_alive and not was_alive:
            insort(self._alive_sorted, update.member)
        elif was_alive and not is_alive:
            cache = self._alive_sorted
            idx = bisect_left(cache, update.member)
            del cache[idx]
        return True

    def snapshot_updates(self) -> List[Update]:
        """The full view as a list of updates (sent to joiners)."""
        return [
            Update(state.status, addr, state.incarnation)
            for addr, state in sorted(self._members.items())
        ]

    def forget_terminal(self, member: Address) -> None:
        """Drop a tombstone (used by tests / long-running groups)."""
        state = self._members.get(member)
        if state is not None and state.status.terminal:
            del self._members[member]
