"""The SWIM agent: probing, dissemination, join/leave.

One :class:`SSGAgent` runs per staging-area process, attached to that
process's Margo instance as the ``"ssg"`` provider. Its protocol loop
probes one member per period, piggy-backing membership updates on every
message; joins go through any live member listed in the
:class:`GroupFile` (the paper's "connection information file").
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.argo.sync import Mutex
from repro.margo import MargoInstance, Provider
from repro.mercury import RpcError, RpcTimeout
from repro.na.address import Address
from repro.ssg.config import SwimConfig
from repro.ssg.view import MembershipView, Status, Update

__all__ = ["GroupFile", "SSGAgent", "converged"]

#: Observer events.
JOINED, LEFT, DIED = "joined", "left", "died"


class GroupFile:
    """Shared bootstrap information (the paper's connection file).

    Live members add their address on start and remove it on leave;
    joiners read it to find a member to contact.
    """

    def __init__(self, name: str = "colza"):
        self.name = name
        self.addresses: List[Address] = []

    def add(self, address: Address) -> None:
        if address not in self.addresses:
            self.addresses.append(address)

    def remove(self, address: Address) -> None:
        try:
            self.addresses.remove(address)
        except ValueError:
            pass

    def candidates(self) -> List[Address]:
        return list(self.addresses)

    def __len__(self) -> int:
        return len(self.addresses)


class SSGAgent(Provider):
    """SWIM group membership for one process.

    Usage::

        agent = SSGAgent(margo, group_file)
        yield from agent.start()      # founder or joiner, decided by file
        ...
        yield from agent.leave()      # graceful departure
    """

    def __init__(
        self,
        margo: MargoInstance,
        group_file: GroupFile,
        config: Optional[SwimConfig] = None,
        observer: Optional[Callable[[str, Address], None]] = None,
    ):
        super().__init__(margo, "ssg")
        self.config = config or SwimConfig()
        self.group_file = group_file
        self.view = MembershipView(margo.address, sim=margo.sim)
        self.incarnation = 0
        self.observer = observer
        #: Additional membership listeners (invariant monitors, metrics)
        #: notified after ``observer``; see :meth:`add_observer`.
        self._extra_observers: List[Callable[[str, Address], None]] = []
        #: Post-join lifecycle hooks: generators invoked (in order,
        #: inside :meth:`start`, after the protocol loop is running)
        #: with ``joined`` — True when this agent joined an existing
        #: group, False when it founded one. Services layered on SSG
        #: (e.g. the Colza provider's tenant-roster sync, DESIGN §13)
        #: use this to pull state from peers exactly once per join.
        self.on_joined: List[Callable[[bool], Generator]] = []
        self.running = False
        self._outbox: Dict[Update, int] = {}
        self._probe_order: List[Address] = []
        self._probe_idx = 0
        self._loop_ult = None
        self._rng = margo.sim.rng.stream(f"ssg.{margo.address}")
        self._metrics = margo.sim.metrics.scope("ssg")
        #: Serializes start()/leave(): both mutate running/_loop_ult and
        #: block on RPCs in between, so an overlapping pair could start
        #: the protocol loop of an agent that already disseminated LEFT.
        self._lifecycle = Mutex(margo.sim, name=f"ssg.lifecycle@{margo.address}")

        self.export("ping", self._rpc_ping)
        self.export("ping_req", self._rpc_ping_req)
        self.export("join", self._rpc_join)

    # ------------------------------------------------------------------
    @property
    def address(self) -> Address:
        return self.margo.address

    def members(self) -> List[Address]:
        """Sorted addresses this agent currently believes are members."""
        return self.view.alive()

    def add_observer(self, observer: Callable[[str, Address], None]) -> None:
        """Subscribe an extra membership listener (does not displace the
        primary ``observer`` slot the Colza provider owns)."""
        self._extra_observers.append(observer)

    def remove_observer(self, observer: Callable[[str, Address], None]) -> None:
        try:
            self._extra_observers.remove(observer)
        except ValueError:
            pass

    def _notify(self, event: str, member: Address) -> None:
        self._metrics.counter(f"members_{event}").inc()
        if self.observer is not None:
            self.observer(event, member)
        for extra in self._extra_observers:
            extra(event, member)

    # ------------------------------------------------------------------
    # lifecycle
    def start(self) -> Generator:
        """Join (or found) the group and start the protocol loop."""
        if self.running:
            raise RuntimeError("agent already started")
        yield self._lifecycle.acquire()
        with self._lifecycle.held():
            if self.running:
                raise RuntimeError("agent already started")
            candidates = [a for a in self.group_file.candidates() if a != self.address]
            joined = False
            for bootstrap in candidates:
                try:
                    snapshot = yield from self.margo.provider_call(
                        bootstrap,
                        "ssg",
                        "join",
                        self.address,
                        nbytes=self.config.update_wire_bytes,
                        timeout=self.config.ping_req_timeout * 4,
                    )
                except RpcError:
                    continue
                for update in snapshot:
                    self._apply_and_notify(update)
                joined = True
                break
            if candidates and not joined:
                raise RpcError(f"{self.address}: no bootstrap member reachable")
            self.group_file.add(self.address)
            self.running = True
            self._loop_ult = self.margo.spawn(
                self._protocol_loop(), name=f"ssg.loop@{self.address}"
            )
            for hook in list(self.on_joined):
                yield from hook(joined)
        return None

    def leave(self) -> Generator:
        """Gracefully leave: disseminate LEFT directly, then stop."""
        if not self.running:
            return None
        yield self._lifecycle.acquire()
        with self._lifecycle.held():
            if not self.running:
                return None
            update = Update(Status.LEFT, self.address, self.incarnation)
            peers = [a for a in self.view.alive() if a != self.address]
            self._rng.shuffle(peers)
            for peer in peers[: max(self.config.k_indirect, 1)]:
                try:
                    yield from self._send_ping(peer, extra=[update])
                except RpcError:
                    continue
            self.stop()
        return None

    def stop(self, clean_group_file: bool = True) -> None:
        """Hard-stop the protocol loop (crash or post-leave cleanup).

        A *crash* passes ``clean_group_file=False``: the dead process
        cannot scrub its bootstrap entry, so joiners/clients must
        tolerate stale addresses in the group file.
        """
        self.running = False
        if clean_group_file:
            self.group_file.remove(self.address)
        if self._loop_ult is not None and not self._loop_ult.finished:
            self._loop_ult.kill()

    # ------------------------------------------------------------------
    # protocol loop
    def _protocol_loop(self) -> Generator:
        cfg = self.config
        while self.running:
            jitter = 1.0 + cfg.jitter * (2.0 * self._rng.random() - 1.0)
            yield self.margo.sim.timeout(cfg.period * jitter)
            if not self.running:
                return
            target = self._next_probe_target()
            if target is None:
                continue
            yield from self._probe(target)

    def _next_probe_target(self) -> Optional[Address]:
        # Hot path: one call per protocol period per agent. The view's
        # sorted-alive cache makes staleness checks O(1) `contains`
        # probes; the full peer list is only materialized (and shuffled,
        # consuming RNG exactly as often as before) when a round-robin
        # pass is exhausted — SWIM's random-permutation probe order.
        view = self.view
        n = view.size()
        if n == 0 or (n == 1 and view.contains(self.address)):
            return None
        while True:
            if self._probe_idx >= len(self._probe_order):
                order = [a for a in view.alive() if a != self.address]
                if not order:
                    return None
                self._rng.shuffle(order)
                self._probe_order = order
                self._probe_idx = 0
            while self._probe_idx < len(self._probe_order):
                candidate = self._probe_order[self._probe_idx]
                self._probe_idx += 1
                if view.contains(candidate):
                    return candidate

    def _probe(self, target: Address) -> Generator:
        # SWIM §4.2: a ping to a member we hold SUSPECT carries the
        # suspicion explicitly, even after the rumor's retransmission
        # budget is spent — a reachable suspect must always get the
        # chance to refute before the suspicion timer expires.
        sim = self.margo.sim
        self._metrics.counter("probes").inc()
        span = sim.trace.begin("ssg.probe", prober=self.address, target=target)
        extra = None
        if self.view.status_of(target) is Status.SUSPECT:
            extra = [Update(Status.SUSPECT, target, self.view.incarnation_of(target))]
        try:
            yield from self._send_ping(target, extra=extra)
            sim.trace.end(span, outcome="ack")
            return
        except (RpcTimeout, RpcError):
            pass
        acked = yield from self._indirect_probe(target)
        if not acked:
            self._suspect(target)
        sim.trace.end(span, outcome="indirect_ack" if acked else "suspect")

    def _send_ping(self, target: Address, extra: Optional[List[Update]] = None) -> Generator:
        # Fault injection point: suppressed gossip looks exactly like a
        # lost probe — the deadline elapses, then the timeout fires.
        if self.margo.sim.intercept("ssg.gossip", self.address, target):
            yield self.margo.sim.timeout(self.config.ping_timeout)
            raise RpcTimeout(f"ssg ping {self.address}->{target} suppressed")
        updates = self._piggyback()
        if extra:
            updates = list(extra) + updates
        wire = 16 + self.config.update_wire_bytes * len(updates)
        returned = yield from self.margo.provider_call(
            target,
            "ssg",
            "ping",
            (self.address, updates),
            nbytes=wire,
            timeout=self.config.ping_timeout,
        )
        for update in returned:
            self._apply_and_notify(update)
        return True

    def _indirect_probe(self, target: Address) -> Generator:
        proxies = [
            a for a in self.view.alive() if a not in (self.address, target)
        ]
        if not proxies:
            return False
        self._rng.shuffle(proxies)
        proxies = proxies[: self.config.k_indirect]
        attempts = [
            self.margo.sim.spawn(
                self._ping_req_one(proxy, target), name=f"pingreq@{self.address}"
            )
            for proxy in proxies
        ]
        results = yield self.margo.sim.all_of([t.join() for t in attempts])
        return any(results)

    def _ping_req_one(self, proxy: Address, target: Address) -> Generator:
        # Suppression is keyed on (prober, target): indirect probes of a
        # suppressed target fail too, so suspicion can actually form.
        if self.margo.sim.intercept("ssg.gossip", self.address, target):
            yield self.margo.sim.timeout(self.config.ping_req_timeout)
            return False
        try:
            status = yield from self.margo.provider_call(
                proxy,
                "ssg",
                "ping_req",
                (self.address, target, self._piggyback()),
                nbytes=64,
                timeout=self.config.ping_req_timeout,
            )
            return status == "ack"
        except RpcError:
            return False

    # ------------------------------------------------------------------
    # suspicion / refutation
    def _suspect(self, target: Address) -> None:
        inc = self.view.incarnation_of(target)
        update = Update(Status.SUSPECT, target, inc)
        if self._apply_and_notify(update):
            self._metrics.counter("suspicions").inc()
            self._queue_update(update)
            self.margo.sim.spawn(
                self._suspicion_timer(target, inc), name=f"suspicion@{self.address}"
            )

    def _suspicion_timer(self, target: Address, incarnation: int) -> Generator:
        yield self.margo.sim.timeout(self.config.suspect_timeout)
        if not self.running:
            return
        if (
            self.view.status_of(target) is Status.SUSPECT
            and self.view.incarnation_of(target) == incarnation
        ):
            update = Update(Status.DEAD, target, incarnation)
            self._apply_and_notify(update)
            self._queue_update(update)

    # ------------------------------------------------------------------
    # dissemination
    def _queue_update(self, update: Update) -> None:
        self._outbox[update] = self.config.transmissions_for(self.view.size())

    def _piggyback(self) -> List[Update]:
        """Select updates to attach, most-fresh first; decrement budgets."""
        if not self._outbox:
            # Converged steady state: most pings carry nothing — skip
            # the sort/slice machinery entirely.
            return []
        chosen = sorted(self._outbox.items(), key=lambda kv: -kv[1])[
            : self.config.max_piggyback
        ]
        out = []
        for update, remaining in chosen:
            out.append(update)
            if remaining <= 1:
                del self._outbox[update]
            else:
                self._outbox[update] = remaining - 1
        return out

    def _apply_and_notify(self, update: Update) -> bool:
        if update.member == self.address:
            return self._handle_update_about_self(update)
        was_member = self.view.contains(update.member)
        changed = self.view.apply(update)
        if not changed:
            return False
        self._queue_update(update)
        is_member = self.view.contains(update.member)
        if not was_member and is_member:
            self._notify(JOINED, update.member)
        elif was_member and not is_member:
            self._notify(LEFT if update.status is Status.LEFT else DIED, update.member)
        return True

    def _handle_update_about_self(self, update: Update) -> bool:
        """Refute suspicion/death rumors about ourselves (SWIM §4.2)."""
        if update.status in (Status.SUSPECT, Status.DEAD) and update.incarnation >= self.incarnation:
            self.incarnation = update.incarnation + 1
            refutation = Update(Status.ALIVE, self.address, self.incarnation)
            self.view.apply(refutation)
            self._queue_update(refutation)
            return True
        return False

    # ------------------------------------------------------------------
    # RPC handlers
    def _rpc_ping(self, input: Tuple[Address, List[Update]]) -> Generator:
        sender, updates = input
        if self.running and not self.view.contains(sender):
            self._apply_and_notify(Update(Status.ALIVE, sender, 0))
        for update in updates:
            self._apply_and_notify(update)
        yield self.margo.sim.timeout(0)
        return self._piggyback()

    def _rpc_ping_req(self, input: Tuple[Address, Address, List[Update]]) -> Generator:
        origin, target, updates = input
        for update in updates:
            self._apply_and_notify(update)
        try:
            yield from self._send_ping(target)
            return "ack"
        except RpcError:
            return "nack"

    def _rpc_join(self, joiner: Address) -> Generator:
        yield self.margo.sim.timeout(0)
        self._apply_and_notify(Update(Status.ALIVE, joiner, 0))
        return self.view.snapshot_updates()


def converged(agents: List[SSGAgent]) -> bool:
    """True when every running agent's membership equals the set of
    running agents — the Fig. 4 'fully propagated' condition."""
    running = [a for a in agents if a.running]
    if not running:
        return True
    truth = sorted(a.address for a in running)
    return all(a.members() == truth for a in running)
