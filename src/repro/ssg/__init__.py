"""SSG-sim: scalable service groups over the SWIM gossip protocol.

Mochi's SSG gives Colza its elastic group membership: daemons join by
contacting any existing member, leave gracefully (or die and are
detected), and every member converges — *eventually* — on the same
view. The eventual (not immediate) consistency is why Colza adds a 2PC
round at ``activate`` (see :mod:`repro.core.twopc`).

This package implements SWIM itself (Das, Gupta, Motivala, DSN'02), as
the paper's SSG does:

- periodic round-robin **ping** probing with a per-probe timeout;
- **ping-req** indirect probes through ``k`` proxies before suspicion;
- **suspicion** with refutation by incarnation numbers;
- **piggy-backed dissemination** of membership updates on probe
  traffic, each update relayed O(log n) times;
- **join** via any member (full view transfer) and graceful **leave**.
"""

from repro.ssg.agent import GroupFile, SSGAgent, converged
from repro.ssg.config import SwimConfig
from repro.ssg.view import MemberState, MembershipView, Status, Update

__all__ = [
    "GroupFile",
    "MemberState",
    "MembershipView",
    "SSGAgent",
    "Status",
    "SwimConfig",
    "Update",
    "converged",
]
