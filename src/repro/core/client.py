"""The Colza client library: pipeline handles.

Simulation processes interact with pipelines through either a
:class:`PipelineHandle` (one specific server) or — the normal path — a
:class:`DistributedPipelineHandle` referencing the pipeline instances
on every staging server (§II-B):

- ``activate``   drives the client-coordinated 2PC that pins the
  eventually-consistent SSG view into a frozen, agreed view;
- ``stage``      sends a memory handle + metadata to *one* server,
  selected by the block-distribution policy, which then RDMA-pulls;
- ``execute`` / ``deactivate`` broadcast to all frozen-view servers.

Non-blocking variants return background tasks (``i*`` methods), like
the C++ API's request objects.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from repro.core.backoff import backoff_delay
from repro.core.distribution import get_policy
from repro.core.tenancy import DEFAULT_TENANT, qualify
from repro.margo import MargoInstance
from repro.mercury import RpcError
from repro.na.address import Address
from repro.na.payload import payload_nbytes
from repro.sim.kernel import Task
from repro.ssg import GroupFile

__all__ = ["ColzaClient", "DistributedPipelineHandle", "PipelineHandle"]


class ColzaClient:
    """A connection to the staging area from one simulation process.

    A client belongs to one *tenant* (DESIGN §13). The default tenant
    is the unqualified legacy namespace; naming any other tenant makes
    every pipeline handle wire-qualified as ``tenant#name``, so N
    independent simulations share one provider group without their
    registries, activation epochs or staged blocks ever colliding.
    Non-default tenants should :meth:`attach` before use (admission
    control) and :meth:`detach` when done (frees server-side state and
    the admission slot).
    """

    #: Deadline for the per-candidate ``get_view`` probe in
    #: :meth:`connect`. Class-level policy so chaos scenarios and
    #: slow-fabric configs tune it in one place (instances may also
    #: override it per-connection).
    CONTROL_TIMEOUT = 1.0

    def __init__(
        self,
        margo: MargoInstance,
        group_file: GroupFile,
        tenant: str = DEFAULT_TENANT,
    ):
        self.margo = margo
        self.group_file = group_file
        self.tenant = tenant
        self.view: List[Address] = []

    # ------------------------------------------------------------------
    def connect(self) -> Generator:
        """Fetch the current membership view from any live server."""
        last_error: Optional[Exception] = None
        for candidate in self.group_file.candidates():
            try:
                view = yield from self.margo.provider_call(
                    candidate, "colza", "get_view", timeout=self.CONTROL_TIMEOUT
                )
            except RpcError as err:
                last_error = err
                continue
            self.view = list(view)
            return self.view
        raise RpcError(f"no staging server reachable: {last_error}")

    def refresh_view(self) -> Generator:
        return (yield from self.connect())

    def qualified(self, name: str) -> str:
        """The wire-level pipeline name for this client's tenant."""
        return qualify(self.tenant, name)

    def attach(self) -> Generator:
        """Register this client's tenant with every staging server.

        Admission is all-or-nothing: if any server refuses (its
        ``max_tenants`` is reached), the servers already attached are
        detached again and the rejection is raised — a tenant must
        never run on a subset of the group.
        """
        if not self.view:
            yield from self.connect()
        attached: List[Address] = []
        for server in sorted(self.view):
            reply = yield from self.margo.provider_call(
                server, "colza", "tenant_attach", {"tenant": self.tenant},
                timeout=self.CONTROL_TIMEOUT,
            )
            if reply["status"] != "attached":
                for done in attached:
                    try:
                        yield from self.margo.provider_call(
                            done, "colza", "tenant_detach",
                            {"tenant": self.tenant},
                            timeout=self.CONTROL_TIMEOUT,
                        )
                    except RpcError:
                        pass
                raise RpcError(
                    f"tenant {self.tenant!r} rejected by {server}: "
                    f"{reply.get('reason')}"
                )
            attached.append(server)
        return attached

    def detach(self) -> Generator:
        """Drop this tenant everywhere: pipelines, staged data,
        replicas, quota charges and the admission slot. Unreachable
        servers are tolerated (a dead server's state died with it)."""
        if not self.view:
            yield from self.connect()
        detached: List[Address] = []
        for server in sorted(self.view):
            try:
                yield from self.margo.provider_call(
                    server, "colza", "tenant_detach", {"tenant": self.tenant},
                    timeout=self.CONTROL_TIMEOUT,
                )
            except RpcError:
                continue
            detached.append(server)
        return detached

    def pipeline_handle(self, server: Address, name: str) -> "PipelineHandle":
        return PipelineHandle(self, server, self.qualified(name))

    def distributed_pipeline_handle(
        self, name: str, policy: str = "block_id_mod"
    ) -> "DistributedPipelineHandle":
        return DistributedPipelineHandle(self, self.qualified(name), policy=policy)


class PipelineHandle:
    """Handle on one pipeline instance in one specific server."""

    def __init__(self, client: ColzaClient, server: Address, name: str):
        self.client = client
        self.server = server
        self.name = name

    def _call(self, method: str, input: dict, nbytes: Optional[int] = None) -> Generator:
        return (
            yield from self.client.margo.provider_call(
                self.server, "colza", method, input, nbytes=nbytes
            )
        )

    def activate(self, iteration: int) -> Generator:
        """Single-participant activate (prepare + commit on one server).

        The server still enforces its 2PC view check, so this only
        succeeds when it believes it is the entire group — the
        single-server deployments the paper's API also supports.
        """
        vote = yield from self._call(
            "activate_prepare",
            {"pipeline": self.name, "iteration": iteration, "view": [self.server]},
        )
        if vote["vote"] != "yes":
            raise RuntimeError(
                f"single-server activate refused: {vote.get('reason')} "
                f"(server view: {vote.get('view')})"
            )
        return (
            yield from self._call(
                "activate_commit", {"pipeline": self.name, "iteration": iteration}
            )
        )

    def stage(
        self, iteration: int, block_id: int, payload: Any, metadata: Optional[dict] = None
    ) -> Generator:
        handle = self.client.margo.expose(payload)
        return (
            yield from self._call(
                "stage",
                {
                    "pipeline": self.name,
                    "iteration": iteration,
                    "block_id": block_id,
                    "metadata": metadata or {},
                    "handle": handle,
                },
                nbytes=256,  # the RPC ships a handle, not the data
            )
        )

    def execute(self, iteration: int) -> Generator:
        return (yield from self._call("execute", {"pipeline": self.name, "iteration": iteration}))

    def deactivate(self, iteration: int) -> Generator:
        return (yield from self._call("deactivate", {"pipeline": self.name, "iteration": iteration}))


class DistributedPipelineHandle:
    """Handle on the pipeline instances across all staging servers."""

    MAX_ACTIVATE_RETRIES = 50
    #: Deadline for 2PC/control RPCs — a crashed member must not hang
    #: the protocol (fault tolerance, the paper's future work (1)).
    CONTROL_TIMEOUT = 5.0
    #: (base, cap) seconds for the capped exponential backoff between
    #: activate attempts (view churn settles within ~one SWIM period)…
    ACTIVATE_BACKOFF = (0.05, 0.8)
    #: …and between whole-iteration retries (SWIM must detect the dead
    #: member and views must reconverge, which takes longer).
    RETRY_BACKOFF = (0.4, 3.0)

    def __init__(self, client: ColzaClient, name: str, policy: str = "block_id_mod"):
        self.client = client
        self.name = name
        self.policy = get_policy(policy)
        #: The frozen view agreed at the last successful activate.
        self.frozen_view: Tuple[Address, ...] = ()
        #: Merged per-server recovery report from the last
        #: ``activate(recover=True)`` (see :meth:`activate`).
        self.last_recovery: Optional[Dict[str, Any]] = None
        #: Optional deadlines for the data plane. ``stage_timeout``
        #: bounds each stage RPC, ``data_timeout`` bounds execute /
        #: deactivate broadcasts. ``None`` (the default) keeps the
        #: historical wait-forever behaviour for well-behaved fabrics;
        #: chaos scenarios set these so a dropped control message turns
        #: into a retryable RpcTimeout instead of a stuck client.
        self.stage_timeout: Optional[float] = None
        self.data_timeout: Optional[float] = None

    # ------------------------------------------------------------------
    @property
    def margo(self) -> MargoInstance:
        return self.client.margo

    def _backoff(self, attempt: int, base: float, cap: float) -> float:
        """Capped exponential backoff with deterministic jitter.

        The jitter stream is named after this client's endpoint, so
        two clients retrying the same failure de-synchronize instead
        of hammering the servers in lock-step (see
        :func:`repro.core.backoff.backoff_delay`).
        """
        return backoff_delay(
            self.margo.sim, f"colza.backoff.{self.margo.name}", attempt, base, cap
        )

    def _broadcast(
        self,
        method: str,
        input: dict,
        timeout: Optional[float] = None,
        tolerate_errors: bool = False,
    ) -> Generator:
        """Issue an RPC to every server in the frozen view, concurrently.

        With ``tolerate_errors`` each result may be an exception object
        instead of propagating. Without it, the first failure raises
        immediately (fail-fast): a member that crashed mid-execute must
        not stall the client behind its never-answered RPC. Failures in
        the remaining in-flight calls are absorbed, never orphaned.
        """
        sim = self.margo.sim
        servers = list(self.frozen_view)
        if not servers:
            return []
        results: dict = {}
        remaining = [len(servers)]
        complete = sim.event(f"{method}.complete")
        failure = sim.event(f"{method}.failure")

        def one(server):
            try:
                result = yield from self.margo.provider_call(
                    server, "colza", method, input, timeout=timeout
                )
            except RpcError as err:
                if not tolerate_errors:
                    if not failure.fired:
                        failure.succeed((server, err))
                    return
                result = err
            results[server] = result
            remaining[0] -= 1
            if remaining[0] == 0 and not complete.fired:
                complete.succeed()

        for server in servers:
            sim.spawn(one(server), name=f"colza-{method}@{server}")
        idx, value = yield sim.any_of([complete, failure])
        if idx == 1:
            server, err = value
            raise RpcError(f"{method} failed at {server}: {err}")
        return [results[s] for s in servers]

    # ------------------------------------------------------------------
    def activate(
        self,
        iteration: int,
        recover: bool = False,
        expected: Sequence[int] = (),
    ) -> Generator:
        """2PC activate: agree on a frozen view, then commit everywhere.

        With ``recover=True`` the commit asks every member to run the
        replica-recovery phase (DESIGN §11) over data kept from a
        previous failed attempt, before the backend's activate;
        ``expected`` carries the block ids the client staged, so a
        block whose owner and replicas ALL died still gets reported
        instead of silently vanishing. The merged per-server report
        lands in :attr:`last_recovery`: ``present`` (block ids already
        staged somewhere — no client re-stage needed), ``recovered``
        (blocks adopted from replicas), ``missing`` (orphans with no
        surviving replica — the caller must fall back to re-staging).
        """
        if not self.client.view:
            yield from self.client.connect()
        sim = self.margo.sim
        span = sim.trace.begin("colza.activate", pipeline=self.name, iteration=iteration)
        self.last_recovery = None
        proposed = tuple(sorted(self.client.view))
        for attempt in range(self.MAX_ACTIVATE_RETRIES):
            payload = {
                "pipeline": self.name,
                "iteration": iteration,
                "view": list(proposed),
            }

            def prepare_one(server):
                try:
                    vote = yield from self.margo.provider_call(
                        server, "colza", "activate_prepare", payload,
                        timeout=self.CONTROL_TIMEOUT,
                    )
                    return vote
                except RpcError:
                    # Unreachable member: treat as a no-vote; SWIM will
                    # eventually remove it from everyone's views.
                    return {"vote": "no", "reason": "unreachable", "dead": server}

            tasks = [
                sim.spawn(prepare_one(server), name="colza-prepare")
                for server in proposed
            ]
            votes = yield sim.all_of([t.join() for t in tasks])
            if all(v["vote"] == "yes" for v in votes):
                self.frozen_view = proposed
                self.client.view = list(proposed)
                # Recovery commits move block payloads between servers
                # (RDMA pulls), so they get a data-plane budget, not
                # the control-plane one.
                reports = yield from self._broadcast(
                    "activate_commit",
                    {
                        "pipeline": self.name,
                        "iteration": iteration,
                        "recover": recover,
                        "expected": sorted(expected),
                    },
                    timeout=self.data_timeout if recover else self.CONTROL_TIMEOUT,
                )
                tags = {
                    "attempts": attempt + 1,
                    "view": ";".join(str(a) for a in self.frozen_view),
                }
                if recover:
                    present: set = set()
                    missing: set = set()
                    recovered = 0
                    for report in reports:
                        present.update(report.get("held", ()))
                        missing.update(report.get("missing", ()))
                        recovered += report.get("recovered", 0)
                    self.last_recovery = {
                        "present": sorted(present),
                        "missing": sorted(missing),
                        "recovered": recovered,
                    }
                    tags["recovered"] = recovered
                    tags["missing_blocks"] = sorted(missing)
                sim.trace.end(span, **tags)
                return list(self.frozen_view)
            # Abort the prepared servers, adopt a dissenting view, retry.
            self.frozen_view = proposed
            yield from self._broadcast(
                "activate_abort",
                {"pipeline": self.name, "iteration": iteration},
                timeout=self.CONTROL_TIMEOUT,
                tolerate_errors=True,
            )
            dead = {v["dead"] for v in votes if v.get("reason") == "unreachable"}
            adopted = False
            for vote in votes:
                if vote["vote"] == "no" and "view" in vote:
                    proposed = tuple(sorted(set(vote["view"]) - dead))
                    adopted = True
                    break
            if not adopted and dead:
                proposed = tuple(a for a in proposed if a not in dead)
                if not proposed:
                    raise RpcError("activate: no reachable staging servers")
            yield sim.timeout(self._backoff(attempt, *self.ACTIVATE_BACKOFF))
            # Re-read a fresh view occasionally in case of churn.
            if attempt % 5 == 4:
                yield from self.client.refresh_view()
                proposed = tuple(sorted(set(self.client.view) - dead))
        sim.trace.end(span, failed=True)
        raise RpcError(f"activate({iteration}) failed to reach agreement")

    def stage(
        self,
        iteration: int,
        block_id: int,
        payload: Any,
        metadata: Optional[dict] = None,
    ) -> Generator:
        """Stage one block to the policy-selected server."""
        if not self.frozen_view:
            raise RuntimeError("stage before activate")
        sim = self.margo.sim
        span = sim.trace.begin(
            "colza.stage", pipeline=self.name, iteration=iteration, block=block_id
        )
        # The policy sees the wire-level (tenant-qualified) pipeline
        # name, so rendezvous placement keys become
        # ``tenant#pipeline#block`` and never collide across tenants.
        # Only the policy's copy is augmented — the wire metadata stays
        # exactly what the caller staged.
        policy_meta = dict(metadata or {})
        policy_meta.setdefault("pipeline", self.name)
        server = self.policy(block_id, policy_meta, list(self.frozen_view))
        handle = self.margo.expose(payload)
        result = yield from self.margo.provider_call(
            server,
            "colza",
            "stage",
            {
                "pipeline": self.name,
                "iteration": iteration,
                "block_id": block_id,
                "metadata": metadata or {},
                "handle": handle,
            },
            nbytes=256,
            timeout=self.stage_timeout,
        )
        sim.trace.end(span, nbytes=payload_nbytes(payload))
        return result

    def execute(self, iteration: int) -> Generator:
        """Run the pipeline on all servers (collective on their side)."""
        sim = self.margo.sim
        span = sim.trace.begin("colza.execute", pipeline=self.name, iteration=iteration)
        results = yield from self._broadcast(
            "execute",
            {"pipeline": self.name, "iteration": iteration},
            timeout=self.data_timeout,
        )
        sim.trace.end(span)
        return results

    def deactivate(self, iteration: int) -> Generator:
        sim = self.margo.sim
        span = sim.trace.begin("colza.deactivate", pipeline=self.name, iteration=iteration)
        results = yield from self._broadcast(
            "deactivate",
            {"pipeline": self.name, "iteration": iteration},
            timeout=self.data_timeout,
        )
        self.frozen_view = ()
        sim.trace.end(span)
        return results

    def abort(self, iteration: int, keep_data: bool = False) -> Generator:
        """Best-effort teardown of a failed iteration.

        Sends ``deactivate`` to every frozen-view member, tolerating
        unreachable ones, then drops the frozen view. Used for fault
        recovery: after an execute fails because a member died, abort
        the iteration, refresh the view, and re-run it.

        ``keep_data=True`` ends the activation epoch but leaves staged
        blocks and replicas in place, so the re-activation can recover
        them instead of the client re-staging (DESIGN §11).
        """
        results = yield from self._broadcast(
            "deactivate",
            {"pipeline": self.name, "iteration": iteration, "keep_data": keep_data},
            timeout=self.CONTROL_TIMEOUT,
            tolerate_errors=True,
        )
        self.frozen_view = ()
        return results

    def run_resilient_iteration(
        self,
        iteration: int,
        blocks: Sequence[Tuple[int, Any]],
        max_attempts: int = 5,
    ) -> Generator:
        """activate → stage → execute → deactivate, retrying the whole
        iteration if a staging server dies mid-flight (the paper's
        future-work fault tolerance, built from the existing pieces).

        A failed attempt aborts with ``keep_data``, so the retry's
        ``activate(recover=True)`` can rebuild the block distribution
        from surviving primaries and replicas: with
        ``replication_factor=K`` and fewer than ``K`` failures the
        client re-stages **nothing**. Only blocks recovery reports
        ``missing`` force the full re-stage fallback (counted in
        ``core.restage_fallbacks``)."""
        sim = self.margo.sim
        core = sim.metrics.scope("core")
        tenant_scope = sim.metrics.scope(f"tenant.{self.client.tenant}")
        last_error: Optional[Exception] = None
        #: Block ids the servers already hold (confirmed by recovery).
        staged: set = set()
        for attempt in range(max_attempts):
            span = sim.trace.begin(
                "colza.iteration",
                pipeline=self.name,
                iteration=iteration,
                attempt=attempt,
            )
            try:
                recover = bool(staged)
                view = yield from self.activate(
                    iteration, recover=recover, expected=sorted(staged)
                )
                if recover:
                    report = self.last_recovery or {}
                    missing = report.get("missing", [])
                    if missing:
                        # Replicas were insufficient (f >= K for these
                        # blocks): fall back to a full re-stage, and
                        # say which blocks forced it.
                        core.counter("restage_fallbacks").inc()
                        tenant_scope.counter("restage_fallbacks").inc()
                        sim.trace.add("colza.restage_fallback")
                        staged.clear()
                        yield from self.abort(iteration)
                        view = yield from self.activate(iteration)
                    else:
                        staged = set(report.get("present", ()))
                for block_id, payload in blocks:
                    if block_id in staged:
                        continue
                    yield from self.stage(iteration, block_id, payload)
                    staged.add(block_id)
                yield from self.execute(iteration)
                yield from self.deactivate(iteration)
                sim.trace.end(span, outcome="ok")
                core.counter("iterations_completed").inc()
                tenant_scope.counter("iterations_completed").inc()
                return view
            except RpcError as err:
                last_error = err
                exhausted = attempt + 1 >= max_attempts
                sim.trace.end(
                    span,
                    outcome="exhausted" if exhausted else "retry",
                    error=type(err).__name__,
                )
                core.counter("iteration_retries").inc()
                tenant_scope.counter("iteration_retries").inc()
                yield from self.abort(iteration, keep_data=True)
                if exhausted:
                    break
                yield sim.timeout(self._backoff(attempt, *self.RETRY_BACKOFF))
                try:
                    yield from self.client.refresh_view()
                except RpcError:
                    pass
        raise RpcError(
            f"iteration {iteration} failed after {max_attempts} attempts: {last_error}"
        ) from last_error

    # ------------------------------------------------------------------
    # non-blocking variants
    def iactivate(self, iteration: int) -> Task:
        return self.margo.sim.spawn(self.activate(iteration), name="colza-iactivate")

    def istage(self, iteration: int, block_id: int, payload: Any, metadata=None) -> Task:
        return self.margo.sim.spawn(
            self.stage(iteration, block_id, payload, metadata), name="colza-istage"
        )

    def iexecute(self, iteration: int) -> Task:
        return self.margo.sim.spawn(self.execute(iteration), name="colza-iexecute")

    def ideactivate(self, iteration: int) -> Task:
        return self.margo.sim.spawn(self.deactivate(iteration), name="colza-ideactivate")
