"""Closed-loop SLO autoscaler (ROADMAP item 3, DESIGN §16).

The paper leaves "automatic resizing as a response to performance
constraints" to future work; :mod:`repro.core.elasticity` filled that
gap with a reactive threshold band. This module replaces the band with
a *predictive* closed loop:

- **Observe**: :meth:`SloAutoscaler.step_from_trace` reads finished
  ``colza.execute`` spans per tenant from the tracer — the same span
  stream the chaos invariants, the Chrome export and the critical-path
  analyzer consume — and converts each into an invariant *work*
  estimate ``work = execute_seconds x n_servers`` (the stats and render
  backends both divide their per-iteration cost across the frozen
  view, so work is what survives a resize).
- **Predict**: the next iteration's work is the max of the latest
  sample and an EWMA, plus the recent positive trend — a burst that is
  still ramping is extrapolated one step forward, so the controller
  grows *before* the miss rather than one iteration after it.
- **Decide**: the target size is ``ceil(W / (deadline * headroom))``,
  clamped to ``[min_servers, max_servers]``. Growth that is not needed
  to avoid a predicted deadline miss, and every shrink, must *amortize*
  the measured resize cost (the join + pipeline deploy + first
  re-activate spike, seeded from the sec2e bench and updated with every
  actuation this controller performs) over ``amortize_iterations`` —
  that, plus a cooldown and a shrink patience streak, is what keeps a
  flapping straggler from making the group breathe.
- **Actuate, surviving its own failures** (the robustness core):

  =========================  ============================================
  failure mode               response
  =========================  ============================================
  join target crashes        abandon the attempt, quarantine the node,
  mid-join                   retry on a different node with capped
                             jittered backoff; ``resize_failures``++
  join hangs past deadline   same: the attempt is abandoned at
                             ``join_deadline`` and the half-started
                             daemon is crashed (a zombie group-file
                             entry behaves like a real crash)
  shrink races a death       the victim is re-chosen from the *live*
                             SSG view immediately before each ``leave``
                             RPC; a concurrent death that already took
                             the group to target reconciles to a no-op
  telemetry missing/stale    degraded hold: ``controller_degraded``
                             gauge goes to 1 and every decision is a
                             hold — never an exception
  tenant burst               per-tenant resize budgets: a tenant that
                             spent its window's budget stops demanding
                             growth; other tenants' budgets are intact
  =========================  ============================================

Every observation, decision, actuation and failure lands in
:attr:`SloAutoscaler.events` — the replayable record that the chaos
fleet's ``ControllerSafety`` invariant audits (bounds, single resize in
flight, cooldown respected, degraded-instead-of-raise).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Set, Tuple

from repro.core.admin import ColzaAdmin
from repro.core.backoff import backoff_delay, guarded
from repro.core.tenancy import DEFAULT_TENANT, qualify
from repro.sim.kernel import Interrupt

__all__ = ["ControllerEvent", "SloAutoscaler", "SloConfig", "SloDecision", "TenantSlo"]


@dataclass(frozen=True)
class SloConfig:
    """Controller tuning. Everything is in simulated seconds/iterations."""

    #: Per-iteration execute deadline (the SLO) for tenants that don't
    #: set their own.
    deadline: float = 10.0
    min_servers: int = 1
    max_servers: int = 128
    #: Plan to land at ``deadline * headroom`` so ordinary jitter around
    #: the prediction doesn't immediately re-trigger a resize.
    headroom: float = 0.85
    #: Control steps with fresh telemetry to wait after an actuation.
    cooldown_iterations: int = 2
    #: Consecutive steps the group must look oversized before a shrink.
    shrink_patience: int = 3
    #: A resize must pay for itself within this many iterations.
    amortize_iterations: int = 8
    #: Fresh-telemetry-free control steps before degraded mode.
    stale_after_steps: int = 3
    #: Abandon a join (srun + SSG join + pipeline deploy) after this.
    join_deadline: float = 20.0
    #: Abandon a leave (RPC + state migration + departure) after this.
    leave_deadline: float = 20.0
    #: Actuation attempts per resize before giving up until next step.
    max_resize_attempts: int = 3
    #: Capped jittered backoff between actuation attempts.
    backoff_base: float = 0.4
    backoff_cap: float = 3.0
    #: Seed for the measured resize cost EWMA — the join-init +
    #: re-activate spike, ~8 s on the simulated machine (sec2e bench).
    initial_resize_cost: float = 8.0
    resize_cost_alpha: float = 0.5
    #: EWMA weight for the per-tenant work estimate.
    work_alpha: float = 0.4


@dataclass(frozen=True)
class TenantSlo:
    """One tenant's SLO contract on the shared fabric (DESIGN §13)."""

    #: Base pipeline name (unqualified; the wire name is derived).
    pipeline: str = "pipe"
    #: Per-iteration execute deadline; ``None`` uses the global one.
    deadline: Optional[float] = None
    #: Grow actuations chargeable to this tenant per budget window —
    #: the fuse that keeps one tenant's burst from spending the whole
    #: fabric's resize capacity.
    resize_budget: int = 4
    #: Window length, in this tenant's own observations.
    budget_window: int = 16


@dataclass(frozen=True)
class SloDecision:
    action: str  # "grow" | "shrink" | "hold"
    reason: str
    amount: int = 0
    target: int = 0
    degraded: bool = False


@dataclass(frozen=True)
class ControllerEvent:
    """One entry of the controller's replayable event log."""

    t: float
    kind: str  # decision|resize_start|resize_done|resize_failed|degraded|recovered|budget_exhausted|error
    detail: str = ""
    servers: int = 0
    target: int = 0
    #: Control steps with fresh telemetry seen so far (the cooldown
    #: clock the ControllerSafety invariant replays).
    tick: int = 0


@dataclass
class _TenantState:
    works: List[float] = field(default_factory=list)
    #: (execute_seconds, work, n_servers) per observation — kept for
    #: the bench/example counterfactuals ("misses a static group of
    #: size k would have taken").
    records: List[Tuple[float, float, int]] = field(default_factory=list)
    times: List[float] = field(default_factory=list)
    span_cursor: int = 0
    obs: int = 0
    misses: int = 0
    #: Observation indices at which a grow was charged to this tenant.
    charges: List[int] = field(default_factory=list)


class SloAutoscaler:
    """Predictive, failure-surviving elasticity controller.

    Drives the same actuation mechanisms the paper describes (srun +
    SSG join to grow, admin ``leave`` to shrink) against a
    :class:`~repro.core.daemon.Deployment`, observing the tracer.
    ``step_from_trace`` is called once per application iteration (or on
    any cadence); it never raises — internal bugs become ``error``
    events, missing telemetry becomes degraded holds.
    """

    HISTORY = 8

    def __init__(
        self,
        deployment,
        admin_margo,
        library: str,
        config: Optional[dict] = None,
        *,
        pipeline: str = "pipe",
        slo: Optional[SloConfig] = None,
        tenants: Optional[Dict[str, TenantSlo]] = None,
        first_node: int = 8,
    ):
        self.sim = deployment.sim
        self.deployment = deployment
        self.admin_margo = admin_margo
        self.library = library
        self.config = dict(config or {})
        self.slo = slo or SloConfig()
        self.tenants: Dict[str, TenantSlo] = dict(
            tenants if tenants is not None else {DEFAULT_TENANT: TenantSlo(pipeline)}
        )
        self._states: Dict[str, _TenantState] = {
            t: _TenantState() for t in self.tenants
        }
        self._node_cursor = first_node
        #: Nodes a failed join quarantined — never retried.
        self.quarantined: Set[int] = set()
        self.events: List[ControllerEvent] = []
        self.decisions: List[SloDecision] = []
        self.resizes = 0
        self.resize_failures = 0
        self.degraded = False
        self.resize_cost = self.slo.initial_resize_cost
        self._stale_steps = 0
        self._cooldown = 0
        self._shrink_streak = 0
        self._resize_in_flight = False
        self._tick = 0  # control steps that saw fresh telemetry
        self._scope = self.sim.metrics.scope("autoscale")
        self._scope.gauge("controller_degraded").set(0)

    # ------------------------------------------------------------------
    # bookkeeping
    def _wire(self, tenant: str) -> str:
        return qualify(tenant, self.tenants[tenant].pipeline)

    def _deadline(self, tenant: str) -> float:
        own = self.tenants[tenant].deadline
        return self.slo.deadline if own is None else own

    def _event(self, kind: str, detail: str = "", target: int = 0) -> None:
        self.events.append(
            ControllerEvent(
                t=self.sim.now,
                kind=kind,
                detail=detail,
                servers=len(self.deployment.live_daemons()),
                target=target,
                tick=self._tick,
            )
        )

    def slo_misses(self, tenant: str = DEFAULT_TENANT) -> int:
        return self._states[tenant].misses

    def charged_resizes(self, tenant: str = DEFAULT_TENANT) -> int:
        return len(self._states[tenant].charges)

    # ------------------------------------------------------------------
    # observe
    def _ingest(self) -> int:
        """Scan the tracer for newly finished execute spans; returns the
        number of fresh observations across all tenants.

        The cursor advances past everything scanned: the controller is
        stepped between iterations, so a matching span still in flight
        at step time is not expected (and would only cost one sample).
        """
        spans = self.sim.trace.spans
        fresh = 0
        for tenant in sorted(self.tenants):
            st = self._states[tenant]
            wire = self._wire(tenant)
            deadline = self._deadline(tenant)
            for i in range(st.span_cursor, len(spans)):
                s = spans[i]
                if (
                    s.name != "colza.execute"
                    or s.end is None
                    or s.tags.get("pipeline") != wire
                ):
                    continue
                n = max(1, len(self.deployment.live_daemons()))
                work = s.duration * n
                st.works.append(work)
                del st.works[: -self.HISTORY]
                st.records.append((s.duration, work, n))
                st.times.append(self.sim.now)
                del st.times[: -self.HISTORY]
                st.obs += 1
                fresh += 1
                if s.duration > deadline:
                    st.misses += 1
                    self._scope.counter("slo_miss").inc()
            st.span_cursor = len(spans)
        return fresh

    # ------------------------------------------------------------------
    # predict
    def _predict_work(self, st: _TenantState) -> float:
        """Next iteration's work: max(latest, EWMA) + positive trend."""
        ewma = st.works[0]
        for w in st.works[1:]:
            ewma = (1.0 - self.slo.work_alpha) * ewma + self.slo.work_alpha * w
        predicted = max(st.works[-1], ewma)
        if len(st.works) >= 2:
            predicted += max(0.0, st.works[-1] - st.works[-2])
        return predicted

    def _period_estimate(self, st: _TenantState) -> float:
        """EWMA of this tenant's inter-observation time (the iteration
        period the amortization horizon is denominated in)."""
        if len(st.times) < 2:
            return 1.0
        gaps = [b - a for a, b in zip(st.times, st.times[1:])]
        est = gaps[0]
        for g in gaps[1:]:
            est = 0.5 * est + 0.5 * g
        return max(est, 1e-9)

    # ------------------------------------------------------------------
    # decide
    def _budget_left(self, tenant: str) -> int:
        tslo = self.tenants[tenant]
        st = self._states[tenant]
        recent = [o for o in st.charges if st.obs - o < tslo.budget_window]
        return tslo.resize_budget - len(recent)

    def _plan(self, n: int) -> SloDecision:
        slo = self.slo
        needed: Dict[str, int] = {}
        predicted: Dict[str, float] = {}
        for tenant in sorted(self.tenants):
            st = self._states[tenant]
            if not st.works:
                needed[tenant] = slo.min_servers
                continue
            w = self._predict_work(st)
            predicted[tenant] = w
            raw = math.ceil(w / (self._deadline(tenant) * slo.headroom))
            needed[tenant] = min(max(raw, slo.min_servers), slo.max_servers)

        # --- grow: any tenant (with budget) predicting a too-small group
        demanders = [t for t in sorted(needed) if needed[t] > n]
        eligible = []
        for tenant in demanders:
            if self._budget_left(tenant) > 0:
                eligible.append(tenant)
            else:
                self._event("budget_exhausted", detail=tenant, target=needed[tenant])
        if eligible:
            self._shrink_streak = 0
            target = max(needed[t] for t in eligible)
            if self._cooldown > 0:
                return SloDecision("hold", f"cooldown ({self._cooldown} left)")
            miss_imminent = any(
                predicted[t] / n > self._deadline(t) for t in eligible
            )
            if not miss_imminent:
                # Pre-emptive headroom grow: must amortize the resize.
                w = max(predicted[t] for t in eligible)
                saved = (w / n - w / target) * slo.amortize_iterations
                if saved < self.resize_cost:
                    return SloDecision(
                        "hold",
                        f"grow to {target} not amortized "
                        f"({saved:.1f}s < {self.resize_cost:.1f}s)",
                    )
            self._charge(eligible)
            return SloDecision(
                "grow",
                f"predicted execute misses deadline for {','.join(eligible)}",
                amount=target - n,
                target=target,
            )

        # --- shrink: every tenant agrees the group is oversized
        candidates = [needed[t] for t in needed] or [slo.min_servers]
        target = max(max(candidates), slo.min_servers)
        if target >= n:
            self._shrink_streak = 0
            return SloDecision("hold", "within target band", target=n)
        self._shrink_streak += 1
        if self._cooldown > 0:
            return SloDecision("hold", f"cooldown ({self._cooldown} left)")
        if self._shrink_streak < slo.shrink_patience:
            return SloDecision(
                "hold",
                f"oversized, awaiting patience "
                f"({self._shrink_streak}/{slo.shrink_patience})",
                target=target,
            )
        period = max(self._period_estimate(s) for s in self._states.values())
        saved = (n - target) * period * slo.amortize_iterations
        if saved < self.resize_cost:
            return SloDecision(
                "hold",
                f"shrink to {target} not amortized "
                f"({saved:.1f}s < {self.resize_cost:.1f}s)",
                target=target,
            )
        return SloDecision(
            "shrink", "sustained headroom", amount=n - target, target=target
        )

    def _charge(self, tenants: List[str]) -> None:
        for tenant in tenants:
            st = self._states[tenant]
            st.charges.append(st.obs)

    # ------------------------------------------------------------------
    # the control step
    def step_from_trace(self) -> Generator:
        """One closed-loop step: ingest telemetry, decide, actuate.

        Never raises (kernel control-flow exceptions excepted): a bug in
        the loop is recorded as an ``error`` event and the controller
        degrades, because a controller that crashes its host application
        is strictly worse than no controller.
        """
        sim = self.sim
        yield sim.timeout(0)
        try:
            decision = yield from self._step_inner()
        except Interrupt:
            raise
        except Exception as err:  # noqa: BLE001 — the contract is "never crash"
            self._event("error", detail=f"{type(err).__name__}: {err}")
            self._set_degraded(True, f"internal error: {type(err).__name__}")
            decision = SloDecision("hold", "internal error", degraded=True)
        self.decisions.append(decision)
        return decision

    def _set_degraded(self, value: bool, why: str) -> None:
        if value and not self.degraded:
            self._event("degraded", detail=why)
        elif not value and self.degraded:
            self._event("recovered", detail=why)
        self.degraded = value
        self._scope.gauge("controller_degraded").set(1 if value else 0)

    def _step_inner(self) -> Generator:
        sim = self.sim
        slo = self.slo
        fresh = self._ingest()
        tracing = bool(getattr(sim.trace, "enabled", True))
        if fresh == 0:
            self._stale_steps += 1
        else:
            self._stale_steps = 0
            self._tick += 1
            self._cooldown = max(0, self._cooldown - 1)
        if not tracing or (fresh == 0 and self._stale_steps >= slo.stale_after_steps):
            why = "tracing disabled" if not tracing else (
                f"no fresh telemetry for {self._stale_steps} steps"
            )
            self._set_degraded(True, why)
            decision = SloDecision("hold", why, degraded=True)
            self._event("decision", detail=f"hold: {why}")
            return decision
        if fresh > 0 and self.degraded:
            self._set_degraded(False, "telemetry resumed")
        if fresh == 0:
            decision = SloDecision("hold", "no fresh telemetry")
            self._event("decision", detail="hold: no fresh telemetry")
            return decision

        n = len(self.deployment.live_daemons())
        self._scope.gauge("staging_servers").set(n)
        if self._resize_in_flight:
            # Unreachable from a sequential driver; kept as a hard guard
            # so overlapping drivers hold instead of double-actuating.
            decision = SloDecision("hold", "resize in flight")
            self._event("decision", detail="hold: resize in flight")
            return decision
        decision = self._plan(n)
        self._event(
            "decision", detail=f"{decision.action}: {decision.reason}",
            target=decision.target,
        )
        if decision.action == "grow":
            yield from self._actuate(decision, self._actuate_grow)
        elif decision.action == "shrink":
            yield from self._actuate(decision, self._actuate_shrink)
        return decision

    def _actuate(self, decision: SloDecision, body) -> Generator:
        sim = self.sim
        self._resize_in_flight = True
        self._event("resize_start", detail=decision.action, target=decision.target)
        started = sim.now
        try:
            done = yield from body(decision.amount)
        finally:
            self._resize_in_flight = False
        self._cooldown = self.slo.cooldown_iterations
        self._shrink_streak = 0
        if done:
            self.resizes += 1
            self._scope.counter(f"resize_{decision.action}").inc()
            cost = sim.now - started
            a = self.slo.resize_cost_alpha
            self.resize_cost = (1.0 - a) * self.resize_cost + a * cost
            self._event("resize_done", detail=decision.action, target=decision.target)
        else:
            self._event(
                "resize_failed", detail=decision.action, target=decision.target
            )
        self._scope.gauge("staging_servers").set(
            len(self.deployment.live_daemons())
        )
        return done

    # ------------------------------------------------------------------
    # actuation: grow
    def _pick_node(self) -> int:
        total = len(self.deployment.cluster.nodes)
        for _ in range(total):
            node = self._node_cursor % total
            self._node_cursor += 1
            if node not in self.quarantined:
                return node
        # Every node quarantined: reuse anyway rather than refuse.
        node = self._node_cursor % total
        self._node_cursor += 1
        return node

    def _actuate_grow(self, amount: int) -> Generator:
        added = 0
        for _ in range(amount):
            daemon = yield from self._grow_one()
            if daemon is None:
                return False
            added += 1
        return added == amount

    def _grow_one(self) -> Generator:
        """Add one daemon + its pipelines, surviving crash/hang of the
        target: deadline on the whole join, quarantine + different node
        + capped jittered backoff on every failure."""
        sim = self.sim
        slo = self.slo
        for attempt in range(slo.max_resize_attempts):
            node = self._pick_node()
            before = len(self.deployment.daemons)
            task = sim.spawn(
                guarded(self.deployment.add_server(node)), name="autoscale-join"
            )
            idx, value = yield sim.any_of(
                [task.join(), sim.timeout(slo.join_deadline)]
            )
            failure: Optional[str] = None
            if idx == 1:
                failure = f"join exceeded {slo.join_deadline}s deadline"
            elif value[0] == "err":
                failure = f"join failed: {type(value[1]).__name__}"
            if failure is None:
                daemon = value[1]
                if (yield from self._deploy_pipelines(daemon)):
                    return daemon
                failure = f"pipeline deploy failed on {daemon.name}"
            self._abandon(task, before, node, failure)
            yield sim.timeout(
                backoff_delay(
                    sim, "colza.backoff.autoscale", attempt,
                    slo.backoff_base, slo.backoff_cap,
                )
            )
        return None

    def _deploy_pipelines(self, daemon) -> Generator:
        """Deploy every tenant's pipeline on a freshly joined daemon,
        each deploy under the join deadline."""
        sim = self.sim
        for tenant in sorted(self.tenants):
            admin = ColzaAdmin(self.admin_margo, tenant=tenant)
            task = sim.spawn(
                guarded(admin.create_pipeline(
                    daemon.address, self.tenants[tenant].pipeline,
                    self.library, self.config,
                )),
                name="autoscale-deploy",
            )
            idx, value = yield sim.any_of(
                [task.join(), sim.timeout(self.slo.join_deadline)]
            )
            if idx != 0 or value[0] == "err":
                if not task.finished:
                    task.kill()
                return False
        return True

    def _abandon(self, task, before: int, node: int, why: Optional[str]) -> None:
        """Give up on one join attempt: kill the in-flight add, crash
        any half-started daemon it created (its stale group-file entry
        then behaves exactly like a real crash, which SWIM handles),
        and quarantine the node."""
        if not task.finished:
            task.kill()
        for daemon in self.deployment.daemons[before:]:
            try:
                daemon.crash()
            except Exception:  # noqa: BLE001 — already torn down mid-start
                daemon.running = False
        self.quarantined.add(node)
        self.resize_failures += 1
        self._scope.counter("resize_failures").inc()
        self._event("resize_attempt_failed", detail=f"node {node}: {why}")

    # ------------------------------------------------------------------
    # actuation: shrink
    def _actuate_shrink(self, amount: int) -> Generator:
        """Remove ``amount`` servers, reconciling against the live SSG
        view before every ``leave`` — a member death racing the shrink
        counts toward the target instead of double-removing."""
        sim = self.sim
        slo = self.slo
        target = max(
            len(self.deployment.live_daemons()) - amount, slo.min_servers
        )
        failures = 0
        while failures < slo.max_resize_attempts:
            live = sorted(
                self.deployment.live_daemons(), key=lambda d: str(d.address)
            )
            if len(live) <= target:
                return True  # a concurrent death already did the work
            victim = live[-1]
            task = sim.spawn(
                guarded(ColzaAdmin(self.admin_margo).request_leave(victim.address)),
                name="autoscale-leave",
            )
            idx, value = yield sim.any_of(
                [task.join(), sim.timeout(slo.leave_deadline)]
            )
            ok = idx == 0 and value[0] == "ok"
            if ok:
                # The RPC acked; departure (state migration + LEFT) is
                # asynchronous. Wait it out under the same deadline.
                t0 = sim.now
                while victim.running and sim.now - t0 < slo.leave_deadline:
                    yield sim.timeout(0.25)
                ok = not victim.running
            if not ok:
                if not task.finished:
                    task.kill()
                failures += 1
                self.resize_failures += 1
                self._scope.counter("resize_failures").inc()
                self._event(
                    "resize_attempt_failed",
                    detail=f"leave of {victim.name} failed or timed out",
                )
                yield sim.timeout(
                    backoff_delay(
                        sim, "colza.backoff.autoscale", failures - 1,
                        slo.backoff_base, slo.backoff_cap,
                    )
                )
        return len(self.deployment.live_daemons()) <= target
