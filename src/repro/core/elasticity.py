"""Automatic resizing (the paper's future work (2) and §IV-B triggers).

The paper lists several elasticity triggers — application-driven,
user-driven, scheduler-driven — and leaves "automatic resizing as a
response to performance constraints" to future work. This module
implements it:

- :class:`ElasticityPolicy` — a pure decision function with hysteresis:
  keep the pipeline execution time inside a target band by growing or
  shrinking the staging area, with a cooldown so the ~8 s join-init
  spike doesn't trigger oscillation;
- :class:`AutoScaler` — applies decisions to a live deployment through
  the same mechanisms the paper uses (srun + SSG join to grow, admin
  ``leave`` RPC to shrink).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional

from repro.core.admin import ColzaAdmin

__all__ = ["AutoScaler", "Decision", "ElasticityPolicy"]


@dataclass(frozen=True)
class Decision:
    action: str  # "grow" | "shrink" | "hold"
    reason: str
    amount: int = 0


@dataclass
class ElasticityPolicy:
    """Keep execute time within [target_low, target_high] seconds.

    ``cooldown_iterations`` suppresses decisions right after a resize —
    a freshly added server's first execution carries the VTK/Python
    init spike and must not be mistaken for sustained load.
    """

    target_high: float = 10.0
    target_low: float = 2.0
    min_servers: int = 1
    max_servers: int = 128
    grow_step: int = 1
    cooldown_iterations: int = 2

    _cooldown: int = field(default=0, init=False)

    def observe(self, execute_seconds: float, n_servers: int) -> Decision:
        """Feed one iteration's execute time; get a scaling decision."""
        if self._cooldown > 0:
            self._cooldown -= 1
            return Decision("hold", f"cooldown ({self._cooldown + 1} left)")
        if execute_seconds > self.target_high and n_servers < self.max_servers:
            amount = min(self.grow_step, self.max_servers - n_servers)
            self._cooldown = self.cooldown_iterations
            return Decision(
                "grow", f"execute {execute_seconds:.1f}s > {self.target_high}s", amount
            )
        if execute_seconds < self.target_low and n_servers > self.min_servers:
            self._cooldown = self.cooldown_iterations
            return Decision(
                "shrink", f"execute {execute_seconds:.1f}s < {self.target_low}s", 1
            )
        return Decision("hold", "within target band")

    def reset(self) -> None:
        self._cooldown = 0


class AutoScaler:
    """Applies policy decisions to a running ColzaExperiment."""

    def __init__(self, experiment, policy: ElasticityPolicy, next_node: int):
        self.experiment = experiment
        self.policy = policy
        self.next_node = next_node
        self.decisions: List[Decision] = []

    def step(self, execute_seconds: float) -> Generator:
        """Observe one iteration and apply the resulting decision.

        Returns the decision. Generator — growing/shrinking consumes
        simulated time (srun, joins, leave RPCs).
        """
        sim = self.experiment.sim
        core = sim.metrics.scope("core")
        n_servers = len(self.experiment.deployment.live_daemons())
        core.gauge("staging_servers").set(n_servers)
        decision = self.policy.observe(execute_seconds, n_servers)
        self.decisions.append(decision)
        if decision.action == "grow":
            core.counter("scale_grow").inc()
            yield from self.experiment.add_servers_with_pipeline(
                decision.amount, node_index=self.next_node
            )
            self.next_node += 1
        elif decision.action == "shrink":
            core.counter("scale_shrink").inc()
            victim = max(
                self.experiment.deployment.live_daemons(), key=lambda d: d.address
            )
            admin = ColzaAdmin(self.experiment.client_margos[0])
            yield from admin.request_leave(victim.address)
        core.gauge("staging_servers").set(len(self.experiment.deployment.live_daemons()))
        return decision

    def step_from_trace(self, pipeline: Optional[str] = None) -> Generator:
        """Observe the most recent ``colza.execute`` span and act on it.

        Convenience for harnesses that already trace the pipeline: no
        need to thread execute timings through the driver loop. Holds
        (without consuming cooldown) when no execute has finished yet.

        ``pipeline`` restricts the observation to one (wire-level,
        tenant-qualified) pipeline's spans. On a shared multi-tenant
        fabric (DESIGN §13) an unfiltered scaler would react to
        whichever tenant executed last — one noisy neighbor's slow
        renders would grow the group on behalf of everyone else's
        timings.
        """
        sim = self.experiment.sim
        spans = [
            s
            for s in sim.trace.spans
            if s.name == "colza.execute"
            and s.end is not None
            and (pipeline is None or s.tags.get("pipeline") == pipeline)
        ]
        if not spans:
            yield sim.timeout(0)
            return Decision("hold", "no execute span yet")
        return (yield from self.step(spans[-1].duration))
