"""Automatic resizing (the paper's future work (2) and §IV-B triggers).

The paper lists several elasticity triggers — application-driven,
user-driven, scheduler-driven — and leaves "automatic resizing as a
response to performance constraints" to future work. This module
implements it:

- :class:`ElasticityPolicy` — a pure decision function with hysteresis:
  keep the pipeline execution time inside a target band by growing or
  shrinking the staging area, with a cooldown so the ~8 s join-init
  spike doesn't trigger oscillation;
- :class:`AutoScaler` — applies decisions to a live deployment through
  the same mechanisms the paper uses (srun + SSG join to grow, admin
  ``leave`` RPC to shrink), with failure-aware actuation: every resize
  runs under a deadline and retries with capped jittered backoff
  (:mod:`repro.core.backoff`) instead of assuming the target survives.

The *predictive* successor — per-tenant SLOs, amortized resize sizing,
degraded mode, quarantine — is :class:`repro.core.autoscale.SloAutoscaler`
(DESIGN §16); this reactive band is kept as the comparison baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional

from repro.core.admin import ColzaAdmin
from repro.core.backoff import backoff_delay, guarded

__all__ = ["AutoScaler", "Decision", "ElasticityPolicy"]


@dataclass(frozen=True)
class Decision:
    action: str  # "grow" | "shrink" | "hold"
    reason: str
    amount: int = 0


@dataclass
class ElasticityPolicy:
    """Keep execute time within [target_low, target_high] seconds.

    ``cooldown_iterations`` suppresses decisions right after a resize —
    a freshly added server's first execution carries the VTK/Python
    init spike and must not be mistaken for sustained load.
    """

    target_high: float = 10.0
    target_low: float = 2.0
    min_servers: int = 1
    max_servers: int = 128
    grow_step: int = 1
    cooldown_iterations: int = 2

    _cooldown: int = field(default=0, init=False)

    def observe(self, execute_seconds: float, n_servers: int) -> Decision:
        """Feed one iteration's execute time; get a scaling decision."""
        if self._cooldown > 0:
            self._cooldown -= 1
            return Decision("hold", f"cooldown ({self._cooldown + 1} left)")
        if execute_seconds > self.target_high and n_servers < self.max_servers:
            amount = min(self.grow_step, self.max_servers - n_servers)
            self._cooldown = self.cooldown_iterations
            return Decision(
                "grow", f"execute {execute_seconds:.1f}s > {self.target_high}s", amount
            )
        if execute_seconds < self.target_low and n_servers > self.min_servers:
            self._cooldown = self.cooldown_iterations
            return Decision(
                "shrink", f"execute {execute_seconds:.1f}s < {self.target_low}s", 1
            )
        return Decision("hold", "within target band")

    def reset(self) -> None:
        self._cooldown = 0


class AutoScaler:
    """Applies policy decisions to a running ColzaExperiment.

    Actuation is failure-aware: a join (or leave) that hangs past
    :attr:`RESIZE_DEADLINE` or whose target crashes is abandoned and
    retried — on the next node for grows, against the re-reconciled
    live view for shrinks — with capped jittered backoff between
    attempts, and ``core.resize_failures`` counts every abandonment.
    """

    #: Seconds before an in-flight grow/shrink attempt is abandoned.
    RESIZE_DEADLINE = 30.0
    #: (base, cap) seconds for the backoff between actuation attempts.
    RESIZE_BACKOFF = (0.4, 3.0)
    MAX_RESIZE_ATTEMPTS = 3

    def __init__(self, experiment, policy: ElasticityPolicy, next_node: int):
        self.experiment = experiment
        self.policy = policy
        self.next_node = next_node
        self.decisions: List[Decision] = []

    def step(self, execute_seconds: float) -> Generator:
        """Observe one iteration and apply the resulting decision.

        Returns the decision. Generator — growing/shrinking consumes
        simulated time (srun, joins, leave RPCs).
        """
        sim = self.experiment.sim
        core = sim.metrics.scope("core")
        n_servers = len(self.experiment.deployment.live_daemons())
        core.gauge("staging_servers").set(n_servers)
        decision = self.policy.observe(execute_seconds, n_servers)
        self.decisions.append(decision)
        if decision.action == "grow":
            core.counter("scale_grow").inc()
            yield from self._grow(decision.amount)
        elif decision.action == "shrink":
            core.counter("scale_shrink").inc()
            yield from self._shrink()
        core.gauge("staging_servers").set(len(self.experiment.deployment.live_daemons()))
        return decision

    # ------------------------------------------------------------------
    def _backoff(self, attempt: int) -> float:
        base, cap = self.RESIZE_BACKOFF
        return backoff_delay(
            self.experiment.sim, "colza.backoff.autoscaler", attempt, base, cap
        )

    def _grow(self, amount: int) -> Generator:
        """srun + join + pipeline deploy under a deadline; on failure,
        abandon the half-started daemons and retry on the next node."""
        sim = self.experiment.sim
        core = sim.metrics.scope("core")
        deployment = self.experiment.deployment
        for attempt in range(self.MAX_RESIZE_ATTEMPTS):
            before = len(deployment.daemons)
            task = sim.spawn(
                guarded(self.experiment.add_servers_with_pipeline(
                    amount, node_index=self.next_node
                )),
                name="elastic-grow",
            )
            self.next_node += 1
            idx, value = yield sim.any_of(
                [task.join(), sim.timeout(self.RESIZE_DEADLINE)]
            )
            if idx == 0 and value[0] == "ok":
                return True
            if not task.finished:
                task.kill()
            for daemon in deployment.daemons[before:]:
                try:
                    daemon.crash()
                except Exception:  # noqa: BLE001 — torn down mid-start
                    daemon.running = False
            core.counter("resize_failures").inc()
            yield sim.timeout(self._backoff(attempt))
        return False

    def _shrink(self) -> Generator:
        """Admin ``leave`` under a deadline, re-reconciling the victim
        against the live view before every attempt."""
        sim = self.experiment.sim
        core = sim.metrics.scope("core")
        deployment = self.experiment.deployment
        admin = ColzaAdmin(self.experiment.client_margos[0])
        start_live = len(deployment.live_daemons())
        for attempt in range(self.MAX_RESIZE_ATTEMPTS):
            live = deployment.live_daemons()
            if not live or len(live) < start_live:
                return True  # a concurrent death already shrank the group
            victim = max(live, key=lambda d: d.address)
            task = sim.spawn(
                guarded(admin.request_leave(victim.address)), name="elastic-leave"
            )
            idx, value = yield sim.any_of(
                [task.join(), sim.timeout(self.RESIZE_DEADLINE)]
            )
            if idx == 0 and value[0] == "ok":
                return True
            if not task.finished:
                task.kill()
            core.counter("resize_failures").inc()
            yield sim.timeout(self._backoff(attempt))
        return False

    def step_from_trace(self, pipeline: Optional[str] = None) -> Generator:
        """Observe the most recent ``colza.execute`` span and act on it.

        Convenience for harnesses that already trace the pipeline: no
        need to thread execute timings through the driver loop. Holds
        (without consuming cooldown) when no execute has finished yet.

        ``pipeline`` restricts the observation to one (wire-level,
        tenant-qualified) pipeline's spans. On a shared multi-tenant
        fabric (DESIGN §13) an unfiltered scaler would react to
        whichever tenant executed last — one noisy neighbor's slow
        renders would grow the group on behalf of everyone else's
        timings.
        """
        sim = self.experiment.sim
        spans = [
            s
            for s in sim.trace.spans
            if s.name == "colza.execute"
            and s.end is not None
            and (pipeline is None or s.tags.get("pipeline") == pipeline)
        ]
        if not spans:
            yield sim.timeout(0)
            return Decision("hold", "no execute span yet")
        return (yield from self.step(spans[-1].duration))
