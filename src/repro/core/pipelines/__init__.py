"""Concrete Colza pipelines (Catalyst-based).

- :class:`CatalystBackend` — the pipeline class bridging Colza's
  Backend lifecycle to a Catalyst :class:`~repro.catalyst.CoProcessor`,
  rebuilding the MoNA communicator + controller whenever the frozen
  view changes (or running on a static injected MPI communicator for
  the Colza+MPI baseline);
- the three application scripts used throughout the evaluation:
  :class:`IsoSurfaceScript` (Mandelbulb, Gray–Scott) and
  :class:`DWIVolumeScript` (Deep Water Impact).

Importing this module registers the pipeline "libraries":
``libcolza-iso.so`` and ``libcolza-dwi.so``.
"""

from repro.core.pipelines.catalyst_backend import MPI_COMM_REGISTRY, CatalystBackend
from repro.core.pipelines.histogram import HistogramScript
from repro.core.pipelines.scripts import DWIVolumeScript, IsoSurfaceScript
from repro.core.pipelines.stats import FieldStats, StatisticsBackend

__all__ = [
    "CatalystBackend",
    "DWIVolumeScript",
    "FieldStats",
    "HistogramScript",
    "IsoSurfaceScript",
    "MPI_COMM_REGISTRY",
    "StatisticsBackend",
]
