"""A stateful pipeline: running statistics with migration on leave.

The paper's future work (3): "enable state-full pipelines, for which
shutting down a process requires data migration". This backend keeps
running statistics (count/sum/min/max per field) across iterations on
each server; when a server is asked to leave, its accumulated state is
migrated to a surviving member before shutdown, so the union of all
servers' state is invariant under resizing.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Generator, List, Optional

import numpy as np

from repro.core.backend import Backend, register_backend
from repro.na.address import Address
from repro.na.payload import VirtualPayload

__all__ = ["FieldStats", "StatisticsBackend"]


class FieldStats:
    """Mergeable running statistics for one field."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self, count: int = 0, total: float = 0.0,
                 minimum: float = math.inf, maximum: float = -math.inf):
        self.count = count
        self.total = total
        self.minimum = minimum
        self.maximum = maximum

    def update(self, values: np.ndarray) -> None:
        if values.size == 0:
            return
        self.count += int(values.size)
        self.total += float(values.sum())
        self.minimum = min(self.minimum, float(values.min()))
        self.maximum = max(self.maximum, float(values.max()))

    def merge(self, other: "FieldStats") -> None:
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def to_wire(self) -> Dict[str, float]:
        return {
            "count": self.count, "total": self.total,
            "minimum": self.minimum, "maximum": self.maximum,
        }

    @classmethod
    def from_wire(cls, wire: Dict[str, float]) -> "FieldStats":
        return cls(int(wire["count"]), wire["total"], wire["minimum"], wire["maximum"])


class StatisticsBackend(Backend):
    """Accumulates per-field statistics over all staged blocks, across
    iterations. Stateful: supports get_state/merge_state for migration.

    Config keys: ``fields`` (list of field names; default: every point
    field found), ``bytes_per_second`` (stat-update throughput for the
    cost model; default 2 GB/s).
    """

    stateful = True

    def __init__(self, margo, name: str, config: Optional[Dict[str, Any]] = None):
        super().__init__(margo, name, config)
        self.fields: Optional[List[str]] = self.config.get("fields")
        self.bytes_per_second = float(self.config.get("bytes_per_second", 2e9))
        self.stats: Dict[str, FieldStats] = {}
        self.iterations_seen: List[int] = []
        self.provider = None

    # ------------------------------------------------------------------
    def execute(self, iteration: int) -> Generator:
        for block in self.blocks(iteration):
            payload = block.payload
            if isinstance(payload, VirtualPayload):
                yield from self.margo.compute(payload.nbytes / self.bytes_per_second)
                continue
            point_data = getattr(payload, "point_data", None)
            if point_data is None:
                continue
            names = self.fields if self.fields is not None else list(point_data)
            for field_name in names:
                values = np.asarray(point_data[field_name], dtype=np.float64)
                yield from self.margo.compute(values.nbytes / self.bytes_per_second)
                self.stats.setdefault(field_name, FieldStats()).update(values.ravel())
        self.iterations_seen.append(iteration)
        return None

    # ------------------------------------------------------------------
    # state migration
    def get_state(self) -> Dict[str, Any]:
        return {
            "stats": {name: s.to_wire() for name, s in self.stats.items()},
            "iterations_seen": list(self.iterations_seen),
        }

    def merge_state(self, state: Dict[str, Any]) -> None:
        for name, wire in state.get("stats", {}).items():
            incoming = FieldStats.from_wire(wire)
            self.stats.setdefault(name, FieldStats()).merge(incoming)
        for it in state.get("iterations_seen", []):
            if it not in self.iterations_seen:
                self.iterations_seen.append(it)

    @property
    def state_nbytes(self) -> int:
        return 64 * max(len(self.stats), 1)


register_backend("libcolza-stats.so", StatisticsBackend)
