"""The Catalyst-based Colza pipeline backend.

This is the pipeline class the evaluation deploys everywhere. On
``activate`` with a changed frozen view it rebuilds the MoNA
communicator from the view's addresses and re-installs the VTK global
controller (the full §II-D injection chain); on ``execute`` it runs the
Catalyst co-processor over the staged blocks.

For the **Colza+MPI baseline** (Figs. 5-8), a pipeline configured with
``{"controller": "mpi"}`` instead uses a pre-provisioned static MPI
communicator from :data:`MPI_COMM_REGISTRY` (keyed by daemon name) —
and therefore cannot follow membership changes, exactly the limitation
the paper works around.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from repro.catalyst import CoProcessor
from repro.catalyst.costs import PipelineCostModel
from repro.catalyst.script import CatalystScript
from repro.core.backend import Backend, register_backend
from repro.core.provider import mona_address_of
from repro.na.address import Address
from repro.vtk.parallel import MonaController, MPIController

__all__ = ["CatalystBackend", "MPI_COMM_REGISTRY"]

#: daemon name -> static MpiComm, provisioned by MPI-mode deployments.
MPI_COMM_REGISTRY: Dict[str, Any] = {}


class CatalystBackend(Backend):
    """Backend running a Catalyst co-processor.

    Config keys:

    - ``script``: a :class:`CatalystScript` instance (required);
    - ``controller``: ``"mona"`` (default, elastic) or ``"mpi"``;
    - ``width``/``height``: image size;
    - ``costs``: optional :class:`PipelineCostModel` override;
    - ``camera``: optional fixed camera.
    """

    def __init__(self, margo, name: str, config: Optional[Dict[str, Any]] = None):
        super().__init__(margo, name, config)
        script = self.config.get("script")
        if not isinstance(script, CatalystScript):
            raise ValueError("CatalystBackend requires a CatalystScript in config['script']")
        self.script = script
        self.mode = self.config.get("controller", "mona")
        if self.mode not in ("mona", "mpi"):
            raise ValueError(f"unknown controller mode {self.mode!r}")
        self.coproc = CoProcessor(
            name=f"{name}@{margo.name}",
            costs=self.config.get("costs") or PipelineCostModel(),
            width=self.config.get("width", 256),
            height=self.config.get("height", 256),
        )
        self.camera = self.config.get("camera")
        self.comm = None
        self._last_view: tuple = ()
        self.last_results: Optional[dict] = None
        self.executions = 0
        self.provider = None  # set by ColzaProvider.create_pipeline
        self._abort = None  # Event armed while an execution is in flight
        self._abort_reason: Optional[str] = None

    # ------------------------------------------------------------------
    def activate(self, iteration: int, view: List[Address]) -> Generator:
        yield from super().activate(iteration, view)
        # A fresh 2PC-agreed view supersedes any earlier failure.
        self._abort_reason = None
        if self.mode == "mpi":
            if self.comm is None:
                try:
                    self.comm = MPI_COMM_REGISTRY[self.margo.name]
                except KeyError:
                    raise RuntimeError(
                        f"no static MPI communicator provisioned for {self.margo.name} "
                        "(MPI mode cannot build communicators at run time)"
                    ) from None
                self.coproc.initialize(self.script, MPIController(self.comm))
            elif tuple(view) != self._last_view and self._last_view:
                raise RuntimeError(
                    "membership changed but the MPI world is frozen — "
                    "this is why Colza uses MoNA"
                )
            self._last_view = tuple(view)
            return None
        # MoNA mode: rebuild the communicator when the view changed.
        if tuple(view) != self._last_view:
            mona_addrs = [mona_address_of(a) for a in view]
            self.comm = self.provider.mona.comm_create(mona_addrs)
            controller = MonaController(self.comm)
            if self.coproc.script is None:
                self.coproc.initialize(self.script, controller)
            else:
                self.coproc.update_controller(controller)
            self._last_view = tuple(view)
        return None

    def execute(self, iteration: int) -> Generator:
        sim = self.margo.sim
        span = sim.trace.begin(
            "pipeline.execute", pipeline=self.name, server=self.margo.name,
            iteration=iteration,
        )
        if self._abort_reason is not None:
            sim.trace.end(span, aborted=True)
            raise RuntimeError(f"execution aborted: {self._abort_reason}")
        payloads = [b.payload for b in self.blocks(iteration)]
        # Run the co-processor as a child task raced against the abort
        # event: if a frozen-view member dies, its collectives can never
        # complete, so the provider fires the abort and we fail the RPC
        # instead of hanging (fault tolerance, paper future work (1)).
        self._abort = sim.event(f"{self.name}.abort")
        child = sim.spawn(
            self.coproc.coprocess(
                iteration, payloads, charge=self.margo.compute, camera=self.camera
            ),
            name=f"{self.name}.coprocess",
        )
        idx, value = yield sim.any_of([child.join(), self._abort])
        self._abort = None
        if idx == 1:
            child.kill()
            sim.trace.end(span, aborted=True)
            raise RuntimeError(f"execution aborted: {value}")
        sim.trace.end(span)
        self.executions += 1
        if value is not None:
            self.last_results = value
        return None

    def abort_execution(self, reason: str) -> None:
        self._abort_reason = reason
        if self._abort is not None and not self._abort.fired:
            self._abort.succeed(reason)

    def destroy(self) -> None:
        super().destroy()
        self.comm = None


def _factory(margo, name: str, config: Optional[dict]) -> CatalystBackend:
    return CatalystBackend(margo, name, config)


# The 'shared libraries' the admin can load by name.
register_backend("libcolza-catalyst.so", _factory)
register_backend("libcolza-iso.so", _factory)
register_backend("libcolza-dwi.so", _factory)
