"""Catalyst scripts for the three evaluation applications.

Each script handles both payload modes transparently:

- **real datasets** (ImageData / UnstructuredGrid): run the actual
  filters and renderer, charging the calibrated cost of the actual
  sizes — used by examples and correctness tests;
- **virtual payloads**: charge the same cost model from declared sizes
  and emit an empty local frame; compositing still runs for real, so
  communication behaviour is identical — used by the paper-scale
  benchmarks.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence, Tuple

import numpy as np

from repro.catalyst.costs import cells_of
from repro.catalyst.script import CatalystScript, RenderContext
from repro.mona.ops import MAX, MIN
from repro.na.payload import VirtualPayload
from repro.vtk.dataset import ImageData, MultiBlockDataSet, PolyData, UnstructuredGrid
from repro.vtk.filters import clip_polydata, contour, merge_blocks, resample_to_image
from repro.vtk.render import Camera, CompositeImage, rasterize, volume_render

__all__ = ["DWIVolumeScript", "IsoSurfaceScript"]


def _global_bounds(ctx: RenderContext, local_bounds: Optional[np.ndarray]) -> Optional[np.ndarray]:
    """Allreduce (min, max) of block bounds across the staging area."""
    if local_bounds is None:
        sentinel = np.array([np.inf, -np.inf] * 3)
    else:
        sentinel = local_bounds
    mins = yield from ctx.controller.communicator.allreduce(sentinel[0::2], op=MIN)
    maxs = yield from ctx.controller.communicator.allreduce(sentinel[1::2], op=MAX)
    if not np.all(np.isfinite(mins)):
        return None
    bounds = np.empty(6)
    bounds[0::2] = mins
    bounds[1::2] = maxs
    return bounds


def _bounds_array(bounds: Tuple[float, ...]) -> np.ndarray:
    return np.asarray(bounds, dtype=np.float64)


class IsoSurfaceScript(CatalystScript):
    """Iso-surface (optionally clipped) rendering — the Mandelbulb and
    Gray–Scott pipelines (Figs. 3, 5, 6, 8, 9)."""

    name = "iso-surface"

    def __init__(
        self,
        field: str,
        isovalues: Sequence[float],
        color_field: Optional[str] = None,
        clip: Optional[Tuple[Tuple[float, float, float], Tuple[float, float, float]]] = None,
        frequency: int = 1,
        cmap: str = "viridis",
    ):
        super().__init__(frequency)
        self.field = field
        self.isovalues = list(isovalues)
        self.color_field = color_field or field
        self.clip = clip
        self.cmap = cmap

    def run(self, ctx: RenderContext) -> Generator:
        pieces: List[PolyData] = []
        local_bounds: Optional[np.ndarray] = None
        for payload in ctx.blocks:
            if isinstance(payload, VirtualPayload):
                yield from ctx.charge(ctx.costs.contour(cells_of(payload)))
                continue
            if not isinstance(payload, ImageData):
                raise TypeError(f"iso pipeline expects ImageData, got {type(payload)}")
            yield from ctx.charge(ctx.costs.contour(payload.num_cells))
            piece = contour(
                payload, self.isovalues, self.field,
                interpolate_fields=[self.color_field] if self.color_field != self.field else None,
            )
            if self.clip is not None and piece.num_triangles:
                yield from ctx.charge(ctx.costs.clip(piece.num_triangles))
                piece = clip_polydata(piece, *self.clip)
            if piece.num_points:
                pieces.append(piece)
                b = _bounds_array(payload.bounds)
                local_bounds = b if local_bounds is None else _merge_bounds(local_bounds, b)

        surface = PolyData.concatenate(pieces)
        bounds = yield from _global_bounds(ctx, local_bounds)
        camera = ctx.camera or (Camera.fit(tuple(bounds)) if bounds is not None else None)
        yield from ctx.charge(ctx.costs.raster(ctx.width * ctx.height))
        if camera is not None and surface.num_triangles:
            local_image = rasterize(
                surface, camera, ctx.width, ctx.height,
                color_field=self.color_field, cmap=self.cmap,
            )
        else:
            local_image = CompositeImage.blank(ctx.width, ctx.height, brick_depth=float(ctx.rank))
        image = yield from ctx.composite(local_image, op="zbuffer")
        ctx.results["image"] = image
        ctx.results["local_triangles"] = surface.num_triangles
        return None


class DWIVolumeScript(CatalystScript):
    """Merge blocks + volume-render the unstructured mesh, colored by
    velocity — the Deep Water Impact pipeline (Figs. 1b, 7, 10)."""

    name = "dwi-volume"

    def __init__(
        self,
        field: str = "velocity",
        grid_dims: Tuple[int, int, int] = (48, 48, 48),
        frequency: int = 1,
        cmap: str = "coolwarm",
    ):
        super().__init__(frequency)
        self.field = field
        self.grid_dims = tuple(grid_dims)
        self.cmap = cmap

    def run(self, ctx: RenderContext) -> Generator:
        real_blocks: List[UnstructuredGrid] = []
        virtual_cells = 0
        for payload in ctx.blocks:
            if isinstance(payload, VirtualPayload):
                # Virtual DWI files declare bytes; ~50 bytes per cell.
                virtual_cells += payload.nbytes // 50
            elif isinstance(payload, UnstructuredGrid):
                real_blocks.append(payload)
            else:
                raise TypeError(f"dwi pipeline expects UnstructuredGrid, got {type(payload)}")

        total_cells = virtual_cells + sum(b.num_cells for b in real_blocks)
        yield from ctx.charge(ctx.costs.merge(total_cells))
        yield from ctx.charge(ctx.costs.volume(total_cells))
        yield from ctx.charge(ctx.costs.raster(ctx.width * ctx.height))

        local_bounds = None
        merged = None
        if real_blocks:
            merged = merge_blocks(MultiBlockDataSet(list(real_blocks)))
            if merged.num_points:
                local_bounds = _bounds_array(merged.bounds)
        bounds = yield from _global_bounds(ctx, local_bounds)

        if merged is not None and merged.num_points and bounds is not None:
            camera = ctx.camera or Camera.fit(tuple(bounds))
            sampled = resample_to_image(merged, self.grid_dims, fields=[self.field])
            local_image = volume_render(
                sampled, self.field, camera=camera,
                width=ctx.width, height=ctx.height, cmap=self.cmap,
            )
        else:
            local_image = CompositeImage.blank(ctx.width, ctx.height, brick_depth=float(ctx.rank))
        image = yield from ctx.composite(local_image, op="over")
        ctx.results["image"] = image
        ctx.results["local_cells"] = total_cells
        return None


def _merge_bounds(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    out = a.copy()
    out[0::2] = np.minimum(a[0::2], b[0::2])
    out[1::2] = np.maximum(a[1::2], b[1::2])
    return out
