"""A distributed-histogram pipeline.

§II-C motivates MoNA with "even a pipeline as simple as computing an
average across the data received by multiple staging servers needs a
reduction operation". This script is that pipeline, generalized: a
global histogram (plus min/max/mean) of a field across every staged
block on every server, computed with MoNA collectives:

1. allreduce(MIN/MAX) to agree on the value range;
2. local vectorized binning;
3. allreduce(SUM) of the bin counts.

Works on real datasets (exact counts) and virtual payloads (charges
compute, contributes empty bins).
"""

from __future__ import annotations

from typing import Generator, Optional, Tuple

import numpy as np

from repro.catalyst.script import CatalystScript, RenderContext
from repro.mona.ops import MAX, MIN, SUM
from repro.na.payload import VirtualPayload

__all__ = ["HistogramScript"]


class HistogramScript(CatalystScript):
    name = "histogram"

    def __init__(self, field: str, bins: int = 32, frequency: int = 1,
                 value_range: Optional[Tuple[float, float]] = None):
        super().__init__(frequency)
        if bins < 1:
            raise ValueError("bins must be >= 1")
        self.field = field
        self.bins = bins
        self.value_range = value_range

    def _local_values(self, ctx: RenderContext) -> Generator:
        chunks = []
        for payload in ctx.blocks:
            if isinstance(payload, VirtualPayload):
                yield from ctx.charge(payload.nbytes / 2e9)
                continue
            point_data = getattr(payload, "point_data", None)
            if point_data is None or self.field not in point_data:
                continue
            values = np.asarray(point_data[self.field], dtype=np.float64).ravel()
            yield from ctx.charge(values.nbytes / 2e9)
            chunks.append(values)
        return np.concatenate(chunks) if chunks else np.empty(0)

    def run(self, ctx: RenderContext) -> Generator:
        values = yield from self._local_values(ctx)
        comm = ctx.controller.communicator

        if self.value_range is not None:
            lo, hi = self.value_range
        else:
            local_min = float(values.min()) if values.size else np.inf
            local_max = float(values.max()) if values.size else -np.inf
            lo = yield from comm.allreduce(local_min, op=MIN)
            hi = yield from comm.allreduce(local_max, op=MAX)
        if not np.isfinite(lo) or not np.isfinite(hi):
            ctx.results["histogram"] = np.zeros(self.bins, dtype=np.int64)
            ctx.results["range"] = (np.nan, np.nan)
            ctx.results["count"] = 0
            return None
        if hi <= lo:
            hi = lo + 1.0

        local_counts, edges = np.histogram(values, bins=self.bins, range=(lo, hi))
        counts = yield from comm.allreduce(local_counts.astype(np.int64), op=SUM)
        local_sum = float(values.sum()) if values.size else 0.0
        total_sum = yield from comm.allreduce(local_sum, op=SUM)
        total_count = yield from comm.allreduce(int(values.size), op=SUM)

        ctx.results["histogram"] = counts
        ctx.results["edges"] = edges
        ctx.results["range"] = (lo, hi)
        ctx.results["count"] = total_count
        ctx.results["mean"] = total_sum / total_count if total_count else np.nan
        return None
