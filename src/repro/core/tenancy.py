"""Multi-tenant staging fabric (DESIGN §13).

The paper's deployment model is one simulation driving one staging
area. This module turns the staging service into a shared fabric: N
independent simulations (*tenants*) attach to one provider group, each
with its own namespaced pipeline registry, its own 2PC activation
epochs, and its own staged-block/replica ownership — while providers
multiplex them with admission control, per-tenant quotas enforced at
``stage`` time with backpressure, and fair-share scheduling of execute
work across Argobots pools.

Namespacing is structural, not advisory: a tenant's pipeline ``render``
travels on the wire as ``<tenant>#render``, so every table keyed by
pipeline name — the provider's pipeline registry, the ``(pipeline,
iteration)`` activation-epoch map, the replica store, and the
rendezvous placement keys ``tenant#pipeline#iteration#block_id`` in
:mod:`repro.core.distribution` / :mod:`repro.core.replication` — is
per-tenant automatically, and one tenant's abort, crash recovery, or
deactivate cannot even *name* another tenant's state.

The ``default`` tenant is the unqualified namespace: legacy clients
that never mention tenancy keep exactly their old wire protocol and
their old behaviour (pinned chaos digests included).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

__all__ = [
    "DEFAULT_TENANT",
    "TENANT_SEP",
    "TenancyConfig",
    "TenantQuota",
    "TenantRegistry",
    "base_name",
    "qualify",
    "tenant_of",
]

#: The unqualified namespace legacy clients live in.
DEFAULT_TENANT = "default"
#: Separator between tenant and pipeline in qualified names. Chosen to
#: match the replication layer's ``pipeline#iteration#block_id`` block
#: keys, so a qualified pipeline yields exactly the
#: ``tenant#pipeline#iteration#block_id`` placement keys of DESIGN §13.
TENANT_SEP = "#"


def qualify(tenant: str, name: str) -> str:
    """The wire-level pipeline name for ``name`` owned by ``tenant``.

    The default tenant maps to the unqualified name, so legacy clients
    and tenant-aware ones interoperate on one provider group.
    """
    if TENANT_SEP in name:
        raise ValueError(f"pipeline name {name!r} may not contain {TENANT_SEP!r}")
    if tenant == DEFAULT_TENANT:
        return name
    if not tenant or TENANT_SEP in tenant:
        raise ValueError(f"invalid tenant id {tenant!r}")
    return f"{tenant}{TENANT_SEP}{name}"


def tenant_of(qualified: str) -> str:
    """The tenant owning a wire-level pipeline name."""
    if TENANT_SEP in qualified:
        return qualified.split(TENANT_SEP, 1)[0]
    return DEFAULT_TENANT


def base_name(qualified: str) -> str:
    """The tenant-local pipeline name behind a wire-level name."""
    if TENANT_SEP in qualified:
        return qualified.split(TENANT_SEP, 1)[1]
    return qualified


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant staging budget on ONE provider (None = unlimited).

    Enforced at ``stage`` admission time against the blocks/bytes the
    provider currently holds for the tenant; replicas are deliberately
    not charged (they are the fabric's own redundancy, not the
    tenant's footprint).
    """

    max_blocks: Optional[int] = None
    max_bytes: Optional[int] = None

    @property
    def unlimited(self) -> bool:
        return self.max_blocks is None and self.max_bytes is None


@dataclass
class TenancyConfig:
    """Fabric-wide tenancy policy, shared by every provider.

    - ``max_tenants`` bounds admission (the ``default`` tenant is the
      infrastructure namespace and does not consume a slot);
    - ``default_quota`` applies to tenants without an explicit entry in
      ``quotas``;
    - ``quota_wait`` is the backpressure patience: a ``stage`` that
      would exceed the quota waits up to this many simulated seconds
      for an earlier iteration's deactivate to free room before it is
      finally refused;
    - ``fair_share`` switches every daemon's xstream from FIFO to
      round-robin-by-tenant compute scheduling.
    """

    max_tenants: Optional[int] = None
    default_quota: TenantQuota = field(default_factory=TenantQuota)
    quotas: Dict[str, TenantQuota] = field(default_factory=dict)
    quota_wait: float = 10.0
    fair_share: bool = True


class _TenantState:
    """One provider's book-keeping for one admitted tenant."""

    __slots__ = ("tenant", "blocks", "nbytes", "charges", "release_ev")

    def __init__(self, tenant: str):
        self.tenant = tenant
        self.blocks = 0
        self.nbytes = 0
        #: (qualified pipeline, iteration) -> {block_id: charged bytes}.
        #: Charged at stage admission, released when the iteration's
        #: data is dropped — so release matches exactly what was
        #: charged even if payload sizes are re-estimated elsewhere.
        self.charges: Dict[Tuple[str, int], Dict[int, int]] = {}
        #: Event fired whenever room is freed (quota backpressure).
        self.release_ev: Any = None


class TenantRegistry:
    """Admission control + quota accounting for one provider.

    The registry is the provider-side half of the tenancy contract:
    :meth:`admit` gates attach/activate/stage for unseen tenants,
    :meth:`reserve` implements stage-time quota backpressure, and the
    charge/release pair keeps per-tenant usage exact across
    deactivates, purges, detaches and pipeline destruction.
    """

    def __init__(self, sim: Any, config: Optional[TenancyConfig] = None, label: str = "colza.tenants"):
        from repro.analysis.simtsan import Shared

        self.sim = sim
        #: Whether tenancy was explicitly configured for this fabric.
        #: Unconfigured registries admit everyone unlimited and change
        #: no legacy behaviour.
        self.configured = config is not None
        self.config = config or TenancyConfig()
        self._states: Dict[str, _TenantState] = Shared(sim=sim, label=label)

    # ------------------------------------------------------------------
    # admission
    def tenants(self) -> List[str]:
        """Admitted tenants, sorted (``default`` included if seen)."""
        return sorted(self._states)

    def is_admitted(self, tenant: str) -> bool:
        return tenant in self._states

    def admit(self, tenant: str) -> Tuple[bool, str]:
        """Admit ``tenant`` (idempotent). Returns ``(ok, reason)``.

        The default tenant is always admitted: it is the unqualified
        namespace legacy clients use, and refusing it would turn a
        tenancy rollout into a breaking change.
        """
        if tenant in self._states:
            return True, "already-attached"
        limit = self.config.max_tenants
        if (
            tenant != DEFAULT_TENANT
            and limit is not None
            and sum(1 for t in self._states if t != DEFAULT_TENANT) >= limit
        ):
            return False, f"max-tenants ({limit}) reached"
        self._states[tenant] = _TenantState(tenant)
        return True, "attached"

    def detach(self, tenant: str) -> bool:
        """Drop a tenant's admission slot and all its accounting."""
        return self._states.pop(tenant, None) is not None

    # ------------------------------------------------------------------
    # quotas
    def quota_for(self, tenant: str) -> TenantQuota:
        return self.config.quotas.get(tenant, self.config.default_quota)

    def usage(self, tenant: str) -> Tuple[int, int]:
        """Currently charged ``(blocks, bytes)`` for ``tenant`` here."""
        state = self._states.get(tenant)
        if state is None:
            return (0, 0)
        return (state.blocks, state.nbytes)

    def _fits(self, state: _TenantState, quota: TenantQuota, key, block_id: int, nbytes: int) -> bool:
        held = state.charges.get(key, {})
        extra_blocks = 0 if block_id in held else 1
        extra_bytes = nbytes - held.get(block_id, 0)
        if quota.max_blocks is not None and state.blocks + extra_blocks > quota.max_blocks:
            return False
        if quota.max_bytes is not None and state.nbytes + extra_bytes > quota.max_bytes:
            return False
        return True

    def charge(self, tenant: str, name: str, iteration: int, block_id: int, nbytes: int) -> None:
        """Record one staged block against the tenant (idempotent per
        block id: a re-staged block replaces its previous charge)."""
        state = self._states.get(tenant)
        if state is None:
            ok, _reason = self.admit(tenant)
            if not ok:  # charged blocks always belong to admitted tenants
                raise RuntimeError(f"charge for unadmitted tenant {tenant!r}")
            state = self._states[tenant]
        held = state.charges.setdefault((name, iteration), {})
        previous = held.get(block_id)
        if previous is None:
            state.blocks += 1
        else:
            state.nbytes -= previous
        held[block_id] = nbytes
        state.nbytes += nbytes

    def uncharge(self, tenant: str, name: str, iteration: int, block_id: int) -> None:
        """Withdraw one reservation (stage failed after admission)."""
        state = self._states.get(tenant)
        if state is None:
            return
        held = state.charges.get((name, iteration))
        if held is None or block_id not in held:
            return
        state.nbytes -= held.pop(block_id)
        state.blocks -= 1
        if not held:
            state.charges.pop((name, iteration), None)
        self._notify_release(state)

    def release(self, name: str, iteration: int) -> None:
        """Free everything charged for ``(name, iteration)`` — called
        when the iteration's staged data is actually dropped."""
        tenant = tenant_of(name)
        state = self._states.get(tenant)
        if state is None:
            return
        held = state.charges.pop((name, iteration), None)
        if not held:
            return
        state.blocks -= len(held)
        state.nbytes -= sum(held.values())
        self._notify_release(state)

    def release_pipeline(self, name: str) -> None:
        """Free every iteration's charges for one pipeline (destroy)."""
        state = self._states.get(tenant_of(name))
        if state is None:
            return
        for key in sorted(k for k in state.charges if k[0] == name):
            held = state.charges.pop(key)
            state.blocks -= len(held)
            state.nbytes -= sum(held.values())
        self._notify_release(state)

    def _notify_release(self, state: _TenantState) -> None:
        ev = state.release_ev
        state.release_ev = None
        if ev is not None and not ev.fired:
            ev.succeed()

    # ------------------------------------------------------------------
    def reserve(
        self,
        tenant: str,
        name: str,
        iteration: int,
        block_id: int,
        nbytes: int,
        still_valid,
    ) -> Generator:
        """Admit one block against the quota, with backpressure.

        If the block does not fit, wait (event-driven, no polling) for
        an earlier iteration's deactivate to free room, up to the
        config's ``quota_wait`` patience. ``still_valid`` is the
        caller's activation-epoch guard: the wait aborts as soon as the
        iteration being staged into was deactivated underneath it.

        On success the block is charged *before* the caller pulls any
        data, so concurrent stage handlers cannot jointly overshoot
        the quota. Raises ``RuntimeError`` when patience runs out —
        the hard failure behind the soft backpressure.
        """
        state = self._states.get(tenant)
        if state is None:
            ok, reason = self.admit(tenant)
            if not ok:
                raise RuntimeError(f"tenant {tenant!r} not admitted: {reason}")
            state = self._states[tenant]
        quota = self.quota_for(tenant)
        key = (name, iteration)
        if quota.unlimited or self._fits(state, quota, key, block_id, nbytes):
            self.charge(tenant, name, iteration, block_id, nbytes)
            return None
        scope = self.sim.metrics.scope(f"tenant.{tenant}")
        scope.counter("quota_stalls").inc()
        deadline = self.sim.now + self.config.quota_wait
        started = self.sim.now
        while not self._fits(state, quota, key, block_id, nbytes):
            if not still_valid():
                raise RuntimeError(
                    f"stage of {name}#{iteration}#{block_id} raced deactivate "
                    f"while waiting for quota"
                )
            remaining = deadline - self.sim.now
            if remaining <= 0:
                blocks, held_bytes = self.usage(tenant)
                raise RuntimeError(
                    f"tenant {tenant!r} over quota for {name}#{iteration}#"
                    f"{block_id}: holding {blocks} blocks / {held_bytes} bytes "
                    f"against {quota}, no room freed within "
                    f"{self.config.quota_wait}s"
                )
            if state.release_ev is None or state.release_ev.fired:
                state.release_ev = self.sim.event(f"tenant.{tenant}.quota-release")
            yield self.sim.any_of([state.release_ev, self.sim.timeout(remaining)])
        self.charge(tenant, name, iteration, block_id, nbytes)
        scope.counter("quota_stall_seconds").inc(self.sim.now - started)
        return None
