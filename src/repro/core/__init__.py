"""Colza: the elastic in situ data-staging service (the paper's core).

The moving parts, mirroring §II:

- :class:`Backend` (:mod:`repro.core.backend`) — the abstract pipeline
  class users subclass (``colza::Backend``), with the
  activate/stage/execute/deactivate lifecycle, plus a registry standing
  in for shared-library loading;
- :class:`ColzaProvider` (:mod:`repro.core.provider`) — the per-server
  Margo provider managing pipelines, reacting to SSG membership
  changes, freezing membership during active iterations, and serving
  the 2PC used at ``activate``;
- :class:`ColzaClient` / :class:`DistributedPipelineHandle`
  (:mod:`repro.core.client`) — the simulation-side API;
- :class:`ColzaAdmin` (:mod:`repro.core.admin`) — the separate admin
  library (create/destroy pipelines, ask a server to leave);
- :class:`ColzaDaemon` / :class:`Deployment`
  (:mod:`repro.core.daemon`) — process bring-up, elastic joins via the
  group file, and the static-restart alternative for comparison;
- :mod:`repro.core.pipelines` — concrete Catalyst-based pipelines for
  the three applications.
"""

from repro.core.autoscale import SloAutoscaler, SloConfig, TenantSlo
from repro.core.backend import Backend, create_backend, register_backend
from repro.core.backoff import backoff_delay
from repro.core.client import ColzaClient, DistributedPipelineHandle, PipelineHandle
from repro.core.admin import ColzaAdmin
from repro.core.daemon import ColzaDaemon, Deployment
from repro.core.elasticity import AutoScaler, ElasticityPolicy
from repro.core.provider import ColzaProvider
from repro.core.replication import ReplicaStore, block_owner, replica_buddies
from repro.core.tenancy import (
    DEFAULT_TENANT,
    TenancyConfig,
    TenantQuota,
    TenantRegistry,
    qualify,
    tenant_of,
)

__all__ = [
    "AutoScaler",
    "Backend",
    "ColzaAdmin",
    "ColzaClient",
    "ColzaDaemon",
    "ColzaProvider",
    "DEFAULT_TENANT",
    "Deployment",
    "DistributedPipelineHandle",
    "ElasticityPolicy",
    "PipelineHandle",
    "ReplicaStore",
    "SloAutoscaler",
    "SloConfig",
    "TenancyConfig",
    "TenantQuota",
    "TenantRegistry",
    "TenantSlo",
    "backoff_delay",
    "block_owner",
    "create_backend",
    "qualify",
    "register_backend",
    "replica_buddies",
    "tenant_of",
]
