"""The abstract Colza pipeline (``colza::Backend``) and its registry.

Real Colza pipelines are C++ classes compiled into shared libraries and
``dlopen``-ed on demand; here the registry maps "library names" to
Python Backend subclasses, preserving the deploy-empty-then-load-later
workflow (§II-B): a staging area starts with no pipelines and the admin
creates them at run time by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.na.address import Address

__all__ = ["Backend", "StagedBlock", "create_backend", "register_backend", "registered_backends"]


@dataclass
class StagedBlock:
    """One piece of staged data held by a pipeline instance."""

    block_id: int
    metadata: Dict[str, Any]
    payload: Any


class Backend:
    """Base class for pipelines (one instance per staging process).

    Lifecycle (all generators, driven by the provider's RPC handlers):

    - ``activate(iteration, view)`` — an iteration is starting; ``view``
      is the frozen, 2PC-agreed list of member addresses. Membership
      will not change until ``deactivate``.
    - ``stage(iteration, block)`` — store one block (already pulled).
    - ``execute(iteration)`` — run the analysis on the staged blocks.
    - ``deactivate(iteration)`` — iteration done; staged data dropped.
    """

    def __init__(self, margo, name: str, config: Optional[Dict[str, Any]] = None):
        self.margo = margo
        self.name = name
        self.config = dict(config or {})
        self.staged: Dict[int, List[StagedBlock]] = {}
        self.current_view: Tuple[Address, ...] = ()

    # ------------------------------------------------------------------
    def activate(self, iteration: int, view: List[Address]) -> Generator:
        self.current_view = tuple(view)
        self.staged.setdefault(iteration, [])
        return None
        yield  # pragma: no cover

    def stage(self, iteration: int, block: StagedBlock) -> Generator:
        # Idempotent per block id: a client whose stage RPC timed out
        # after landing may re-send, and recovery may re-adopt a block
        # a late duplicate already delivered. Last write wins.
        held = self.staged.setdefault(iteration, [])
        for i, existing in enumerate(held):
            if existing.block_id == block.block_id:
                held[i] = block
                break
        else:
            held.append(block)
        return None
        yield  # pragma: no cover

    def execute(self, iteration: int) -> Generator:  # pragma: no cover
        raise NotImplementedError
        yield

    def deactivate(self, iteration: int) -> Generator:
        self.staged.pop(iteration, None)
        return None
        yield  # pragma: no cover

    def destroy(self) -> None:
        """Release resources when the pipeline is destroyed."""
        self.staged.clear()

    def abort_execution(self, reason: str) -> None:
        """A frozen-view member died; cancel any in-flight execution.

        The base implementation is a no-op (nothing to cancel for
        pipelines without collective execution)."""

    # ------------------------------------------------------------------
    # stateful pipelines (paper future work (3))
    #: Whether this pipeline accumulates cross-iteration state that must
    #: be migrated before its server may leave the staging area.
    stateful = False

    def get_state(self) -> Optional[Any]:
        """Serializable cross-iteration state (None = nothing to move)."""
        return None

    def merge_state(self, state: Any) -> None:
        """Fold a departing peer's state into this instance."""
        raise NotImplementedError(f"pipeline {self.name!r} is not stateful")

    # ------------------------------------------------------------------
    @property
    def replication_factor(self) -> int:
        """Total copies kept of each staged block (1 = no replication)."""
        return int(self.config.get("replication_factor", 1))

    def blocks(self, iteration: int) -> List[StagedBlock]:
        return sorted(self.staged.get(iteration, []), key=lambda b: b.block_id)

    def discard(self, iteration: int) -> None:
        """Drop staged data for one iteration without running the
        deactivate generator (used when purging a stale activation)."""
        self.staged.pop(iteration, None)


_REGISTRY: Dict[str, Callable[..., Backend]] = {}


def register_backend(library: str, factory: Callable[..., Backend]) -> None:
    """Register a pipeline 'shared library' under ``library``."""
    _REGISTRY[library] = factory


def registered_backends() -> List[str]:
    return sorted(_REGISTRY)


def create_backend(library: str, margo, name: str, config: Optional[Dict[str, Any]] = None) -> Backend:
    """Instantiate a pipeline from its library name (dlopen-equivalent)."""
    try:
        factory = _REGISTRY[library]
    except KeyError:
        raise KeyError(
            f"pipeline library {library!r} not found (registered: {registered_backends()})"
        ) from None
    return factory(margo, name, config)
