"""Daemon bring-up and deployment orchestration.

:class:`ColzaDaemon` is one staging process: a Margo instance (RPC), a
MoNA instance (collectives), an SSG agent (membership), the Colza
provider, and the admin provider. Starting a daemon whose group file
already lists members performs an SSG *join* — the elastic path of
Fig. 4; :class:`Deployment` also implements the *static restart*
alternative (kill everything, relaunch at the new size) so the two can
be compared, plus client construction and admin conveniences used by
examples and benchmarks.
"""

from __future__ import annotations

import itertools
from typing import Generator, List, Optional, Tuple

from repro.core.admin import AdminProvider, ColzaAdmin
from repro.core.client import ColzaClient
from repro.core.provider import ColzaProvider
from repro.core.tenancy import DEFAULT_TENANT, TenancyConfig
from repro.margo import MargoInstance
from repro.mona import MonaInstance
from repro.na import Fabric, get_cost_model
from repro.sim import Simulation
from repro.sim.platform import Cluster
from repro.ssg import GroupFile, SSGAgent, SwimConfig, converged

__all__ = ["ColzaDaemon", "Deployment"]


class ColzaDaemon:
    """One staging-area process."""

    def __init__(
        self,
        sim: Simulation,
        fabric: Fabric,
        node_index: int,
        name: str,
        group_file: GroupFile,
        swim_config: Optional[SwimConfig] = None,
        tenancy: Optional[TenancyConfig] = None,
    ):
        self.sim = sim
        self.fabric = fabric
        self.node_index = node_index
        self.name = name
        self.margo = MargoInstance(sim, fabric, name, node_index, get_cost_model("mona"))
        self.mona = MonaInstance(sim, fabric, name, node_index)
        self.agent = SSGAgent(self.margo, group_file, config=swim_config)
        self.provider = ColzaProvider(self.margo, self.agent, self.mona, tenancy=tenancy)
        self.admin = AdminProvider(self.margo, self.provider, daemon=self)
        if tenancy is not None:
            # SSG lifecycle hook: an elastically joining daemon adopts
            # the group's tenant roster before serving traffic.
            self.agent.on_joined.append(self.provider.sync_tenant_roster)
        self.running = False

    # ------------------------------------------------------------------
    @property
    def address(self):
        return self.margo.address

    def start(self, init_delay: float = 0.0) -> Generator:
        """Bring the service up and join (or found) the group."""
        if init_delay > 0:
            yield self.sim.timeout(init_delay)
        yield from self.agent.start()
        self.running = True
        return self

    def leave(self) -> Generator:
        """Graceful departure: announce LEFT, then tear down."""
        self.running = False
        yield from self.agent.leave()
        self.margo.finalize()
        self.mona.finalize()
        return None

    def crash(self) -> None:
        """Die without announcement (SWIM must detect it; the stale
        group-file entry stays behind, as it would on a real crash)."""
        self.running = False
        self.agent.stop(clean_group_file=False)
        self.margo.finalize(quiesce=True)
        self.mona.finalize(quiesce=True)


class Deployment:
    """Orchestrates a staging area on the cluster model.

    All methods that consume wall time are generators; launch latencies
    come from the cluster's :class:`~repro.sim.platform.LaunchModel`.
    """

    def __init__(
        self,
        sim: Simulation,
        cluster: Optional[Cluster] = None,
        fabric: Optional[Fabric] = None,
        swim_config: Optional[SwimConfig] = None,
        name_prefix: str = "colza",
        tenancy: Optional[TenancyConfig] = None,
    ):
        # Per-instance naming keeps runs deterministic: daemon names (and
        # the RNG streams derived from them) don't depend on how many
        # deployments existed earlier in the process. Use distinct
        # prefixes for multiple deployments sharing one fabric.
        self._names = itertools.count()
        self.name_prefix = name_prefix
        self.sim = sim
        self.cluster = cluster or Cluster(sim, nodes=64)
        self.fabric = fabric or Fabric(sim)
        self.swim_config = swim_config or SwimConfig()
        #: Multi-tenant policy applied to every daemon (None = legacy
        #: single-tenant behaviour, DESIGN §13).
        self.tenancy = tenancy
        self.group_file = GroupFile()
        self.daemons: List[ColzaDaemon] = []

    # ------------------------------------------------------------------
    def _new_daemon(self, node_index: int) -> ColzaDaemon:
        name = f"{self.name_prefix}-{next(self._names)}"
        self.cluster.place(name, node_index)
        return ColzaDaemon(
            self.sim, self.fabric, node_index, name, self.group_file,
            self.swim_config, tenancy=self.tenancy,
        )

    def live_daemons(self) -> List[ColzaDaemon]:
        return [d for d in self.daemons if d.running]

    def addresses(self) -> List:
        return sorted(d.address for d in self.live_daemons())

    def converged(self) -> bool:
        return converged([d.agent for d in self.live_daemons()])

    # ------------------------------------------------------------------
    def start_servers(
        self,
        count: int,
        first_node: int = 0,
        procs_per_node: int = 1,
        charge_launch: bool = True,
    ) -> Generator:
        """Gang-launch ``count`` daemons (one srun): founder first, then
        concurrent joins. Returns when all daemons are group members."""
        if count < 1:
            raise ValueError("count must be >= 1")
        if charge_launch:
            yield self.sim.timeout(self.cluster.launcher.srun_delay(count))
        new = [
            self._new_daemon(first_node + i // procs_per_node) for i in range(count)
        ]
        self.daemons.extend(new)
        # Founder brings the group up; the rest join it concurrently.
        yield from new[0].start(init_delay=self.cluster.launcher.service_init_delay())
        tasks = [
            self.sim.spawn(
                d.start(init_delay=self.cluster.launcher.service_init_delay()),
                name=f"start-{d.name}",
            )
            for d in new[1:]
        ]
        if tasks:
            yield self.sim.all_of([t.join() for t in tasks])
        return new

    def add_server(self, node_index: int, charge_launch: bool = True) -> Generator:
        """Elastic scale-up: srun one daemon; it joins via the group file
        (the paper's job-script-driven addition, §II-F)."""
        if charge_launch:
            yield self.sim.timeout(self.cluster.launcher.srun_delay(1))
        daemon = self._new_daemon(node_index)
        self.daemons.append(daemon)
        yield from daemon.start(init_delay=self.cluster.launcher.service_init_delay())
        return daemon

    def remove_server(self, admin_margo: MargoInstance, address) -> Generator:
        """Elastic scale-down via the admin library's leave RPC."""
        admin = ColzaAdmin(admin_margo)
        return (yield from admin.request_leave(address))

    def static_restart(
        self,
        count: int,
        first_node: int = 0,
        procs_per_node: int = 1,
    ) -> Generator:
        """Kill the whole staging area and relaunch at ``count`` daemons
        (the paper's non-elastic alternative in Fig. 4)."""
        for daemon in self.live_daemons():
            daemon.crash()
        self.daemons.clear()
        self.group_file.addresses.clear()
        yield self.sim.timeout(self.cluster.launcher.kill_delay())
        result = yield from self.start_servers(
            count, first_node=first_node, procs_per_node=procs_per_node
        )
        return result

    # ------------------------------------------------------------------
    def make_client(
        self,
        node_index: int,
        name: Optional[str] = None,
        tenant: str = DEFAULT_TENANT,
    ) -> Tuple[MargoInstance, ColzaClient]:
        """A client Margo instance + connected-later ColzaClient."""
        client_name = name or f"{self.name_prefix}-client-{next(self._names)}"
        self.cluster.place(client_name, node_index)
        margo = MargoInstance(
            self.sim, self.fabric, client_name, node_index, get_cost_model("mona")
        )
        return margo, ColzaClient(margo, self.group_file, tenant=tenant)

    def deploy_pipeline(
        self,
        admin_margo: MargoInstance,
        name: str,
        library: str,
        config: Optional[dict] = None,
        tenant: str = DEFAULT_TENANT,
    ) -> Generator:
        """Create the pipeline on every current member."""
        admin = ColzaAdmin(admin_margo, tenant=tenant)
        result = yield from admin.create_pipeline_everywhere(
            self.addresses(), name, library, config
        )
        return result
