"""Failure-aware actuation helpers: capped jittered backoff + guarded spawns.

One backoff formula, shared by every retry loop in the tree (activate
retries, whole-iteration retries, autoscaler actuation): ``min(cap,
base * 2^k)`` scaled by a uniform draw in [0.5, 1.0) from a *named* RNG
stream. The stream name carries the retrying endpoint's identity, so
concurrent retriers de-synchronize instead of hammering the servers in
lock-step — yet every pause is a pure function of ``(root_seed, stream
name, draw index)`` and replays bit-identically under a pinned seed.

:func:`guarded` exists because the kernel runs strict by default: an
exception escaping a spawned task tears down the whole simulation. An
actuation task (join a new daemon, deploy a pipeline, ask a victim to
leave) is *expected* to fail when chaos crashes its target mid-flight,
so the retry loops spawn ``guarded(gen)`` and branch on the returned
``("ok", result)`` / ``("err", exc)`` tuple instead of letting the
failure propagate through ``any_of`` into the kernel loop.
"""

from __future__ import annotations

from typing import Generator

__all__ = ["backoff_delay", "guarded"]


def backoff_delay(sim, stream: str, attempt: int, base: float, cap: float) -> float:
    """Jittered capped exponential delay for retry ``attempt`` (0-based)."""
    rng = sim.rng.stream(stream)
    return min(cap, base * (2.0 ** attempt)) * float(rng.uniform(0.5, 1.0))


def guarded(gen) -> Generator:
    """Run ``gen``, catching any exception into the return value.

    Returns ``("ok", result)`` or ``("err", exception)`` so a
    supervising retry loop can treat target death as a routine failed
    attempt rather than a kernel-level crash (strict mode re-raises
    unhandled task exceptions).
    """
    try:
        result = yield from gen
    except Exception as err:  # noqa: BLE001 — reported to the supervisor, not swallowed
        return ("err", err)
    return ("ok", result)
