"""The Colza provider: pipelines + membership + 2PC on the server side.

One provider runs in each staging process. It exports the data-plane
RPCs (`activate` 2PC, `stage`, `execute`, `deactivate`, `get_view`)
under the ``"colza"`` provider name; the management RPCs live in the
separate admin provider (:mod:`repro.core.admin`), mirroring the
paper's split between the client library and the admin library.

Freezing (§II-B): between a committed ``activate`` and its
``deactivate``, the provider treats membership as frozen — leave
requests are deferred and joins, though visible to SSG, only enter the
pipeline's communicator at the *next* activate.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.analysis.simtsan import Shared
from repro.core.backend import Backend, StagedBlock, create_backend
from repro.core.replication import ReplicaStore, recover_iteration, replicate_block
from repro.core.tenancy import TenancyConfig, TenantRegistry, tenant_of
from repro.margo import MargoInstance, Provider
from repro.mercury import RpcError
from repro.na.address import Address
from repro.na.payload import MemoryHandle
from repro.ssg import SSGAgent

__all__ = ["ColzaProvider", "mona_address_of"]


def mona_address_of(margo_addr: Address) -> Address:
    """The MoNA endpoint address of the daemon behind a Margo address.

    Daemons register their Margo endpoint as ``<name>`` and their MoNA
    endpoint as ``mona-<name>`` on the same node, so the mapping is a
    pure function — every member can derive the communicator address
    list from the SSG view without extra communication.
    """
    prefix, name = margo_addr.uri.rsplit("/", 1)
    return Address(f"{prefix}/mona-{name}")


class ColzaProvider(Provider):
    """Per-process Colza service."""

    #: Budget for forwarding one block to a buddy replica (an RDMA
    #: pull on the buddy's side, so sized like a data-plane transfer).
    REPLICATE_TIMEOUT = 5.0
    #: Budget for one inventory / fetch_block exchange during the
    #: recovery phase of a re-activation. Peers that were in the
    #: agreed view are alive (SWIM evicted the dead before prepare
    #: succeeded), so this only bounds a crash *during* recovery.
    RECOVERY_TIMEOUT = 2.0

    def __init__(
        self,
        margo: MargoInstance,
        agent: SSGAgent,
        mona_instance,
        tenancy: Optional[TenancyConfig] = None,
    ):
        super().__init__(margo, "colza")
        self.agent = agent
        self.mona = mona_instance
        # The three shared tables cross-task handlers race on are
        # SimTSan-observable (plain dicts until a detector is
        # installed; see repro.analysis.simtsan).
        addr = margo.address
        self.pipelines: Dict[str, Backend] = Shared(
            sim=margo.sim, label=f"colza.pipelines@{addr}"
        )
        #: (pipeline, iteration) -> activation epoch. The epoch token
        #: lets long-running handlers (e.g. a stage blocked mid-RDMA)
        #: detect that their iteration was deactivated — or aborted and
        #: re-activated — while they were suspended.
        self._active: Dict[Tuple[str, int], int] = Shared(
            sim=margo.sim, label=f"colza.active@{addr}"
        )
        self._epochs = itertools.count(1)
        #: (pipeline, iteration) -> prepared view from 2PC phase 1.
        self._prepared: Dict[Tuple[str, int], Tuple[Address, ...]] = Shared(
            sim=margo.sim, label=f"colza.prepared@{addr}"
        )
        #: Buddy copies of other members' staged blocks (DESIGN §11).
        self.replicas = ReplicaStore(sim=margo.sim, label=f"colza.replicas@{addr}")
        #: Tenant admission + quota accounting (DESIGN §13). With no
        #: explicit config every tenant is admitted unlimited and the
        #: legacy single-tenant behaviour is unchanged.
        self.tenants = TenantRegistry(
            margo.sim, tenancy, label=f"colza.tenants@{addr}"
        )
        if tenancy is not None and tenancy.fair_share:
            margo.xstream.enable_fair_share()
        #: Leave was requested while frozen; honored at deactivate.
        self._leave_deferred = False
        self.leaving = False
        #: Membership-change log (events observed via SSG).
        self.membership_events: List[Tuple[float, str, Address]] = []

        #: Called (by the admin provider) when a deferred leave becomes
        #: actionable at deactivate time.
        self.on_ready_to_leave = None

        self.export("activate_prepare", self._rpc_activate_prepare)
        self.export("migrate", self._rpc_migrate)
        self.export("activate_commit", self._rpc_activate_commit)
        self.export("activate_abort", self._rpc_activate_abort)
        self.export("stage", self._rpc_stage)
        self.export("execute", self._rpc_execute)
        self.export("deactivate", self._rpc_deactivate)
        self.export("get_view", self._rpc_get_view)
        self.export("replicate", self._rpc_replicate)
        self.export("inventory", self._rpc_inventory)
        self.export("fetch_block", self._rpc_fetch_block)
        self.export("tenant_attach", self._rpc_tenant_attach)
        self.export("tenant_detach", self._rpc_tenant_detach)
        self.export("tenant_roster", self._rpc_tenant_roster)

        # React to membership changes (the paper's registered callbacks).
        agent.observer = self._on_membership_change

    # ------------------------------------------------------------------
    @property
    def address(self) -> Address:
        return self.margo.address

    def view(self) -> List[Address]:
        """This server's (eventually consistent) membership view."""
        return self.agent.members()

    @property
    def frozen(self) -> bool:
        return bool(self._active)

    def _on_membership_change(self, event: str, member: Address) -> None:
        self.membership_events.append((self.margo.sim.now, event, member))
        if event != "died":
            return
        # Fault tolerance: a member crashed. Any pipeline whose frozen
        # view contains it can never finish its collectives — abort the
        # execution so the client gets an error instead of a hang.
        for key in list(self._active):
            name, _iteration = key
            pipeline = self.pipelines.get(name)
            if pipeline is not None and member in pipeline.current_view:
                self.margo.sim.trace.add("colza.abort_on_death")
                pipeline.abort_execution(f"member {member} died")

    # ------------------------------------------------------------------
    # pipeline management (called by the admin provider)
    def create_pipeline(self, library: str, name: str, config: Optional[dict] = None) -> Backend:
        if name in self.pipelines:
            raise ValueError(f"pipeline {name!r} already exists")
        backend = create_backend(library, self.margo, name, config)
        backend.provider = self  # back-reference for comm building
        self.pipelines[name] = backend
        return backend

    def destroy_pipeline(self, name: str) -> None:
        backend = self.pipelines.pop(name, None)
        if backend is not None:
            backend.destroy()
            self.replicas.drop_pipeline(name)
            self.tenants.release_pipeline(name)

    def request_leave(self) -> bool:
        """Ask this server to leave; deferred while frozen.

        Returns True if the leave happens now, False if deferred.
        """
        if self.frozen:
            self._leave_deferred = True
            return False
        self.leaving = True
        return True

    # ------------------------------------------------------------------
    # tenancy (DESIGN §13)
    def _stamp_tenant(self, name: str) -> str:
        """Attribute the current handler task to the pipeline's tenant.

        The stamp is what fair-share xstream scheduling groups by; it is
        inherited by any ULT the handler spawns (backend collectives,
        replica forwards), so a tenant's whole execute tree shares one
        round-robin slot.
        """
        tenant = tenant_of(name)
        task = self.margo.sim.current_task
        if task is not None:
            task.tenant = tenant
        return tenant

    def _rpc_tenant_attach(self, input: dict) -> Generator:
        yield self.margo.sim.timeout(0)
        ok, reason = self.tenants.admit(input["tenant"])
        return {"status": "attached" if ok else "rejected", "reason": reason}

    def _rpc_tenant_detach(self, input: dict) -> Generator:
        """Evict one tenant: its pipelines, staged data, replicas and
        quota charges go; every other tenant's state is untouched
        (their pipelines are not even visible under this tenant's
        qualified names)."""
        yield self.margo.sim.timeout(0)
        tenant = input["tenant"]
        owned = sorted(
            pname for pname in self.pipelines if tenant_of(pname) == tenant
        )
        for pname in owned:
            for key in sorted(k for k in self._active if k[0] == pname):
                self._active.pop(key, None)
            for key in sorted(k for k in self._prepared if k[0] == pname):
                self._prepared.pop(key, None)
            self.destroy_pipeline(pname)
        known = self.tenants.detach(tenant)
        return {
            "status": "detached" if known else "not-attached",
            "pipelines_dropped": owned,
        }

    def _rpc_tenant_roster(self, _input: Any) -> Generator:
        """Admitted tenants here — pulled by elastically joining daemons
        so an established tenant never flaps back through admission on a
        grown group (see ColzaDaemon)."""
        yield self.margo.sim.timeout(0)
        return self.tenants.tenants()

    def sync_tenant_roster(self, joined: bool) -> Generator:
        """SSG post-join hook: adopt a peer's tenant roster (DESIGN §13).

        An elastically added server would otherwise admit tenants lazily
        in whatever order their activates arrive — under a full
        admission table, a tenant attached before the join could lose
        its slot to a later arrival on the new member only, wedging its
        activates with split ``tenant-rejected`` votes. Pulling the
        roster once at join time keeps admission decisions uniform
        across the group. Registered only on tenancy-configured
        daemons, so legacy deployments' join path is untouched.
        """
        if not joined:
            return None
        peers = [a for a in self.view() if a != self.address]
        for peer in sorted(peers):
            try:
                roster = yield from self.margo.provider_call(
                    peer, "colza", "tenant_roster", {},
                    timeout=self.RECOVERY_TIMEOUT,
                )
            except RpcError:
                continue
            for tenant in roster:
                self.tenants.admit(tenant)
            return None
        return None

    # ------------------------------------------------------------------
    # 2PC (client-coordinated)
    def _rpc_activate_prepare(self, input: dict) -> Generator:
        yield self.margo.sim.timeout(0)
        name = input["pipeline"]
        iteration = input["iteration"]
        proposed: Tuple[Address, ...] = tuple(input["view"])
        if name not in self.pipelines:
            return {"vote": "no", "reason": "no-such-pipeline", "view": self.view()}
        ok, _reason = self.tenants.admit(tenant_of(name))
        if not ok:
            return {"vote": "no", "reason": "tenant-rejected", "view": self.view()}
        if self.leaving:
            return {"vote": "no", "reason": "leaving", "view": self.view()}
        mine = tuple(self.view())
        if mine != proposed:
            return {"vote": "no", "reason": "view-mismatch", "view": list(mine)}
        if any(key[0] == name for key in self._active):
            return {"vote": "no", "reason": "already-active", "view": list(mine)}
        self._prepared[(name, iteration)] = proposed
        return {"vote": "yes"}

    def _rpc_activate_commit(self, input: dict) -> Generator:
        name = input["pipeline"]
        iteration = input["iteration"]
        key = (name, iteration)
        tenant = self._stamp_tenant(name)
        view = self._prepared.pop(key, None)
        if view is None:
            raise RuntimeError(f"commit without prepare for {key}")
        self._active[key] = next(self._epochs)
        pipeline = self.pipelines[name]
        result = {"status": "activated"}
        if input.get("recover"):
            # Recovery phase (DESIGN §11): survivors reconcile the
            # staged set against the new view *before* the backend's
            # activate, so execute sees a complete distribution.
            report = yield from recover_iteration(
                self, name, iteration, view,
                expected=input.get("expected") or (),
            )
            result.update(report)
        else:
            # A fresh activation of this iteration: any leftover data
            # (from an aborted earlier attempt whose blocks will be
            # re-staged under the *new* view's placement) would create
            # double ownership. Purge it.
            pipeline.discard(iteration)
            self.replicas.drop_iteration(name, iteration)
            self.tenants.release(name, iteration)
        yield from pipeline.activate(iteration, list(view))
        self.margo.sim.metrics.scope("core").counter("activations_committed").inc()
        self.margo.sim.metrics.scope(f"tenant.{tenant}").counter(
            "activations_committed"
        ).inc()
        return result

    def _rpc_activate_abort(self, input: dict) -> Generator:
        yield self.margo.sim.timeout(0)
        self._prepared.pop((input["pipeline"], input["iteration"]), None)
        return "aborted"

    # ------------------------------------------------------------------
    # data plane
    def _rpc_stage(self, input: dict) -> Generator:
        name = input["pipeline"]
        iteration = input["iteration"]
        epoch = self._active.get((name, iteration))
        if epoch is None:
            raise RuntimeError(
                f"stage for inactive iteration {iteration} of {name!r}"
            )
        handle: MemoryHandle = input["handle"]
        block_id = input["block_id"]
        tenant = self._stamp_tenant(name)
        # Quota admission (DESIGN §13): reserve the block against the
        # tenant's budget *before* pulling any data. Over quota, this
        # backpressures — waiting for an earlier iteration's deactivate
        # to free room — instead of failing outright.
        yield from self.tenants.reserve(
            tenant, name, iteration, block_id, handle.nbytes,
            still_valid=lambda: self._active.get((name, iteration)) == epoch,
        )
        try:
            # Pull the data from the simulation's memory via RDMA (§II-B).
            payload = yield self.margo.bulk_pull(handle)
            # The RDMA pull suspended us for a while; the iteration may
            # have been deactivated (or aborted and re-activated — a new
            # epoch) in the meantime. Refuse to write into the wrong
            # activation.
            if self._active.get((name, iteration)) != epoch:
                raise RuntimeError(
                    f"stage raced deactivate for iteration {iteration} of {name!r}"
                )
            block = StagedBlock(
                block_id=block_id, metadata=dict(input.get("metadata") or {}),
                payload=payload,
            )
            pipeline = self.pipelines[name]
            yield from pipeline.stage(iteration, block)
        except BaseException:
            self.tenants.uncharge(tenant, name, iteration, block_id)
            raise
        core = self.margo.sim.metrics.scope("core")
        core.counter("blocks_staged").inc()
        core.counter("bytes_staged").inc(handle.nbytes)
        scope = self.margo.sim.metrics.scope(f"tenant.{tenant}")
        scope.counter("blocks_staged").inc()
        scope.counter("bytes_staged").inc(handle.nbytes)
        factor = pipeline.replication_factor
        view = list(pipeline.current_view)
        if factor >= 2 and len(view) >= 2:
            yield from replicate_block(self, name, iteration, block, view, factor)
        return "staged"

    def _rpc_execute(self, input: dict) -> Generator:
        name = input["pipeline"]
        iteration = input["iteration"]
        if (name, iteration) not in self._active:
            raise RuntimeError(f"execute for inactive iteration {iteration} of {name!r}")
        tenant = self._stamp_tenant(name)
        pipeline = self.pipelines[name]
        yield from pipeline.execute(iteration)
        self.margo.sim.metrics.scope("core").counter("executes").inc()
        self.margo.sim.metrics.scope(f"tenant.{tenant}").counter("executes").inc()
        return "executed"

    def _rpc_deactivate(self, input: dict) -> Generator:
        yield self.margo.sim.timeout(0)
        name = input["pipeline"]
        iteration = input["iteration"]
        key = (name, iteration)
        pipeline = self.pipelines.get(name)
        was_active = self._active.pop(key, None) is not None
        if pipeline is not None and not input.get("keep_data"):
            # keep_data is the abort-for-retry path: the activation
            # epoch dies (stage/execute handlers in flight will see it
            # and bail) but staged blocks and their replicas survive so
            # the next activate can recover instead of re-staging.
            yield from pipeline.deactivate(iteration)
            if key not in self._active:
                self.replicas.drop_iteration(name, iteration)
                # The iteration's data is gone: free its quota charges,
                # waking any of this tenant's stages backpressured on
                # room. If a fresh activate for this key committed while
                # deactivate was yielding, the replicas and charges now
                # belong to the *new* epoch (its commit already purged
                # ours) — dropping them here would destroy the new
                # activation's state and underflow its quota.
                self.tenants.release(name, iteration)
        if not self._active and self._leave_deferred:
            self._leave_deferred = False
            self.leaving = True
            if self.on_ready_to_leave is not None:
                self.on_ready_to_leave()
        if pipeline is None or not was_active:
            # Explicitly idempotent: deactivating a key that was never
            # active (double-deactivate, tolerant abort broadcasts,
            # post-crash cleanup) is a no-op, reported distinctly.
            return "not-active"
        return "deactivated"

    def _rpc_migrate(self, input: dict) -> Generator:
        """Receive a departing peer's pipeline state (future work (3))."""
        yield self.margo.sim.timeout(0)
        pipeline = self.pipelines.get(input["pipeline"])
        if pipeline is None:
            raise RuntimeError(f"migrate: no pipeline {input['pipeline']!r} here")
        pipeline.merge_state(input["state"])
        return "merged"

    def _rpc_get_view(self, _input: Any) -> Generator:
        yield self.margo.sim.timeout(0)
        return self.view()

    # ------------------------------------------------------------------
    # replication & recovery (DESIGN §11)
    def block_inventory(self, name: str, iteration: int) -> Dict[str, List[int]]:
        """Block ids this process holds for an iteration, by role."""
        pipeline = self.pipelines.get(name)
        primary = (
            sorted(b.block_id for b in pipeline.blocks(iteration))
            if pipeline is not None
            else []
        )
        return {
            "primary": primary,
            "replica": self.replicas.block_ids(name, iteration),
        }

    def _rpc_replicate(self, input: dict) -> Generator:
        name = input["pipeline"]
        iteration = input["iteration"]
        key = (name, iteration)
        handle: MemoryHandle = input["handle"]
        payload = yield self.margo.bulk_pull(handle)
        # Accept while the iteration is active here — or still merely
        # prepared: a buddy's commit may land after the owner's, and
        # stage (hence replicate) traffic can arrive in that window.
        # Anything else is a stale forward from a dead epoch; storing
        # it would leak past the iteration's deactivate.
        if key not in self._active and key not in self._prepared:
            return "stale"
        block = StagedBlock(
            block_id=input["block_id"],
            metadata=dict(input.get("metadata") or {}),
            payload=payload,
        )
        self.replicas.put(name, iteration, block)
        core = self.margo.sim.metrics.scope("core")
        core.counter("blocks_replicated").inc()
        core.counter("replica_bytes").inc(handle.nbytes)
        return "replicated"

    def _rpc_inventory(self, input: dict) -> Generator:
        yield self.margo.sim.timeout(0)
        return self.block_inventory(input["pipeline"], input["iteration"])

    def _rpc_fetch_block(self, input: dict) -> Generator:
        """Serve one replicated block to a recovering peer (RDMA pull
        on the peer's side — the client is never involved)."""
        yield self.margo.sim.timeout(0)
        block = self.replicas.get(
            input["pipeline"], input["iteration"], input["block_id"]
        )
        if block is None:
            return None
        return {
            "block_id": block.block_id,
            "metadata": dict(block.metadata),
            "handle": self.margo.expose(block.payload),
        }
