"""Staged-block replication and crash recovery (DESIGN §11).

The paper lists fault tolerance as future work; the resilient-iteration
client (PR "fault tolerance") recovers from a provider crash only by
throwing away all staged data and re-staging every block from the
simulation. This module makes the staging area itself resilient:

- **Placement.** When a pipeline is configured with
  ``replication_factor: K`` (K >= 2), the owner of each staged block
  forwards it to ``K-1`` *buddy* servers chosen by rendezvous
  (highest-random-weight) hashing over ``(pipeline, iteration,
  block_id)``. Placement is a pure function of the frozen view, so
  every member computes it without communication. When the view spans
  multiple nodes, buddies on the owner's node are skipped — a node
  failure must never take out a block and its replica together.

- **Replica store.** Buddies keep replicated blocks in a
  :class:`ReplicaStore` *next to* the pipeline, never inside
  ``Backend.staged``: replicas are not owned blocks, and the
  single-ownership invariant (DESIGN §6) keeps holding verbatim.

- **Recovery.** When an iteration fails and the client re-activates
  with ``recover=True``, every surviving member runs
  :func:`recover_iteration` inside its 2PC commit — after prepare,
  before the backend's ``activate``. Survivors exchange block
  inventories, detect *orphaned* blocks (staged blocks whose owner is
  no longer in the view), and the rendezvous winner for each orphan
  re-fetches it peer-to-peer from a replica holder (an RDMA pull
  between servers — the client is not involved). Adopted and surviving
  blocks are then re-replicated against the new view so a later
  failure is survivable too. Only a block with neither a live owner
  nor a live replica is reported ``missing``; the client falls back to
  a full re-stage for those — and says which blocks forced it.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from repro.core.backend import StagedBlock
from repro.core.tenancy import tenant_of
from repro.mercury import RpcError
from repro.na.address import Address
from repro.na.payload import payload_nbytes

__all__ = [
    "ReplicaStore",
    "block_owner",
    "node_of",
    "placement_rank",
    "recover_iteration",
    "replica_buddies",
    "replicate_block",
]


def node_of(address: Any) -> str:
    """The failure domain (node name) an endpoint lives on.

    Addresses are ``na+sim://nid00003/colza-7`` — the node is encoded
    in the URI, so failure-domain-aware placement is a pure function
    of the membership view (no extra communication, like
    :func:`~repro.core.provider.mona_address_of`).
    """
    uri = str(address)
    rest = uri.split("://", 1)[-1]
    return rest.rsplit("/", 1)[0]


def placement_rank(key: str, member: Any) -> int:
    """Rendezvous weight of ``member`` for ``key`` (stable across runs;
    SHA-256, not ``hash()``, so PYTHONHASHSEED cannot perturb it)."""
    digest = hashlib.sha256(f"{key}@{member}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


def _block_key(pipeline: str, iteration: int, block_id: int) -> str:
    return f"{pipeline}#{iteration}#{block_id}"


def block_owner(
    pipeline: str, iteration: int, block_id: int, view: Sequence[Address]
) -> Address:
    """The rendezvous winner for a block among ``view``.

    Used during recovery to re-assign orphaned blocks: every survivor
    computes the same winner independently, so exactly one member
    adopts each orphan.
    """
    key = _block_key(pipeline, iteration, block_id)
    return max(view, key=lambda m: (placement_rank(key, m), str(m)))


def replica_buddies(
    pipeline: str,
    iteration: int,
    block_id: int,
    owner: Address,
    view: Sequence[Address],
    factor: int,
) -> List[Address]:
    """The ``K-1`` buddy replicas for a block, rendezvous-ordered.

    The owner is never its own buddy. When the view spans multiple
    nodes, candidates on the owner's node rank behind every off-node
    candidate, so with enough off-node members a node failure cannot
    claim a block and all of its replicas at once. A single-node view
    degrades gracefully to same-node buddies (better than none: it
    still survives process crashes).
    """
    if factor <= 1:
        return []
    key = _block_key(pipeline, iteration, block_id)
    candidates = [m for m in view if m != owner]
    candidates.sort(key=lambda m: (placement_rank(key, m), str(m)), reverse=True)
    owner_node = node_of(owner)
    off_node = [m for m in candidates if node_of(m) != owner_node]
    if off_node:
        on_node = [m for m in candidates if node_of(m) == owner_node]
        candidates = off_node + on_node
    return candidates[: factor - 1]


class ReplicaStore:
    """Buddy-side storage of replicated blocks.

    Keyed ``(pipeline, iteration) -> {block_id: StagedBlock}``, dropped
    together with the pipeline's own staged data at deactivate. The
    table is SimTSan-observable like the provider's other shared state
    (replicate/fetch/recovery handlers race on it across ULTs).
    """

    def __init__(self, sim: Any = None, label: str = "colza.replicas"):
        from repro.analysis.simtsan import Shared

        self._blocks: Dict[Tuple[str, int], Dict[int, StagedBlock]] = Shared(
            sim=sim, label=label
        )

    # ------------------------------------------------------------------
    def put(self, pipeline: str, iteration: int, block: StagedBlock) -> None:
        """Store (or refresh) one replica; idempotent per block id."""
        self._blocks.setdefault((pipeline, iteration), {})[block.block_id] = block

    def get(self, pipeline: str, iteration: int, block_id: int) -> Optional[StagedBlock]:
        return self._blocks.get((pipeline, iteration), {}).get(block_id)

    def pop(self, pipeline: str, iteration: int, block_id: int) -> Optional[StagedBlock]:
        held = self._blocks.get((pipeline, iteration))
        if not held:
            return None
        return held.pop(block_id, None)

    def block_ids(self, pipeline: str, iteration: int) -> List[int]:
        return sorted(self._blocks.get((pipeline, iteration), {}))

    def drop_iteration(self, pipeline: str, iteration: int) -> None:
        self._blocks.pop((pipeline, iteration), None)

    def drop_pipeline(self, pipeline: str) -> None:
        for key in sorted(k for k in self._blocks if k[0] == pipeline):
            self._blocks.pop(key, None)

    def total_blocks(self) -> int:
        return sum(len(held) for _key, held in sorted(self._blocks.items()))


# ---------------------------------------------------------------------------
# wire protocol helpers (run inside provider RPC handlers)
def replicate_block(
    provider,
    pipeline: str,
    iteration: int,
    block: StagedBlock,
    view: Sequence[Address],
    factor: int,
    skip: Sequence[Address] = (),
) -> Generator:
    """Forward one owned block to its buddies (owner side).

    Buddies RDMA-pull the payload exactly like a stage. Forwarding
    failures are tolerated: a buddy that died mid-iteration is SWIM's
    problem, and the next activate's recovery re-heals the placement.
    """
    margo = provider.margo
    buddies = replica_buddies(
        pipeline, iteration, block.block_id, margo.address, view, factor
    )
    for buddy in buddies:
        if buddy in skip:
            continue
        handle = margo.expose(block.payload)
        try:
            yield from margo.provider_call(
                buddy,
                "colza",
                "replicate",
                {
                    "pipeline": pipeline,
                    "iteration": iteration,
                    "block_id": block.block_id,
                    "metadata": dict(block.metadata),
                    "handle": handle,
                },
                nbytes=256,  # ships a handle, not the data
                timeout=provider.REPLICATE_TIMEOUT,
            )
        except RpcError:
            margo.sim.trace.add("colza.replicate_failed")
    return None


def recover_iteration(
    provider,
    pipeline_name: str,
    iteration: int,
    view: Sequence[Address],
    expected: Sequence[int] = (),
) -> Generator:
    """The recovery phase of a re-activation (runs on every member).

    ``expected`` is the client's record of successfully staged block
    ids. It matters when a block's owner AND all its replica holders
    died: no survivor's inventory mentions the block, so without the
    client's list the loss would be silent instead of reported.

    Returns ``{"held": [...], "recovered": int, "missing": [...]}`` —
    the blocks this member owns after recovery, how many it adopted
    from replicas, and the orphans it was responsible for but could
    not find a replica of (the client's re-stage fallback set).
    """
    sim = provider.margo.sim
    me = provider.margo.address
    pipeline = provider.pipelines[pipeline_name]
    key = (pipeline_name, iteration)
    epoch = provider._active.get(key)
    span = sim.trace.begin(
        "colza.recovery",
        pipeline=pipeline_name,
        iteration=iteration,
        server=provider.margo.name,
    )

    # 1. Exchange inventories with every other member of the agreed
    # view. An unreachable peer (it died between prepare and now)
    # simply contributes nothing: its blocks show up as orphans.
    primaries: Dict[int, List[Address]] = {}
    replicas: Dict[int, List[Address]] = {}

    def merge(member: Address, inv: Dict[str, List[int]]) -> None:
        for block_id in inv.get("primary", ()):
            primaries.setdefault(block_id, []).append(member)
        for block_id in inv.get("replica", ()):
            replicas.setdefault(block_id, []).append(member)

    merge(me, provider.block_inventory(pipeline_name, iteration))
    for peer in view:
        if peer == me:
            continue
        try:
            inv = yield from provider.margo.provider_call(
                peer,
                "colza",
                "inventory",
                {"pipeline": pipeline_name, "iteration": iteration},
                timeout=provider.RECOVERY_TIMEOUT,
            )
        except RpcError:
            continue
        merge(peer, inv)

    # 2. Adopt the orphans this member wins: promote a local replica,
    # or RDMA-pull from a replica holder (server-to-server; the client
    # never re-stages).
    known = set(primaries) | set(replicas) | set(expected)
    orphans = sorted(b for b in known if b not in primaries)
    core = sim.metrics.scope("core")
    adopted = 0
    missing: List[int] = []
    for block_id in orphans:
        # The epoch may have died while we were exchanging inventories
        # (or adopting an earlier orphan): an abort-during-recovery is
        # a pinned chaos scenario. Popping a local replica for a dead
        # epoch would destroy the copy the *next* recovery pass needs
        # — the block's only surviving replica, if its owner is gone.
        if provider._active.get(key) != epoch:
            break
        if block_owner(pipeline_name, iteration, block_id, view) != me:
            continue
        block = provider.replicas.pop(pipeline_name, iteration, block_id)
        if block is None:
            for holder in sorted(replicas.get(block_id, []), key=str):
                if holder == me:
                    continue
                try:
                    reply = yield from provider.margo.provider_call(
                        holder,
                        "colza",
                        "fetch_block",
                        {
                            "pipeline": pipeline_name,
                            "iteration": iteration,
                            "block_id": block_id,
                        },
                        nbytes=256,
                        timeout=provider.RECOVERY_TIMEOUT,
                    )
                except RpcError:
                    continue
                if reply is None:
                    continue
                payload = yield provider.margo.bulk_pull(reply["handle"])
                block = StagedBlock(
                    block_id=block_id,
                    metadata=dict(reply.get("metadata") or {}),
                    payload=payload,
                )
                break
        if block is None:
            missing.append(block_id)
            continue
        # The iteration may have been aborted (and even re-activated)
        # while we were pulling; adopting into a dead epoch would race
        # the *next* recovery pass into double ownership.
        if provider._active.get(key) != epoch:
            break
        # Ownership moves here, so the quota charge moves with it
        # (DESIGN §13): the dead owner's accounting died with it.
        # Charged before the stage completes — a staged block must be
        # covered by a charge at every instant (TenantIsolation).
        provider.tenants.charge(
            tenant_of(pipeline_name), pipeline_name, iteration,
            block_id, payload_nbytes(block.payload),
        )
        try:
            yield from pipeline.stage(iteration, block)
        except BaseException:
            # A kill/interrupt landing on the adoption stage must not
            # leave the charge orphaned: the block never made it into
            # the staged set, so nothing would ever release it.
            provider.tenants.uncharge(
                tenant_of(pipeline_name), pipeline_name, iteration, block_id
            )
            raise
        adopted += 1
        core.counter("blocks_recovered").inc()
        sim.trace.add("colza.block_recovered")

    # 3. Re-heal placement: every block this member now owns gets its
    # replica set rebuilt against the *new* view, so consecutive
    # failures (each with f < K between activations) stay survivable.
    factor = pipeline.replication_factor
    if factor >= 2 and len(view) >= 2 and provider._active.get(key) == epoch:
        for block in pipeline.blocks(iteration):
            holders = tuple(replicas.get(block.block_id, ()))
            yield from replicate_block(
                provider, pipeline_name, iteration, block, view,
                factor, skip=holders,
            )

    held = sorted(b.block_id for b in pipeline.blocks(iteration))
    sim.trace.end(span, adopted=adopted, missing=list(missing), held=len(held))
    return {"held": held, "recovered": adopted, "missing": missing}
