"""Block-distribution policies for ``stage`` (§II-B).

By default the target server is selected from the block id
(``block_id % nservers``); users can register alternative policies
(the paper: "users can change this policy").
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Dict, List

from repro.na.address import Address

__all__ = ["get_policy", "register_policy", "registered_policies"]

#: A policy maps (block_id, metadata, servers) -> chosen server.
Policy = Callable[[int, Dict[str, Any], List[Address]], Address]

_POLICIES: Dict[str, Policy] = {}


def register_policy(name: str, policy: Policy) -> None:
    _POLICIES[name] = policy


def registered_policies() -> List[str]:
    return sorted(_POLICIES)


def get_policy(name: str) -> Policy:
    try:
        return _POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown distribution policy {name!r} (known: {registered_policies()})"
        ) from None


def _block_id_mod(block_id: int, _metadata: Dict[str, Any], servers: List[Address]) -> Address:
    return servers[block_id % len(servers)]


def _hash_block(block_id: int, _metadata: Dict[str, Any], servers: List[Address]) -> Address:
    digest = hashlib.sha256(str(block_id).encode()).digest()
    return servers[int.from_bytes(digest[:4], "little") % len(servers)]


def _rendezvous(block_id: int, metadata: Dict[str, Any], servers: List[Address]) -> Address:
    """Highest-random-weight placement (minimal disruption policy).

    Unlike ``block_id_mod``, a member joining or leaving only moves the
    blocks that member wins/loses — every other block keeps its server.
    Uses the same weight function as replica placement (DESIGN §11), so
    ``stage`` targets and recovery's orphan re-ownership agree. The
    pipeline name (when present in metadata) joins the key so two
    pipelines spread their blocks differently.
    """
    from repro.core.replication import placement_rank

    pipeline = str(metadata.get("pipeline", ""))
    key = f"{pipeline}#{block_id}"
    return max(servers, key=lambda s: (placement_rank(key, s), str(s)))


register_policy("block_id_mod", _block_id_mod)
register_policy("hash", _hash_block)
register_policy("rendezvous", _rendezvous)
