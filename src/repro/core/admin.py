"""The Colza admin library (§II-B, last paragraph).

Kept separate from the client library "because of the entirely
different nature of its functionalities": creating/destroying
pipelines on servers and requesting that a server leave the staging
area. Usable by the simulation, the user, a resource manager, or any
agent that wants to resize the staging area or change the analysis.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from repro.argo.sync import Mutex
from repro.margo import MargoInstance, Provider
from repro.na.address import Address

__all__ = ["AdminProvider", "ColzaAdmin"]


class AdminProvider(Provider):
    """Server-side admin RPCs, attached next to the Colza provider."""

    def __init__(self, margo: MargoInstance, colza_provider, daemon=None):
        super().__init__(margo, "colza-admin")
        self.colza = colza_provider
        self.daemon = daemon
        self.colza.on_ready_to_leave = self._spawn_departure
        #: _depart can be triggered twice — once via the provider's
        #: on_ready_to_leave callback and once directly from the leave
        #: RPC. The mutex serializes the bodies; the flag makes the
        #: second one a no-op instead of a second state migration and a
        #: second daemon.leave().
        self._departing = False
        self._depart_mutex = Mutex(margo.sim, name=f"colza-admin.depart@{margo.name}")
        self.export("create_pipeline", self._rpc_create)
        self.export("destroy_pipeline", self._rpc_destroy)
        self.export("leave", self._rpc_leave)

    def _rpc_create(self, input: Dict[str, Any]) -> Generator:
        yield self.margo.sim.timeout(0)
        self.colza.create_pipeline(
            library=input["library"], name=input["name"], config=input.get("config")
        )
        return "created"

    def _rpc_destroy(self, input: Dict[str, Any]) -> Generator:
        yield self.margo.sim.timeout(0)
        self.colza.destroy_pipeline(input["name"])
        return "destroyed"

    def _rpc_leave(self, _input: Any) -> Generator:
        yield self.margo.sim.timeout(0)
        now = self.colza.request_leave()
        if now:
            # Finish the RPC first, then depart (migrating any state).
            self._spawn_departure()
            return "leaving"
        return "deferred"

    def _spawn_departure(self) -> None:
        self.margo.sim.spawn(self._depart(), name="colza-depart")

    def _depart(self) -> Generator:
        """Migrate stateful pipelines' state to a survivor, then leave
        (the paper's future work (3))."""
        yield self._depart_mutex.acquire()
        with self._depart_mutex.held():
            if self._departing:
                return None
            self._departing = True
            survivors = [a for a in self.colza.view() if a != self.margo.address]
            for name, pipeline in list(self.colza.pipelines.items()):
                if not getattr(pipeline, "stateful", False):
                    continue
                state = pipeline.get_state()
                if state is None or not survivors:
                    continue
                successor = survivors[0]
                yield from self.margo.provider_call(
                    successor, "colza", "migrate", {"pipeline": name, "state": state}
                )
            if self.daemon is not None:
                yield from self.daemon.leave()
        return None


class ColzaAdmin:
    """Client-side admin handle (a thin RPC wrapper)."""

    def __init__(self, margo: MargoInstance):
        self.margo = margo

    def create_pipeline(
        self,
        server: Address,
        name: str,
        library: str,
        config: Optional[dict] = None,
    ) -> Generator:
        """Deploy a pipeline on one server (address, name, library path,
        optional JSON-like configuration — the paper's signature)."""
        return (
            yield from self.margo.provider_call(
                server,
                "colza-admin",
                "create_pipeline",
                {"name": name, "library": library, "config": config or {}},
            )
        )

    def create_pipeline_everywhere(
        self,
        servers: List[Address],
        name: str,
        library: str,
        config: Optional[dict] = None,
    ) -> Generator:
        """Deploy a (parallel) pipeline instance on every server."""
        for server in servers:
            yield from self.create_pipeline(server, name, library, config)
        return "created"

    def destroy_pipeline(self, server: Address, name: str) -> Generator:
        return (
            yield from self.margo.provider_call(
                server, "colza-admin", "destroy_pipeline", {"name": name}
            )
        )

    def request_leave(self, server: Address) -> Generator:
        """Ask one server to leave the staging area and shut down."""
        return (yield from self.margo.provider_call(server, "colza-admin", "leave", {}))
