"""The Colza admin library (§II-B, last paragraph).

Kept separate from the client library "because of the entirely
different nature of its functionalities": creating/destroying
pipelines on servers and requesting that a server leave the staging
area. Usable by the simulation, the user, a resource manager, or any
agent that wants to resize the staging area or change the analysis.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from repro.argo.sync import Mutex
from repro.core.replication import placement_rank
from repro.core.tenancy import DEFAULT_TENANT, qualify, tenant_of
from repro.margo import MargoInstance, Provider
from repro.na.address import Address

__all__ = ["AdminProvider", "ColzaAdmin"]


class AdminProvider(Provider):
    """Server-side admin RPCs, attached next to the Colza provider."""

    def __init__(self, margo: MargoInstance, colza_provider, daemon=None):
        super().__init__(margo, "colza-admin")
        self.colza = colza_provider
        self.daemon = daemon
        self.colza.on_ready_to_leave = self._spawn_departure
        #: _depart can be triggered twice — once via the provider's
        #: on_ready_to_leave callback and once directly from the leave
        #: RPC. The mutex serializes the bodies; the flag makes the
        #: second one a no-op instead of a second state migration and a
        #: second daemon.leave().
        self._departing = False
        self._depart_mutex = Mutex(margo.sim, name=f"colza-admin.depart@{margo.name}")
        self.export("create_pipeline", self._rpc_create)
        self.export("destroy_pipeline", self._rpc_destroy)
        self.export("leave", self._rpc_leave)

    def _rpc_create(self, input: Dict[str, Any]) -> Generator:
        yield self.margo.sim.timeout(0)
        name = input["name"]
        ok, reason = self.colza.tenants.admit(tenant_of(name))
        if not ok:
            raise RuntimeError(
                f"create_pipeline {name!r} refused: tenant not admitted ({reason})"
            )
        self.colza.create_pipeline(
            library=input["library"], name=name, config=input.get("config")
        )
        return "created"

    def _rpc_destroy(self, input: Dict[str, Any]) -> Generator:
        yield self.margo.sim.timeout(0)
        name = input["name"]
        # Tenant scoping (DESIGN §13): an admin handle bound to a tenant
        # says so, and may only destroy — and thereby drop the staged
        # data and recovery expectations of — its own pipelines. Before
        # this check, any admin client could destroy another tenant's
        # pipeline by guessing its wire name, yanking the state a
        # recovering activate's expected-block list refers to.
        caller = input.get("tenant")
        if caller is not None and tenant_of(name) != caller:
            raise RuntimeError(
                f"destroy_pipeline {name!r} refused: owned by "
                f"{tenant_of(name)!r}, caller is {caller!r}"
            )
        self.colza.destroy_pipeline(name)
        return "destroyed"

    def _rpc_leave(self, _input: Any) -> Generator:
        yield self.margo.sim.timeout(0)
        now = self.colza.request_leave()
        if now:
            # Finish the RPC first, then depart (migrating any state).
            self._spawn_departure()
            return "leaving"
        return "deferred"

    def _spawn_departure(self) -> None:
        self.margo.sim.spawn(self._depart(), name="colza-depart")

    def _depart(self) -> Generator:
        """Migrate stateful pipelines' state to a survivor, then leave
        (the paper's future work (3))."""
        yield self._depart_mutex.acquire()
        with self._depart_mutex.held():
            if self._departing:
                return None
            self._departing = True
            survivors = [a for a in self.colza.view() if a != self.margo.address]
            for name, pipeline in list(self.colza.pipelines.items()):
                if not getattr(pipeline, "stateful", False):
                    continue
                state = pipeline.get_state()
                if state is None or not survivors:
                    continue
                if tenant_of(name) == DEFAULT_TENANT:
                    successor = survivors[0]
                else:
                    # Tenant pipelines spread their migrated state by
                    # rendezvous instead of all landing on the first
                    # survivor — a departing server shared by N tenants
                    # must not turn one neighbor into everyone's
                    # successor.
                    successor = max(
                        survivors,
                        key=lambda s: (placement_rank(f"migrate#{name}", s), str(s)),
                    )
                yield from self.margo.provider_call(
                    successor, "colza", "migrate", {"pipeline": name, "state": state}
                )
            if self.daemon is not None:
                yield from self.daemon.leave()
        return None


class ColzaAdmin:
    """Client-side admin handle (a thin RPC wrapper).

    Like :class:`~repro.core.client.ColzaClient`, an admin handle is
    bound to one tenant: pipeline names are qualified on the wire and
    destroys are validated server-side against the owning tenant.
    """

    def __init__(self, margo: MargoInstance, tenant: str = DEFAULT_TENANT):
        self.margo = margo
        self.tenant = tenant

    def _payload(self, name: str, extra: Optional[dict] = None) -> dict:
        payload = dict(extra or {})
        payload["name"] = qualify(self.tenant, name)
        if self.tenant != DEFAULT_TENANT:
            # Only tenant-bound admins say who they are; the default
            # admin's wire payload stays byte-for-byte the legacy one.
            payload["tenant"] = self.tenant
        return payload

    def create_pipeline(
        self,
        server: Address,
        name: str,
        library: str,
        config: Optional[dict] = None,
    ) -> Generator:
        """Deploy a pipeline on one server (address, name, library path,
        optional JSON-like configuration — the paper's signature)."""
        return (
            yield from self.margo.provider_call(
                server,
                "colza-admin",
                "create_pipeline",
                self._payload(name, {"library": library, "config": config or {}}),
            )
        )

    def create_pipeline_everywhere(
        self,
        servers: List[Address],
        name: str,
        library: str,
        config: Optional[dict] = None,
    ) -> Generator:
        """Deploy a (parallel) pipeline instance on every server."""
        for server in servers:
            yield from self.create_pipeline(server, name, library, config)
        return "created"

    def destroy_pipeline(self, server: Address, name: str) -> Generator:
        return (
            yield from self.margo.provider_call(
                server, "colza-admin", "destroy_pipeline", self._payload(name)
            )
        )

    def request_leave(self, server: Address) -> Generator:
        """Ask one server to leave the staging area and shut down."""
        return (yield from self.margo.provider_call(server, "colza-admin", "leave", {}))
