"""Determinism analysis toolchain (DESIGN §9).

Three cooperating tools turn the kernel's determinism claim from
convention into something enforced:

- :mod:`repro.analysis.detlint` — an AST linter (stdlib ``ast`` only)
  whose rules target the ways this codebase could silently lose
  bit-identical replay: wall-clock reads, global RNG state, unordered
  iteration feeding the scheduler, ``id()``/``hash()`` ordering,
  mutable defaults in task coroutines, interrupt-swallowing excepts,
  and order-sensitive float accumulation.
- :mod:`repro.analysis.simtsan` — a runtime yield-point race detector
  for state shared across cooperative tasks (SSG views, the provider's
  pipeline table, 2PC activation state).
- :mod:`repro.analysis.fuzz` — a schedule-perturbation fuzzer that
  re-runs scenarios under seeded permutations of same-timestamp
  tie-breaking and diffs invariant-level digests.
- :mod:`repro.analysis.flowcheck` — an interprocedural protocol and
  resource-lifecycle analyzer (DESIGN §10): whole-program call graph
  over spawn edges and RPC name strings, with dataflow passes for task
  leaks, event lifecycle, acquire/release pairing, lock-order cycles,
  collective divergence, and RPC contract checking.
- :mod:`repro.analysis.report` — merged SARIF-lite JSON across detlint
  and flowcheck for CI artifacts.

CLI: ``python -m repro.analysis lint`` / ``check`` / ``report`` /
``fuzz`` (see ``--help`` on each).
"""

from repro.analysis.detlint import Finding, LintReport, run_lint
from repro.analysis.flowcheck import CheckReport, FlowFinding, run_check
from repro.analysis.report import AnalysisReport, run_report
from repro.analysis.simtsan import RaceReport, Shared, SimTSan, tracked, untracked

#: Lazy re-exports from repro.analysis.fuzz: the fuzz harness imports
#: the chaos stack, which itself imports repro.analysis.simtsan — an
#: eager import here would close that cycle mid-initialization.
_FUZZ_EXPORTS = (
    "FUZZ_SCENARIOS",
    "FuzzOutcome",
    "FuzzReport",
    "run_fuzz",
    "run_fuzz_one",
)


def __getattr__(name: str):
    if name in _FUZZ_EXPORTS:
        from repro.analysis import fuzz

        return getattr(fuzz, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "AnalysisReport",
    "CheckReport",
    "FUZZ_SCENARIOS",
    "Finding",
    "FlowFinding",
    "FuzzOutcome",
    "FuzzReport",
    "LintReport",
    "RaceReport",
    "Shared",
    "SimTSan",
    "run_check",
    "run_fuzz",
    "run_fuzz_one",
    "run_lint",
    "run_report",
    "tracked",
    "untracked",
]
