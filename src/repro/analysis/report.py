"""Unified report across detlint and flowcheck: SARIF-lite and SARIF 2.1.0.

One JSON document for CI artifact upload: every finding from both
analyzers, normalized to a shared shape (tool, rule id, severity,
location, suppression state + reason). detlint findings have no
native severity; they are all determinism hazards, so they map to
``"error"``.

Two serializations of the same merged finding list:

``to_json()``
    The stable ``sarif-lite-1`` shape (flat finding dicts) consumed by
    the repo's own tests and the bench trajectory harness.

``to_sarif()``
    Real SARIF 2.1.0 — one run, one driver carrying both tools' rule
    metadata, results with physical locations/regions, and ``inSource``
    suppressions with justifications — suitable for GitHub code
    scanning upload (``github/codeql-action/upload-sarif``).

Findings identical under the ``(rule, path, line)`` fingerprint are
deduplicated at merge time (two passes flagging the same line under the
same rule would otherwise double-report in CI).

::

    python -m repro.analysis report --json > analysis-report.json
    python -m repro.analysis report --sarif > analysis.sarif
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.analysis.detlint import RULES, run_lint
from repro.analysis.flowcheck import PASSES, run_check

__all__ = ["AnalysisReport", "run_report"]

SCHEMA_VERSION = "sarif-lite-1"
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
    "master/Schemata/sarif-schema-2.1.0.json"
)

# SARIF result levels: only error/warning/note/none are legal.
_SARIF_LEVEL = {"error": "error", "warning": "warning", "info": "note"}


def _rule_metadata() -> List[Dict]:
    """Both analyzers' rule tables as SARIF reportingDescriptors."""
    rules: List[Dict] = []
    for det in sorted(RULES, key=lambda r: r.id):
        rules.append(
            {
                "id": det.id,
                "name": det.slug,
                "shortDescription": {"text": det.summary},
                "defaultConfiguration": {"level": "error"},
                "properties": {"tool": "detlint"},
            }
        )
    for rule_id in sorted(PASSES):
        spec = PASSES[rule_id]
        rules.append(
            {
                "id": spec.rule,
                "name": spec.slug,
                "shortDescription": {"text": spec.slug.replace("-", " ")},
                "defaultConfiguration": {
                    "level": _SARIF_LEVEL.get(spec.severity, "warning")
                },
                "properties": {"tool": "flowcheck"},
            }
        )
    return rules


@dataclass
class AnalysisReport:
    """Normalized findings from every analyzer over one file set."""

    findings: List[Dict]
    files_checked: int
    deduped: int = 0

    @property
    def ok(self) -> bool:
        return not [f for f in self.findings if not f["suppressed"]]

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for finding in self.findings:
            key = "suppressed" if finding["suppressed"] else finding["severity"]
            out[key] = out.get(key, 0) + 1
        return out

    def suppressed_by_rule(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for finding in self.findings:
            if finding["suppressed"]:
                out[finding["rule"]] = out.get(finding["rule"], 0) + 1
        return out

    def to_json(self) -> str:
        return json.dumps(
            {
                "version": SCHEMA_VERSION,
                "tools": {
                    "detlint": "determinism AST lint (DET rules)",
                    "flowcheck": "interprocedural protocol/lifecycle analysis (FC rules)",
                },
                "files_checked": self.files_checked,
                "ok": self.ok,
                "counts": self.counts(),
                "suppressed_by_rule": self.suppressed_by_rule(),
                "deduped": self.deduped,
                "findings": self.findings,
            },
            indent=2,
            sort_keys=True,
        )

    def to_sarif(self) -> str:
        rules = _rule_metadata()
        rule_index = {r["id"]: i for i, r in enumerate(rules)}
        results: List[Dict] = []
        for f in self.findings:
            result: Dict = {
                "ruleId": f["rule"],
                "level": _SARIF_LEVEL.get(f["severity"], "warning"),
                "message": {"text": f["message"]},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": f["path"].replace("\\", "/"),
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {
                                "startLine": f["line"],
                                # SARIF columns are 1-based; ast's are 0-based.
                                "startColumn": f["col"] + 1,
                            },
                        }
                    }
                ],
                "properties": {"tool": f["tool"]},
            }
            if f["rule"] in rule_index:
                result["ruleIndex"] = rule_index[f["rule"]]
            if f["suppressed"]:
                result["suppressions"] = [
                    {"kind": "inSource", "justification": f["reason"] or ""}
                ]
            results.append(result)
        return json.dumps(
            {
                "$schema": SARIF_SCHEMA,
                "version": SARIF_VERSION,
                "runs": [
                    {
                        "tool": {
                            "driver": {
                                "name": "repro-analysis",
                                "informationUri": (
                                    "https://example.invalid/repro/DESIGN.md"
                                ),
                                "semanticVersion": "1.0.0",
                                "rules": rules,
                            }
                        },
                        "columnKind": "utf16CodeUnits",
                        "originalUriBaseIds": {
                            "SRCROOT": {"uri": "file:///"},
                        },
                        "results": results,
                    }
                ],
            },
            indent=2,
            sort_keys=True,
        )


def _entry(
    tool: str,
    rule: str,
    severity: str,
    path: str,
    line: int,
    col: int,
    message: str,
    suppressed: bool,
    reason: str,
) -> Dict:
    return {
        "tool": tool,
        "rule": rule,
        "severity": severity,
        "path": path,
        "line": line,
        "col": col,
        "message": message,
        "suppressed": suppressed,
        "reason": reason,
    }


def run_report(
    paths: Iterable[str], root: Optional[str] = None
) -> AnalysisReport:
    lint = run_lint(list(paths), root=root)
    check = run_check(list(paths), root=root)
    findings: List[Dict] = []
    for f in lint.findings:
        findings.append(
            _entry(
                "detlint", f.rule, "error", f.path, f.line, f.col,
                f.message, f.suppressed, f.reason,
            )
        )
    for f in check.findings:
        findings.append(
            _entry(
                "flowcheck", f.rule, f.severity, f.path, f.line, f.col,
                f.message, f.suppressed, f.reason,
            )
        )
    findings.sort(key=lambda e: (e["path"], e["line"], e["tool"], e["rule"]))
    seen = set()
    unique: List[Dict] = []
    for entry in findings:
        fingerprint = (entry["rule"], entry["path"], entry["line"])
        if fingerprint in seen:
            continue
        seen.add(fingerprint)
        unique.append(entry)
    return AnalysisReport(
        findings=unique,
        files_checked=check.files_checked,
        deduped=len(findings) - len(unique),
    )
