"""Unified SARIF-lite report across detlint and flowcheck.

One JSON document for CI artifact upload: every finding from both
analyzers, normalized to a shared shape (tool, rule id, severity,
location, suppression state + reason). detlint findings have no
native severity; they are all determinism hazards, so they map to
``"error"``.

::

    python -m repro.analysis report --json > analysis-report.json
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.analysis.detlint import run_lint
from repro.analysis.flowcheck import run_check

__all__ = ["AnalysisReport", "run_report"]

SCHEMA_VERSION = "sarif-lite-1"


@dataclass
class AnalysisReport:
    """Normalized findings from every analyzer over one file set."""

    findings: List[Dict]
    files_checked: int

    @property
    def ok(self) -> bool:
        return not [f for f in self.findings if not f["suppressed"]]

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for finding in self.findings:
            key = "suppressed" if finding["suppressed"] else finding["severity"]
            out[key] = out.get(key, 0) + 1
        return out

    def to_json(self) -> str:
        return json.dumps(
            {
                "version": SCHEMA_VERSION,
                "tools": {
                    "detlint": "determinism AST lint (DET rules)",
                    "flowcheck": "interprocedural protocol/lifecycle analysis (FC rules)",
                },
                "files_checked": self.files_checked,
                "ok": self.ok,
                "counts": self.counts(),
                "findings": self.findings,
            },
            indent=2,
            sort_keys=True,
        )


def _entry(
    tool: str,
    rule: str,
    severity: str,
    path: str,
    line: int,
    col: int,
    message: str,
    suppressed: bool,
    reason: str,
) -> Dict:
    return {
        "tool": tool,
        "rule": rule,
        "severity": severity,
        "path": path,
        "line": line,
        "col": col,
        "message": message,
        "suppressed": suppressed,
        "reason": reason,
    }


def run_report(
    paths: Iterable[str], root: Optional[str] = None
) -> AnalysisReport:
    lint = run_lint(list(paths), root=root)
    check = run_check(list(paths), root=root)
    findings: List[Dict] = []
    for f in lint.findings:
        findings.append(
            _entry(
                "detlint", f.rule, "error", f.path, f.line, f.col,
                f.message, f.suppressed, f.reason,
            )
        )
    for f in check.findings:
        findings.append(
            _entry(
                "flowcheck", f.rule, f.severity, f.path, f.line, f.col,
                f.message, f.suppressed, f.reason,
            )
        )
    findings.sort(key=lambda e: (e["path"], e["line"], e["tool"], e["rule"]))
    return AnalysisReport(findings=findings, files_checked=check.files_checked)
