"""Replayable counterexample files (``.sched``) shared by mcheck and fuzz.

A schedule file pins everything needed to re-execute one exact run of
one scenario:

- for the model checker, the scenario seed plus the **choice vector** —
  the index the exploration driver took at every same-timestamp choice
  point (``0`` = FIFO head, so the all-zero vector *is* the FIFO
  schedule and trailing zeros can be dropped);
- for the schedule fuzzer, the scenario seed plus the splitmix64
  **perturbation seed** that permuted the tie-break keys.

Both tools also record a **violation digest** — the strict canonical
hash (:func:`repro.analysis.fuzz.invariant_digest`) of the scenario
name, seed, and sorted violation list — so a replay can assert it
reproduced *the same* failure, not merely *a* failure. Fuzz
counterexamples additionally pin the run's invariant digest, because a
fuzz divergence may be a guarantee drift with no violation at all.

Format (JSON, one object)::

    {"format": "repro-sched-v1", "tool": "mcheck" | "fuzz",
     "scenario": ..., "seed": ...,
     "choices": [...] | "fuzz_seed": ...,
     "violation_digest": ..., "violations": [...],
     "invariant_digest": ...?, "meta": {...}}

``python -m repro.analysis replay <file>`` dispatches on ``tool``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "SCHED_FORMAT",
    "ReplayResult",
    "Schedule",
    "replay",
    "violation_digest",
]

SCHED_FORMAT = "repro-sched-v1"


def violation_digest(scenario: str, seed: int, violations: Iterable[str]) -> str:
    """Canonical hash identifying *which* failure a run produced."""
    from repro.analysis.fuzz import invariant_digest

    return invariant_digest(
        {
            "scenario": scenario,
            "seed": seed,
            "violations": sorted(violations),
        }
    )


@dataclass
class Schedule:
    """One pinned run of one scenario — the counterexample artifact."""

    tool: str  #: "mcheck" or "fuzz"
    scenario: str
    seed: int
    #: mcheck: command per choice point (0 = FIFO head, k = k-th awake
    #: candidate, -1 = postpone the head; trailing zeros dropped).
    choices: Tuple[int, ...] = ()
    #: fuzz: the tie-break perturbation seed (None for mcheck).
    fuzz_seed: Optional[int] = None
    #: Expected failure identity; None for a clean pinned schedule.
    violation_digest: Optional[str] = None
    violations: Tuple[str, ...] = ()
    #: fuzz only: the run's full invariant digest (divergences may
    #: drift guarantees without producing a violation string).
    invariant_digest: Optional[str] = None
    meta: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "format": SCHED_FORMAT,
            "tool": self.tool,
            "scenario": self.scenario,
            "seed": self.seed,
        }
        if self.tool == "fuzz":
            doc["fuzz_seed"] = self.fuzz_seed
        else:
            doc["choices"] = list(self.choices)
        if self.violation_digest is not None:
            doc["violation_digest"] = self.violation_digest
        if self.violations:
            doc["violations"] = list(self.violations)
        if self.invariant_digest is not None:
            doc["invariant_digest"] = self.invariant_digest
        if self.meta:
            doc["meta"] = self.meta
        return doc

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "Schedule":
        fmt = doc.get("format")
        if fmt != SCHED_FORMAT:
            raise ValueError(
                f"not a schedule file: format={fmt!r} (expected {SCHED_FORMAT!r})"
            )
        tool = doc.get("tool")
        if tool not in ("mcheck", "fuzz"):
            raise ValueError(f"unknown schedule tool {tool!r}")
        return cls(
            tool=tool,
            scenario=doc["scenario"],
            seed=int(doc["seed"]),
            choices=tuple(int(c) for c in doc.get("choices", ())),
            fuzz_seed=doc.get("fuzz_seed"),
            violation_digest=doc.get("violation_digest"),
            violations=tuple(doc.get("violations", ())),
            invariant_digest=doc.get("invariant_digest"),
            meta=dict(doc.get("meta", {})),
        )

    def save(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    @classmethod
    def load(cls, path: str) -> "Schedule":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(json.load(fh))


@dataclass
class ReplayResult:
    """Outcome of re-executing a pinned schedule."""

    schedule: Schedule
    violations: Tuple[str, ...]
    violation_digest: str
    #: fuzz replays: the re-run's invariant digest.
    invariant_digest: Optional[str] = None
    #: mcheck replays: the forced choice vector no longer matched the
    #: live candidates (code drifted since the file was written).
    diverged: bool = False
    payload: Dict[str, Any] = field(default_factory=dict)

    @property
    def matches(self) -> bool:
        """Did the replay reproduce the recorded failure identity?"""
        if self.diverged:
            return False
        if self.schedule.violation_digest is not None:
            if self.violation_digest != self.schedule.violation_digest:
                return False
        if (
            self.schedule.invariant_digest is not None
            and self.invariant_digest is not None
        ):
            if self.invariant_digest != self.schedule.invariant_digest:
                return False
        return True

    def render(self) -> str:
        sched = self.schedule
        head = (
            f"replay {sched.tool}:{sched.scenario} seed={sched.seed} "
            + (
                f"choices={list(sched.choices)}"
                if sched.tool == "mcheck"
                else f"fuzz_seed={sched.fuzz_seed}"
            )
        )
        lines = [head]
        if self.diverged:
            lines.append(
                "  DIVERGED: recorded choices no longer match the live "
                "schedule (code changed since the file was written)"
            )
        for violation in self.violations:
            lines.append(f"  violation: {violation}")
        if sched.violation_digest is not None:
            verdict = "reproduced" if self.matches else "DID NOT reproduce"
            lines.append(
                f"  {verdict} recorded failure "
                f"{sched.violation_digest[:12]} "
                f"(replay: {self.violation_digest[:12]})"
            )
        elif not self.violations:
            lines.append("  clean (no violations, none expected)")
        return "\n".join(lines)


def replay(schedule: Schedule) -> ReplayResult:
    """Re-execute a pinned schedule and compare failure identities."""
    if schedule.tool == "fuzz":
        from repro.analysis.fuzz import run_fuzz_one

        outcome = run_fuzz_one(
            schedule.scenario, schedule.seed, schedule.fuzz_seed
        )
        return ReplayResult(
            schedule=schedule,
            violations=tuple(outcome.violations),
            violation_digest=violation_digest(
                schedule.scenario, schedule.seed, outcome.violations
            ),
            invariant_digest=outcome.invariant_digest,
            payload=dict(outcome.payload),
        )

    from repro.analysis.mcheck.explore import run_schedule

    record = run_schedule(schedule.scenario, schedule.seed, schedule.choices)
    return ReplayResult(
        schedule=schedule,
        violations=tuple(record.violations),
        violation_digest=record.violation_digest,
        diverged=record.diverged,
        payload=dict(record.payload),
    )
