"""Colzacheck: systematic model checking of the staging protocols.

A stateless, DPOR-style checker (in the Coyote/Shuttle tradition) for
the 2PC activation, SWIM-recovery, replication, and tenancy protocols.
Where the schedule fuzzer (:mod:`repro.analysis.fuzz`) samples random
tie-break permutations, the checker *enumerates* same-timestamp
interleavings around a scenario's racy window, prunes provably
equivalent ones using SimTSan access footprints as the independence
relation, and emits minimized, replayable ``.sched`` counterexamples
when an invariant breaks.

Layers:

- :mod:`~repro.analysis.mcheck.driver` — the controlled tie-break
  driver (choice recording, access footprints);
- :mod:`~repro.analysis.mcheck.explore` — DFS over choice prefixes
  with sleep-set-style pruning, trace dedup, budgets, and shrinking;
- :mod:`~repro.analysis.mcheck.sched` — the counterexample file
  format, shared with the fuzzer, and replay;
- :mod:`~repro.analysis.mcheck.scenarios` — the protocol windows under
  test.

CLI: ``python -m repro.analysis mcheck --scenario 2pc_activation``;
replay a counterexample with ``python -m repro.analysis replay
<file.sched>``.
"""

from repro.analysis.mcheck.driver import ScheduleController, fingerprint
from repro.analysis.mcheck.explore import ExploreReport, explore, run_schedule
from repro.analysis.mcheck.sched import ReplayResult, Schedule, replay
from repro.analysis.mcheck.scenarios import (
    MCHECK_SCENARIOS,
    McheckOutcome,
    scenario_names,
)

__all__ = [
    "ExploreReport",
    "MCHECK_SCENARIOS",
    "McheckOutcome",
    "ReplayResult",
    "Schedule",
    "ScheduleController",
    "explore",
    "fingerprint",
    "replay",
    "run_schedule",
    "scenario_names",
]
