"""Model-checking scenarios: small, protocol-legal racy windows.

Each scenario builds a real stack (the same builders the chaos fleet
uses), runs bring-up under plain FIFO scheduling with the exploration
driver *disarmed*, then arms it around a deliberately concurrent window
— the part whose same-timestamp interleavings the explorer enumerates —
and finally quiesces, audits, and reduces the run to a
:class:`McheckOutcome`.

Scenario rules (what keeps the clean tree clean in *every* schedule):

- concurrency stays within the client contract: one handle never runs
  two control operations at once unless real retry flows do (late
  duplicate aborts, crash-triggered re-activation);
- client-visible failures the protocol is allowed to produce under
  reordering (activate retry exhaustion, ``stage raced deactivate``)
  are *tolerated outcomes*, recorded in the payload — only invariant
  monitor violations, scenario-level audits (residual quota charges,
  charge/staged accounting, probe stages), and — where a window is
  known race-free — SimTSan reports count as violations;
- every wait on protocol state goes through ``untracked`` so auditing
  is invisible to both SimTSan and the footprint collector.

The statistics backend never suspends in ``deactivate``, which makes
the provider's post-flush epoch guard (the ``if key not in
self._active`` re-check) a zero-width window. The
:class:`FlushingStatsBackend` here restores the width: its deactivate
flushes accumulated results at a configurable throughput before
dropping staged data, so a deactivate overlaps a successor activation
for simulated *seconds* — long enough for the explorer to drive stages
of the new epoch through the stale handler's resume point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.analysis.simtsan import SimTSan, untracked
from repro.core.backend import register_backend
from repro.core.pipelines.stats import StatisticsBackend
from repro.core.tenancy import TenancyConfig, TenantQuota
from repro.sim import Controlled, tie_strategy
from repro.testing import drive, run_until

__all__ = [
    "FLUSH",
    "FlushingStatsBackend",
    "MCHECK_SCENARIOS",
    "McheckOutcome",
    "mcheck_scenario",
    "scenario_names",
]

#: Library name for the flush-on-deactivate statistics pipeline.
FLUSH = "libcolza-mcheck-flush.so"


class FlushingStatsBackend(StatisticsBackend):
    """Statistics pipeline whose ``deactivate`` flushes before dropping.

    ``flush_bytes_per_second`` (default 64 KiB/s) prices the flush of
    the blocks staged *here*; with the chaos fleet's 64 KiB blocks that
    is one simulated second per block — a wide, deterministic window in
    which this provider's deactivate handler is suspended mid-epoch.
    Only the blocks present at flush start are dropped afterwards:
    blocks a successor activation stages while the flush is in flight
    belong to the new epoch and must survive.
    """

    def deactivate(self, iteration: int) -> Generator:
        mine = list(self.staged.get(iteration, ()))
        rate = float(self.config.get("flush_bytes_per_second", 65536.0))
        nbytes = sum(getattr(b.payload, "nbytes", 0) for b in mine)
        yield from self.margo.compute(max(nbytes, 1) / rate)
        held = self.staged.get(iteration)
        if held is not None:
            survivors = [b for b in held if all(b is not m for m in mine)]
            if survivors:
                self.staged[iteration] = survivors
            else:
                self.staged.pop(iteration, None)
        return None


register_backend(FLUSH, FlushingStatsBackend)


@dataclass
class McheckOutcome:
    """What one explored schedule produced."""

    violations: List[str]
    digest: str  #: the run's schedule digest (sim.trace.digest())
    payload: Dict[str, Any] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# registry
#: name -> callable(seed, controller) -> McheckOutcome
MCHECK_SCENARIOS: Dict[str, Callable[[int, Any], McheckOutcome]] = {}


def mcheck_scenario(fn):
    MCHECK_SCENARIOS[fn.__name__.replace("_mc_", "", 1)] = fn
    return fn


def scenario_names() -> List[str]:
    return sorted(MCHECK_SCENARIOS)


# ---------------------------------------------------------------------------
# plumbing
def _controlled_stack(controller, builder, **kwargs):
    """Build a stack whose Simulation defers tie-breaks to ``controller``
    and whose Shared accesses feed the controller's footprints."""
    with tie_strategy(Controlled(controller)):
        ctx = builder(**kwargs)
    tsan = SimTSan(ctx.sim).install()
    controller.attach(tsan)
    return ctx, tsan


def _guarded(errors: List[str], tag: str, gen) -> Generator:
    """Run a client generator, demoting protocol-legal failures
    (retry exhaustion, raced stages, quota refusals) to payload notes."""
    try:
        result = yield from gen
        return result
    except Exception as err:
        errors.append(f"{tag}: {type(err).__name__}: {err}")
        return None


def _residual_charges(ctx) -> List[str]:
    """Quota charges surviving quiesce = leaked accounting."""
    out: List[str] = []
    with untracked(ctx.sim):
        for daemon in ctx.deployment.live_daemons():
            registry = daemon.provider.tenants
            for tenant in registry.tenants():
                blocks, nbytes = registry.usage(tenant)
                if blocks:
                    out.append(
                        f"{daemon.name}: tenant {tenant!r} still charged "
                        f"{blocks} block(s) / {nbytes} B after quiesce"
                    )
    return out


def _charge_accounting(ctx) -> List[str]:
    """Charged blocks must equal primary staged blocks, per provider
    (replicas are deliberately uncharged). Run only at quiescent points
    — no stage/deactivate in flight."""
    out: List[str] = []
    with untracked(ctx.sim):
        for daemon in ctx.deployment.live_daemons():
            provider = daemon.provider
            staged = sum(
                len(blocks)
                for pipeline in provider.pipelines.values()
                for blocks in pipeline.staged.values()
            )
            registry = provider.tenants
            charged = sum(registry.usage(t)[0] for t in registry.tenants())
            if staged != charged:
                out.append(
                    f"{daemon.name}: charge accounting drift — "
                    f"{charged} block(s) charged but {staged} staged"
                )
    return out


def _mc_finish(
    ctx,
    tsan,
    controller,
    errors: List[str],
    payload: Dict[str, Any],
    extra_violations: Optional[List[str]] = None,
    races_fatal: bool = False,
    settle: float = 4.0,
) -> McheckOutcome:
    controller.disarm()
    sim = ctx.sim
    sim.run(until=sim.now + settle)
    try:
        run_until(sim, ctx.deployment.converged, max_time=120)
    except TimeoutError:
        pass  # final_check records it
    ctx.monitor.final_check()
    ctx.monitor.detach()
    violations = list(ctx.monitor.violations)
    violations.extend(extra_violations or ())
    if races_fatal:
        violations.extend(f"simtsan: {r.describe()}" for r in tsan.races)
    tsan.uninstall()
    payload = dict(payload)
    payload["errors"] = sorted(errors)
    payload["races"] = len(tsan.races)
    return McheckOutcome(
        violations=violations, digest=sim.trace.digest(), payload=payload
    )


def _all_inactive(ctx) -> bool:
    with untracked(ctx.sim):
        return all(
            not d.provider._active for d in ctx.deployment.live_daemons()
        )


def _spawn_all_done(sim, tasks) -> Callable[[], bool]:
    return lambda: all(t.finished for t in tasks)


# ---------------------------------------------------------------------------
# scenarios
@mcheck_scenario
def _mc_2pc_activation(seed: int, controller) -> McheckOutcome:
    """Deactivate's flush window vs. a successor activation's stages.

    Iteration 1 is activated and staged; a deactivate lands (epoch
    popped everywhere) and suspends in the pipeline flush. While it is
    suspended, the client re-activates the same iteration and stages
    fresh blocks paced across the flush's end. The stale handler's
    resume must *not* drop the new epoch's replicas or quota charges —
    the provider's post-flush epoch guard. Without it, the new epoch's
    charges evaporate and the very next stage span fails the
    staged-implies-charged audit.
    """
    from repro.chaos.scenarios import LIGHT_BLOCK, build_stack

    ctx, tsan = _controlled_stack(
        controller,
        build_stack,
        seed=seed,
        n_servers=2,
        library=FLUSH,
        config={"flush_bytes_per_second": 65536.0},
    )
    sim, h = ctx.sim, ctx.handle
    errors: List[str] = []

    def _setup():
        yield from h.activate(1)
        for b in range(2):
            yield from h.stage(1, b, LIGHT_BLOCK)

    drive(sim, _setup(), max_time=120)

    # Send the deactivate as raw per-server RPCs (the shape of a retry
    # duplicate: same wire traffic, no handle-state side effects — a
    # handle-level deactivate would clear ``frozen_view`` under the
    # re-activation when its broadcast completed). Wait for the epoch
    # pops to land everywhere: from here to each flush's end the
    # handlers are suspended mid-deactivate.
    def _one_deactivate(server):
        return ctx.margo.provider_call(
            server,
            "colza",
            "deactivate",
            {"pipeline": h.name, "iteration": 1},
            nbytes=256,
        )

    view = sorted(h.frozen_view)
    deactivators = [
        sim.spawn(
            _guarded(errors, f"late-deactivate-{i}", _one_deactivate(server)),
            name=f"mc-late-deactivate-{i}",
        )
        for i, server in enumerate(view)
    ]
    run_until(sim, lambda: _all_inactive(ctx), max_time=60)

    controller.arm()

    def _reactivate():
        view = yield from _guarded(errors, "reactivate", h.activate(1))
        if view is None:
            return
        for b in range(4):
            yield from _guarded(errors, f"stage-{b}", h.stage(1, b, LIGHT_BLOCK))
            yield sim.timeout(0.9)
        yield from _guarded(errors, "execute", h.execute(1))

    reactivator = sim.spawn(_reactivate(), name="mc-reactivate")
    run_until(
        sim, _spawn_all_done(sim, deactivators + [reactivator]), max_time=300
    )
    controller.disarm()

    drive(sim, _guarded(errors, "final-deactivate", h.deactivate(1)), max_time=120)
    extra = _residual_charges(ctx) + _charge_accounting(ctx)
    return _mc_finish(ctx, tsan, controller, errors, {"scenario": "2pc_activation"}, extra)


@mcheck_scenario
def _mc_abort_during_recovery(seed: int, controller) -> McheckOutcome:
    """A replica-recovery activation with a member crash mid-adoption.

    Iteration 1 is staged with replication factor 2, then aborted with
    ``keep_data`` (the retry path: epoch dies, blocks and replicas
    survive). The armed window replays the whole resilient retry —
    recover-activate, adoption, execute — while an assassin task waits
    for the first adopted block and then crashes one surviving server,
    aborting adoptions in flight. Every interleaving must preserve
    block accounting (no block loss beyond the noted failure) and leak
    no quota charges for adoption stages that aborted.
    """
    from repro.chaos.scenarios import LIGHT_BLOCK, build_stack

    ctx, tsan = _controlled_stack(
        controller,
        build_stack,
        seed=seed,
        n_servers=3,
        library=FLUSH,
        config={
            "flush_bytes_per_second": 262144.0,
            "replication_factor": 2,
        },
    )
    sim, h = ctx.sim, ctx.handle
    errors: List[str] = []

    def _setup():
        yield from h.activate(1)
        for b in range(3):
            yield from h.stage(1, b, LIGHT_BLOCK)
        yield from h.abort(1, keep_data=True)

    drive(sim, _setup(), max_time=120)

    controller.arm()
    blocks = [(b, LIGHT_BLOCK) for b in range(3)]
    recoverer = sim.spawn(
        _guarded(
            errors,
            "resilient-recovery",
            h.run_resilient_iteration(1, blocks, max_attempts=6),
        ),
        name="mc-recoverer",
    )

    def _assassin():
        def adopted():
            with untracked(sim):
                return sim.trace.counters.get("colza.block_recovered", 0) >= 1

        deadline = sim.now + 60.0
        while not adopted() and sim.now < deadline and not recoverer.finished:
            yield sim.timeout(0.05)
        with untracked(sim):
            live = ctx.deployment.live_daemons()
        if recoverer.finished or len(live) < 2:
            return
        victim = live[-1]
        ctx.monitor.note_failure(victim.name)
        victim.crash()

    assassin = sim.spawn(_assassin(), name="mc-assassin")
    run_until(sim, _spawn_all_done(sim, [recoverer, assassin]), max_time=600)
    controller.disarm()

    drive(sim, _guarded(errors, "final-abort", h.abort(1)), max_time=120)
    extra = _residual_charges(ctx) + _charge_accounting(ctx)
    return _mc_finish(
        ctx, tsan, controller, errors,
        {"scenario": "abort_during_recovery"}, extra, settle=8.0,
    )


@mcheck_scenario
def _mc_owner_crash_adoption(seed: int, controller) -> McheckOutcome:
    """Crash a block owner, then explore the adoption interleavings.

    With the owner already dead and the group reconverged (all under
    FIFO), the armed window is the recovery itself: abort-for-retry,
    recover-activate with the expected block set, replica adoption from
    whichever survivors hold copies, then execute and a clean
    deactivate. Which survivor adopts each orphaned block is exactly a
    same-timestamp delivery order; every choice must end with each
    block singly owned and nothing re-staged by the client.
    """
    from repro.chaos.scenarios import LIGHT_BLOCK, build_stack

    ctx, tsan = _controlled_stack(
        controller,
        build_stack,
        seed=seed,
        n_servers=3,
        library=FLUSH,
        config={
            "flush_bytes_per_second": 262144.0,
            "replication_factor": 2,
        },
    )
    sim, h = ctx.sim, ctx.handle
    errors: List[str] = []

    def _setup():
        yield from h.activate(1)
        for b in range(3):
            yield from h.stage(1, b, LIGHT_BLOCK)
        yield from h.abort(1, keep_data=True)

    drive(sim, _setup(), max_time=120)

    # Find and kill the owner of block 0 (primary copy), FIFO-side.
    victim = None
    with untracked(sim):
        for daemon in ctx.deployment.live_daemons():
            for pipeline in daemon.provider.pipelines.values():
                if any(b.block_id == 0 for b in pipeline.blocks(1)):
                    victim = daemon
                    break
            if victim is not None:
                break
    if victim is None:  # pragma: no cover - placement always assigns 0
        raise RuntimeError("no owner found for block 0")
    ctx.monitor.note_failure(victim.name)
    victim.crash()
    run_until(sim, ctx.deployment.converged, max_time=120)

    controller.arm()

    def _recover():
        view = yield from _guarded(
            errors, "recover-activate",
            h.activate(1, recover=True, expected=[0, 1, 2]),
        )
        if view is None:
            return
        report = h.last_recovery or {}
        for block_id in report.get("missing", ()):
            yield from _guarded(
                errors, f"restage-{block_id}", h.stage(1, block_id, LIGHT_BLOCK)
            )
        yield from _guarded(errors, "execute", h.execute(1))
        yield from _guarded(errors, "deactivate", h.deactivate(1))

    recoverer = sim.spawn(_recover(), name="mc-recoverer")
    run_until(sim, _spawn_all_done(sim, [recoverer]), max_time=600)
    controller.disarm()

    with untracked(sim):
        recovered = sim.trace.counters.get("colza.block_recovered", 0)
    drive(sim, _guarded(errors, "final-abort", h.abort(1)), max_time=120)
    extra = _residual_charges(ctx) + _charge_accounting(ctx)
    payload = {"scenario": "owner_crash_adoption", "blocks_recovered": recovered}
    return _mc_finish(ctx, tsan, controller, errors, payload, extra, settle=8.0)


@mcheck_scenario
def _mc_quota_backpressure(seed: int, controller) -> McheckOutcome:
    """A charged stage racing a keep-data abort must not leak its charge.

    One server, quota of three blocks. Two blocks staged; the armed
    window races a third stage (charged at admission, then suspended in
    the RDMA pull) against a keep-data abort of the epoch. Whichever
    handler wins the delivery tie, the stage must end uncharged — it
    either never reserves (epoch already dead) or aborts after the pull
    and withdraws its reservation. A leaked charge is invisible to the
    per-span audits (the block was never staged), so the scenario
    detects it the way a tenant would: after a recover-activate, a
    probe stage of a fourth block must still fit the quota instead of
    backpressuring to the patience deadline, and the final accounting
    audit must balance charges against staged blocks.
    """
    from repro.chaos.scenarios import LIGHT_BLOCK, build_multi_tenant_stack

    ctx, tsan = _controlled_stack(
        controller,
        build_multi_tenant_stack,
        seed=seed,
        n_servers=1,
        tenants=("alpha",),
        library=FLUSH,
        config={"flush_bytes_per_second": 1048576.0},
        tenancy=TenancyConfig(
            default_quota=TenantQuota(max_blocks=3), quota_wait=1.5
        ),
    )
    sim = ctx.sim
    h = ctx.sessions["alpha"].handle
    errors: List[str] = []

    def _setup():
        yield from h.activate(1)
        for b in range(2):
            yield from h.stage(1, b, LIGHT_BLOCK)

    drive(sim, _setup(), max_time=120)

    controller.arm()
    aborter = sim.spawn(
        _guarded(errors, "abort", h.abort(1, keep_data=True)), name="mc-abort"
    )
    stager = sim.spawn(
        _guarded(errors, "raced-stage", h.stage(1, 2, LIGHT_BLOCK)),
        name="mc-raced-stage",
    )
    run_until(sim, _spawn_all_done(sim, [aborter, stager]), max_time=120)

    # Recover the epoch (charges for blocks 0..1 legitimately survive
    # the keep-data abort) and probe: block 3 is the third charge and
    # must fit a three-block quota — unless a phantom charge leaked.
    extra: List[str] = []

    def _probe():
        view = yield from _guarded(
            errors, "recover-activate",
            h.activate(1, recover=True, expected=[0, 1]),
        )
        if view is None:
            extra.append("quota probe: recover-activate failed outright")
            return
        try:
            yield from h.stage(1, 3, LIGHT_BLOCK)
        except Exception as err:
            extra.append(
                "quota probe: in-quota stage was refused after the raced "
                f"abort ({type(err).__name__}: {err}) — a leaked charge is "
                "occupying the freed slot"
            )

    prober = sim.spawn(_probe(), name="mc-probe")
    run_until(sim, _spawn_all_done(sim, [prober]), max_time=120)
    controller.disarm()

    extra.extend(_charge_accounting(ctx))
    drive(sim, _guarded(errors, "final-deactivate", h.deactivate(1)), max_time=120)
    extra.extend(_residual_charges(ctx))
    return _mc_finish(
        ctx, tsan, controller, errors, {"scenario": "quota_backpressure"}, extra
    )


@mcheck_scenario
def _mc_tenant_churn(seed: int, controller) -> McheckOutcome:
    """Tenant admission racing departure under a full tenant table.

    Two admitted tenants fill ``max_tenants=2``; the armed window runs
    beta's detach, gamma's attach (which needs beta's slot), and an
    alpha iteration all concurrently. Delivery order decides whether
    gamma is admitted — both outcomes are legal — but every schedule
    must keep admission all-or-nothing (after quiesce, every server
    agrees whether gamma exists), leave alpha's iteration untouched,
    and strand no charges for the departed tenant.
    """
    from repro.chaos.scenarios import LIGHT_BLOCK, build_multi_tenant_stack

    ctx, tsan = _controlled_stack(
        controller,
        build_multi_tenant_stack,
        seed=seed,
        n_servers=2,
        tenants=("alpha", "beta"),
        library=FLUSH,
        config={"flush_bytes_per_second": 1048576.0},
        tenancy=TenancyConfig(max_tenants=2),
    )
    sim = ctx.sim
    alpha = ctx.sessions["alpha"].handle
    beta_client = ctx.sessions["beta"].client
    errors: List[str] = []

    _margo, gamma_client = ctx.deployment.make_client(
        node_index=44, name="client-gamma", tenant="gamma"
    )
    drive(sim, gamma_client.connect())

    controller.arm()
    detacher = sim.spawn(
        _guarded(errors, "beta-detach", beta_client.detach()), name="mc-detach"
    )
    attacher = sim.spawn(
        _guarded(errors, "gamma-attach", gamma_client.attach()), name="mc-attach"
    )

    alpha_failures: List[str] = []

    def _alpha_iteration():
        try:
            yield from alpha.run_resilient_iteration(
                1, [(b, LIGHT_BLOCK) for b in range(2)], max_attempts=3
            )
        except Exception as err:
            alpha_failures.append(
                f"tenant isolation: alpha's iteration failed during "
                f"beta/gamma churn ({type(err).__name__}: {err})"
            )

    worker = sim.spawn(_alpha_iteration(), name="mc-alpha-worker")
    run_until(sim, _spawn_all_done(sim, [detacher, attacher, worker]), max_time=300)
    controller.disarm()

    extra: List[str] = list(alpha_failures)
    with untracked(sim):
        admitted = {
            d.name: d.provider.tenants.is_admitted("gamma")
            for d in ctx.deployment.live_daemons()
        }
        beta_left = {
            d.name: d.provider.tenants.is_admitted("beta")
            for d in ctx.deployment.live_daemons()
        }
    if len(set(admitted.values())) > 1:
        extra.append(
            f"partial admission: servers disagree whether gamma exists ({admitted})"
        )
    if len(set(beta_left.values())) > 1:
        extra.append(
            f"partial departure: servers disagree whether beta remains ({beta_left})"
        )
    extra.extend(_residual_charges(ctx))
    payload = {
        "scenario": "tenant_churn",
        "gamma_admitted": all(admitted.values()),
        "beta_remains": all(beta_left.values()),
    }
    return _mc_finish(ctx, tsan, controller, errors, payload, extra)
