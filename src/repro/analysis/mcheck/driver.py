"""The exploration driver the ``Controlled`` tie-breaker defers to.

A :class:`ScheduleController` is the concrete implementation of the
driver protocol documented in :mod:`repro.sim.tiebreak`. One controller
drives one scenario run: whenever the kernel finds two or more live
events sharing the earliest timestamp (a *choice point*), the
controller answers with the index to fire next — replaying a recorded
``prefix`` of choices and defaulting to ``0`` (FIFO) beyond it — and
records everything the explorer needs to enumerate the neighbouring
schedules:

- the choice points themselves (candidate keys and fingerprints, the
  index taken), which become the branching structure of the DFS;
- per-step *access footprints*: the set of SimTSan ``Shared``-container
  reads and writes each executed event performed, collected through
  :attr:`repro.analysis.simtsan.SimTSan.on_access`. Footprints are the
  independence relation — two steps commute unless one writes a key
  the other touches — that the explorer's sleep-set pruning and
  trace canonicalization are keyed on.

The controller starts *disarmed*: the kernel pops FIFO and records
nothing, so stack bring-up (SWIM convergence alone is thousands of
events) costs no choice points. Scenarios arm it only around the racy
window under test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.analysis.simtsan import _WHOLE

__all__ = [
    "ChoiceRecord",
    "ScheduleController",
    "StepRecord",
    "fingerprint",
    "footprints_conflict",
]


def fingerprint(call: Any) -> str:
    """A stable, address-free label for a scheduled callable.

    Bound methods are labelled ``Qualname(owner.name)`` (tasks and
    events carry deterministic names); bare functions fall back to
    their qualname. Never uses ``repr`` — that embeds memory addresses
    and would make schedule files differ between identical runs.
    """
    qual = (
        getattr(call, "__qualname__", None)
        or getattr(call, "__name__", None)
        or type(call).__name__
    )
    owner = getattr(call, "__self__", None)
    if owner is not None:
        name = getattr(owner, "name", "")
        if name:
            return f"{qual}({name})"
    return qual


@dataclass
class StepRecord:
    """One event executed while the controller was armed."""

    order: int  #: position in the armed execution order
    key: int  #: the queue entry's tie-break key (FIFO sequence number)
    label: str  #: :func:`fingerprint` of the callable
    #: Name of the task this slice ran on behalf of. Attributed from
    #: the scheduled callable's owner (Task._start bound methods, the
    #: kernel's resume closure) and corrected to ``sim.current_task``
    #: at the slice's first Shared access — an Event.succeed entry runs
    #: its waiter's continuation synchronously, so the callable's owner
    #: is the event, not the task doing the accessing. Lets the
    #: explorer aggregate a task's footprint across its run slices — a
    #: handler's first slice often touches nothing shared
    #: (``yield timeout(0)``) while its continuation pops 2PC state.
    task: Optional[str] = None
    #: True once ``task`` came from an actual access (authoritative).
    task_pinned: bool = False
    #: Shared-container accesses: sets of ``(shared label, key)``.
    reads: Set[Tuple[str, Any]] = field(default_factory=set)
    writes: Set[Tuple[str, Any]] = field(default_factory=set)

    @property
    def touches(self) -> bool:
        return bool(self.reads or self.writes)

    def footprint_json(self) -> Dict[str, List[str]]:
        return {
            "reads": sorted(f"{label}[{key!r}]" for label, key in self.reads),
            "writes": sorted(f"{label}[{key!r}]" for label, key in self.writes),
        }


@dataclass
class ChoiceRecord:
    """One same-timestamp decision the controller answered.

    The command alphabet: ``k >= 0`` fires the ``k``-th *awake*
    candidate (0 = FIFO head); ``-1`` postpones the FIFO head — its key
    goes into the sleep set and is skipped at subsequent choice points
    until it is the only candidate left at its timestamp — and fires
    the next awake candidate. Postponement is how the explorer moves a
    chosen event *after* a later conflicting one without spelling out
    every intermediate swap.
    """

    at_step: int  #: armed-step position at which the chosen entry ran
    when: float  #: the shared timestamp
    n: int  #: number of awake candidates (the command space)
    taken: int  #: command applied (-1 = postponed the head)
    keys: Tuple[int, ...]  #: all candidate queue keys, in FIFO order
    labels: Tuple[str, ...]  #: all candidate fingerprints, in FIFO order
    live_keys: Tuple[int, ...] = ()  #: awake candidate keys, FIFO order


def _overlaps(xs: Set[Tuple[str, Any]], ys: Set[Tuple[str, Any]]) -> bool:
    if not xs or not ys:
        return False
    for label_a, key_a in xs:
        for label_b, key_b in ys:
            if label_a != label_b:
                continue
            # Container-level accesses (iteration/len/update) observe
            # every key at once and conflict with any access.
            if key_a == key_b or key_a == _WHOLE or key_b == _WHOLE:
                return True
    return False


def footprints_conflict(a: StepRecord, b: StepRecord) -> bool:
    """The dependence relation: two steps conflict iff one wrote a
    Shared key the other read or wrote. Steps with disjoint (or empty)
    footprints commute — executing them in either order yields the
    same protocol state, the Mazurkiewicz-equivalence fact the
    explorer's pruning and trace dedup both rest on."""
    return (
        _overlaps(a.writes, b.writes)
        or _overlaps(a.writes, b.reads)
        or _overlaps(a.reads, b.writes)
    )


class ScheduleController:
    """Replays a choice prefix and records the run's schedule structure.

    Parameters
    ----------
    prefix:
        Choice indices to force, in choice-point order. Beyond the
        prefix every choice defaults to ``0`` — the FIFO head — so the
        empty prefix reproduces the FIFO schedule bit-identically.
    """

    def __init__(self, prefix: Tuple[int, ...] = ()):
        self.prefix: Tuple[int, ...] = tuple(prefix)
        self.armed = False
        #: Decisions answered so far (armed choice points only).
        self.choices: List[ChoiceRecord] = []
        #: The index actually taken at each choice point.
        self.taken: List[int] = []
        #: Steps executed while armed, in execution order.
        self.steps: List[StepRecord] = []
        #: Step lookup by queue key (for locating a choice point's
        #: unchosen candidates later in the same run).
        self.by_key: Dict[int, StepRecord] = {}
        #: True if a forced choice index was out of range for the
        #: candidates actually live — the schedule file is stale
        #: relative to the code (replay clamps to FIFO and flags).
        self.diverged = False
        #: Keys postponed by ``-1`` commands; skipped at choice points
        #: until they are the last candidate standing at their
        #: timestamp (the kernel never reorders across timestamps).
        self.sleeping: set = set()
        self._current: Optional[StepRecord] = None
        self._tsan: Optional[Any] = None

    # ------------------------------------------------------------------
    def attach(self, tsan: Any) -> "ScheduleController":
        """Collect footprints through ``tsan`` (a SimTSan detector)."""
        self._tsan = tsan
        tsan.on_access = self._on_access
        return self

    def arm(self) -> None:
        self.armed = True

    def disarm(self) -> None:
        self.armed = False
        self.sleeping.clear()
        self._current = None

    # ------------------------------------------------------------------
    # the driver protocol (called by the kernel)
    def choose(self, sim: Any, when: float, candidates: List[list]) -> int:
        if not self.armed:
            # Outside the armed window ties resolve FIFO and are not
            # recorded: stack bring-up and cooldown are identical across
            # runs, so choice indices stay aligned to the racy window.
            return 0
        live = [e for e in candidates if e[1] not in self.sleeping]
        if not live:
            live = list(candidates)
        i = len(self.choices)
        cmd = self.prefix[i] if i < len(self.prefix) else 0
        if cmd == -1 and len(live) > 1:
            self.sleeping.add(live[0][1])
            pick = live[1]
        else:
            if not 0 <= cmd < len(live):
                self.diverged = True
                cmd = 0
            pick = live[cmd]
        self.choices.append(
            ChoiceRecord(
                at_step=len(self.steps),
                when=when,
                n=len(live),
                taken=cmd,
                keys=tuple(entry[1] for entry in candidates),
                labels=tuple(fingerprint(entry[2]) for entry in candidates),
                live_keys=tuple(entry[1] for entry in live),
            )
        )
        self.taken.append(cmd)
        return candidates.index(pick)

    def begin_step(self, sim: Any, popped: tuple) -> None:
        if self.sleeping:
            self.sleeping.discard(popped[1])
        if not self.armed:
            self._current = None
            return
        call = popped[2]
        owner = getattr(call, "__self__", None)
        if owner is None:
            # The kernel's per-yield resume closure carries its task as
            # the sole default argument (``def resume(ev, _task=self)``).
            defaults = getattr(call, "__defaults__", None)
            if defaults and len(defaults) == 1:
                owner = defaults[0]
        record = StepRecord(
            order=len(self.steps),
            key=popped[1],
            label=fingerprint(call),
            task=getattr(owner, "name", None) if owner is not None else None,
        )
        self.steps.append(record)
        self.by_key[record.key] = record
        self._current = record

    # ------------------------------------------------------------------
    def _on_access(self, label: str, key: Any, is_write: bool) -> None:
        current = self._current
        if current is None:
            return
        if not current.task_pinned:
            tsan = self._tsan
            task = tsan.sim.current_task if tsan is not None else None
            if task is not None:
                current.task = task.name
                current.task_pinned = True
        (current.writes if is_write else current.reads).add((label, key))
