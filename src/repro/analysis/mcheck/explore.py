"""Systematic schedule exploration: DPOR-style DFS over choice prefixes.

The state space is the tree of *choice vectors*: at every armed choice
point (two or more live events at the same timestamp) the driver takes
an index; the empty vector is the FIFO schedule, and flipping position
``i`` to ``k`` means "run FIFO until choice ``i``, fire candidate ``k``
there, FIFO afterwards". The explorer walks this tree depth-first:

1. run the scenario under a :class:`~repro.analysis.mcheck.driver.
   ScheduleController` replaying the current prefix;
2. if the run violated an invariant, minimize and return the
   counterexample (fail-fast);
3. otherwise *expand*: for every free choice point (beyond the forced
   prefix) and every unchosen candidate, push the sibling prefix —
   unless it is pruned.

Two sibling moves are generated at every free choice point:

- **flips** (``k >= 1``): fire candidate ``k`` instead of the FIFO
  head, pulling ``k``'s task *earlier* past the steps that, in this
  run, executed between the choice point and ``k``'s own execution;
- **postponement** (``-1``): put the FIFO head to sleep — it is
  skipped at subsequent choice points until it is the last candidate
  standing at its timestamp — pushing its task *later* past everything
  else in the burst. This is the DPOR backtracking move: a conflict
  between the chosen step and a step far downstream cannot be reached
  by any bounded sequence of adjacent flips, but one postponement
  realizes it.

Pruning (the DPOR part). Either move only *reorders* task chains, so
independence is judged on aggregated task footprints: the moved task's
Shared-container accesses from the choice point onward versus those of
every task it would cross (a handler's first slice is often a bare
``yield timeout(0)`` while its continuation pops 2PC state, so
per-step footprints alone under-approximate the dependence). If no
write/write or read/write overlap exists on any key
(:func:`~repro.analysis.mcheck.driver.footprints_conflict`), the
reordered run is Mazurkiewicz-equivalent to this one and is skipped
without running. A candidate that never executed in this run (e.g. a
timer the chosen branch canceled) is conservatively explored — its
effects are unknown, which is exactly why it is interesting.

Two further bounds keep the tree finite and the budget honest:

- **preemption bound**: prefixes with more than ``max_flips`` non-FIFO
  choices are skipped (bugs overwhelmingly need few reorderings —
  the classic small-scope observation behind delay bounding);
- **schedule budget**: at most ``max_schedules`` scenario executions.

Runs are deduplicated by **canonical trace**: the sequence of
footprint-bearing steps, normalized by commuting adjacent independent
steps into a stable order (footprint-free steps commute with
everything and are dropped). Two runs with equal canonical traces are
the same Mazurkiewicz trace; the second is counted, not re-expanded.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.analysis.mcheck.driver import (
    ScheduleController,
    StepRecord,
    footprints_conflict,
)
from repro.analysis.mcheck.sched import Schedule, violation_digest

__all__ = [
    "ExploreReport",
    "RunRecord",
    "explore",
    "run_schedule",
    "shrink",
]


@dataclass
class RunRecord:
    """One executed schedule plus everything recorded about it."""

    prefix: Tuple[int, ...]
    taken: Tuple[int, ...]
    controller: ScheduleController
    violations: Tuple[str, ...]
    digest: str  #: the run's schedule digest (sim.trace.digest())
    violation_digest: str
    diverged: bool
    payload: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations


def run_schedule(
    scenario: str, seed: int, prefix: Tuple[int, ...] = ()
) -> RunRecord:
    """Execute one scenario under one forced choice prefix."""
    from repro.analysis.mcheck.scenarios import MCHECK_SCENARIOS

    try:
        fn = MCHECK_SCENARIOS[scenario]
    except KeyError:
        raise KeyError(
            f"unknown mcheck scenario {scenario!r}; "
            f"have {sorted(MCHECK_SCENARIOS)}"
        ) from None
    controller = ScheduleController(prefix)
    outcome = fn(seed, controller)
    return RunRecord(
        prefix=tuple(prefix),
        taken=tuple(controller.taken),
        controller=controller,
        violations=tuple(outcome.violations),
        digest=outcome.digest,
        violation_digest=violation_digest(scenario, seed, outcome.violations),
        diverged=controller.diverged,
        payload=dict(outcome.payload),
    )


# ---------------------------------------------------------------------------
# canonical traces (Mazurkiewicz-equivalence dedup)
def _step_sig(step: StepRecord) -> Tuple[str, Tuple[str, ...], Tuple[str, ...]]:
    return (
        step.label,
        tuple(sorted(f"{label}\x00{key!r}" for label, key in step.reads)),
        tuple(sorted(f"{label}\x00{key!r}" for label, key in step.writes)),
    )


def canonical_trace(steps: List[StepRecord]) -> str:
    """Digest of the run's footprint-bearing steps in Foata-normalized
    order: each step bubbles left past adjacent independent steps until
    blocked by a conflict (or a smaller signature), so all linearizations
    of one Mazurkiewicz trace map to one digest. Footprint-free steps
    commute with everything and are elided entirely."""
    touching = [s for s in steps if s.touches]
    canon: List[StepRecord] = []
    sigs: List[Tuple] = []
    for step in touching:
        sig = _step_sig(step)
        i = len(canon)
        while i > 0 and not footprints_conflict(canon[i - 1], step) and sig < sigs[i - 1]:
            i -= 1
        canon.insert(i, step)
        sigs.insert(i, sig)
    blob = json.dumps(sigs, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# ---------------------------------------------------------------------------
# sibling pruning
def _candidate_slices(run: RunRecord, choice_index: int, alt: int) -> Optional[List[StepRecord]]:
    """The candidate's step plus every later slice of its task.

    Reordering candidate ``alt`` to the front of the flip window moves
    the *task*, not just one resume: a handler's first slice is often
    footprint-free (``yield timeout(0)``) while its continuation pops
    2PC state, so independence must be judged against the task's
    aggregate footprint from the candidate slice onward. Returns None
    when the candidate never executed in this run (e.g. a timer the
    chosen branch canceled) — its effects are unknown and the flip must
    be explored, not pruned.
    """
    ctl = run.controller
    choice = ctl.choices[choice_index]
    candidate = ctl.by_key.get(choice.live_keys[alt])
    if candidate is None:
        return None
    slices = [candidate]
    if candidate.task is not None:
        slices.extend(
            s
            for s in ctl.steps[candidate.order + 1 :]
            if s.task == candidate.task
        )
    return slices


def _chain_conflicts(
    ctl: ScheduleController,
    chain: List[StepRecord],
    window: List[StepRecord],
) -> Set[Tuple[str, str]]:
    """Dependent (label, label) pairs between a moved task chain and the
    task chains it would cross.

    Each window task's footprint is aggregated from its first window
    slice to the end of the recording, symmetric with the candidate
    aggregation: the conflicting access usually lives in a continuation
    slice (the step physically inside the flip window is often a bare
    ``yield timeout(0)`` with an empty footprint)."""
    first = chain[0]
    opposing: List[StepRecord] = []
    seen_tasks: Set[str] = set()
    for step in window:
        if step.task is None:
            opposing.append(step)
            continue
        if step.task == first.task or step.task in seen_tasks:
            continue
        seen_tasks.add(step.task)
        opposing.append(step)
        opposing.extend(
            s for s in ctl.steps[step.order + 1 :] if s.task == step.task
        )
    pairs: Set[Tuple[str, str]] = set()
    for step in opposing:
        for piece in chain:
            if footprints_conflict(step, piece):
                pairs.add(tuple(sorted((step.label, piece.label))))
    return pairs


def _flip_conflicts(
    run: RunRecord, choice_index: int, alt: int
) -> Optional[Set[Tuple[str, str]]]:
    """The dependent (label, label) pairs flipping to ``alt`` reorders.

    None means the candidate never ran (explore unconditionally); an
    empty set means the flip is provably Mazurkiewicz-equivalent to
    this run (safe to prune); a non-empty set justifies exploration and
    feeds the coverage report's "yield-point pairs exercised"."""
    slices = _candidate_slices(run, choice_index, alt)
    if slices is None:
        return None
    ctl = run.controller
    choice = ctl.choices[choice_index]
    window = ctl.steps[choice.at_step : slices[0].order]
    return _chain_conflicts(ctl, slices, window)


def _postpone_conflicts(
    run: RunRecord, choice_index: int
) -> Optional[Set[Tuple[str, str]]]:
    """The dependent pairs postponing this choice's head would reorder.

    Postponement pushes the chosen step's task chain past every later
    same-burst step, so the window is everything executed after it in
    this run. Empty set: the chain commutes with all of it — the
    postponed run is equivalent and is pruned."""
    ctl = run.controller
    choice = ctl.choices[choice_index]
    if choice.at_step >= len(ctl.steps):
        return None
    chosen = ctl.steps[choice.at_step]
    chain = [chosen]
    if chosen.task is not None:
        chain.extend(
            s for s in ctl.steps[chosen.order + 1 :] if s.task == chosen.task
        )
    window = [
        s
        for s in ctl.steps[chosen.order + 1 :]
        if s.task is None or s.task != chosen.task
    ]
    return _chain_conflicts(ctl, chain, window)


# ---------------------------------------------------------------------------
@dataclass
class ExploreReport:
    """The outcome of one exploration: verdict plus coverage accounting."""

    scenario: str
    seed: int
    runs: int = 0
    distinct_traces: int = 0
    dedup_hits: int = 0
    pruned: int = 0  #: siblings skipped as provably equivalent
    bounded: int = 0  #: siblings skipped by the preemption bound
    frontier_truncated: int = 0  #: siblings dropped by the stack cap
    choice_points: int = 0  #: total armed choice points seen
    max_frontier: int = 1  #: widest choice point
    max_flips_used: int = 0
    armed_steps: int = 0
    budget_exhausted: bool = False
    dependent_pairs: Set[Tuple[str, str]] = field(default_factory=set)
    counterexample: Optional[RunRecord] = None
    shrunk_prefix: Optional[Tuple[int, ...]] = None
    shrink_runs: int = 0

    @property
    def ok(self) -> bool:
        return self.counterexample is None

    @property
    def pruned_ratio(self) -> float:
        considered = self.runs + self.pruned + self.bounded + self.dedup_hits
        return self.pruned / considered if considered else 0.0

    def schedule(self) -> Optional[Schedule]:
        """The minimized counterexample as a saveable Schedule."""
        if self.counterexample is None:
            return None
        prefix = (
            self.shrunk_prefix
            if self.shrunk_prefix is not None
            else self.counterexample.prefix
        )
        return Schedule(
            tool="mcheck",
            scenario=self.scenario,
            seed=self.seed,
            choices=tuple(prefix),
            violation_digest=self.counterexample.violation_digest,
            violations=self.counterexample.violations,
            meta={
                "runs": self.runs,
                "original_choices": list(self.counterexample.prefix),
            },
        )

    def to_json(self) -> Dict[str, Any]:
        doc = {
            "scenario": self.scenario,
            "seed": self.seed,
            "ok": self.ok,
            "runs": self.runs,
            "distinct_traces": self.distinct_traces,
            "dedup_hits": self.dedup_hits,
            "pruned": self.pruned,
            "pruned_ratio": round(self.pruned_ratio, 4),
            "bounded": self.bounded,
            "frontier_truncated": self.frontier_truncated,
            "choice_points": self.choice_points,
            "max_frontier": self.max_frontier,
            "max_flips_used": self.max_flips_used,
            "armed_steps": self.armed_steps,
            "budget_exhausted": self.budget_exhausted,
            "dependent_pairs": sorted(list(p) for p in self.dependent_pairs),
            "shrink_runs": self.shrink_runs,
        }
        if self.counterexample is not None:
            doc["violations"] = list(self.counterexample.violations)
            doc["violation_digest"] = self.counterexample.violation_digest
            doc["choices"] = list(
                self.shrunk_prefix
                if self.shrunk_prefix is not None
                else self.counterexample.prefix
            )
        return doc

    def render(self) -> str:
        lines = [
            f"mcheck {self.scenario} seed={self.seed}: "
            f"{self.runs} schedule(s) executed, "
            f"{self.distinct_traces} distinct trace(s), "
            f"{self.pruned} pruned ({self.pruned_ratio:.0%}), "
            f"{self.dedup_hits} deduped, {self.bounded} delay-bounded"
        ]
        lines.append(
            f"  choice points: {self.choice_points} "
            f"(widest {self.max_frontier}-way), "
            f"armed steps: {self.armed_steps}, "
            f"dependent pairs exercised: {len(self.dependent_pairs)}"
        )
        if self.frontier_truncated:
            lines.append(
                f"  NOTE: {self.frontier_truncated} sibling schedule(s) "
                "dropped by the exploration stack cap (not covered)"
            )
        if self.budget_exhausted:
            lines.append("  NOTE: schedule budget exhausted before the frontier emptied")
        if self.counterexample is None:
            lines.append("  ok: every explored schedule satisfied the invariants")
        else:
            prefix = (
                self.shrunk_prefix
                if self.shrunk_prefix is not None
                else self.counterexample.prefix
            )
            lines.append(
                f"  VIOLATION after {self.runs} schedule(s); minimized "
                f"choices={list(prefix)} "
                f"(shrunk in {self.shrink_runs} replay(s))"
            )
            for violation in self.counterexample.violations:
                lines.append(f"    {violation}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
def shrink(
    scenario: str,
    seed: int,
    record: RunRecord,
    max_runs: int = 24,
) -> Tuple[Tuple[int, ...], int]:
    """Greedy counterexample minimization.

    Right-to-left, try reverting each non-FIFO choice to ``0``; keep
    the reversion when the re-run still produces the identical
    violation digest. Trailing zeros are dropped (they are the FIFO
    default). Returns ``(minimal prefix, replays spent)``.
    """
    target = record.violation_digest
    best = list(record.prefix)
    runs = 0
    for i in reversed(range(len(best))):
        if best[i] == 0:
            continue
        if runs >= max_runs:
            break
        trial = list(best)
        trial[i] = 0
        while trial and trial[-1] == 0:
            trial.pop()
        attempt = run_schedule(scenario, seed, tuple(trial))
        runs += 1
        if attempt.violations and attempt.violation_digest == target:
            best = trial
    while best and best[-1] == 0:
        best.pop()
    return tuple(best), runs


# ---------------------------------------------------------------------------
def explore(
    scenario: str,
    seed: int = 0,
    max_schedules: int = 64,
    max_flips: int = 3,
    prune: bool = True,
    fail_fast: bool = True,
    do_shrink: bool = True,
    log: Optional[Callable[[str], None]] = None,
) -> ExploreReport:
    """Explore ``scenario``'s schedule space around the FIFO baseline.

    Returns an :class:`ExploreReport`; ``report.ok`` is False iff some
    explored schedule produced an invariant violation (the minimized
    counterexample is attached).
    """
    report = ExploreReport(scenario=scenario, seed=seed)
    seen_prefixes: Set[Tuple[int, ...]] = {()}
    seen_traces: Set[str] = set()
    stack: List[Tuple[int, ...]] = [()]
    # Honest-coverage cap: an adversarial frontier could enqueue
    # thousands of siblings the budget will never run; anything dropped
    # is counted, never silently forgotten.
    stack_cap = max(4 * max_schedules, 64)

    while stack and report.runs < max_schedules:
        prefix = stack.pop()
        record = run_schedule(scenario, seed, prefix)
        report.runs += 1
        ctl = record.controller
        report.armed_steps += len(ctl.steps)
        report.max_flips_used = max(
            report.max_flips_used, sum(1 for c in record.taken if c)
        )
        if log is not None:
            log(
                f"run {report.runs}: prefix={list(prefix)} "
                f"choices={len(ctl.choices)} steps={len(ctl.steps)} "
                f"violations={len(record.violations)}"
            )

        if record.violations:
            report.counterexample = record
            if do_shrink:
                report.shrunk_prefix, report.shrink_runs = shrink(
                    scenario, seed, record
                )
            if fail_fast:
                return report
            continue

        trace_id = canonical_trace(ctl.steps)
        if trace_id in seen_traces:
            report.dedup_hits += 1
            continue  # equivalent to an already-expanded run
        seen_traces.add(trace_id)
        report.distinct_traces += 1

        flips = sum(1 for c in record.taken if c)
        for i in range(len(prefix), len(ctl.choices)):
            choice = ctl.choices[i]
            report.choice_points += 1
            report.max_frontier = max(report.max_frontier, choice.n)
            if choice.n < 2:
                continue
            base = tuple(record.taken[:i])
            # -1 (postpone the head) rides along with the index flips:
            # it is the only move that can push the chosen step *after*
            # a conflicting step further down the burst.
            for alt in [*range(1, choice.n), -1]:
                sibling = base + (alt,)
                if sibling in seen_prefixes:
                    continue
                if flips + 1 > max_flips:
                    report.bounded += 1
                    continue
                if prune:
                    pairs = (
                        _postpone_conflicts(record, i)
                        if alt == -1
                        else _flip_conflicts(record, i, alt)
                    )
                    if pairs is not None and not pairs:
                        report.pruned += 1
                        continue
                    if pairs:
                        report.dependent_pairs.update(pairs)
                if len(stack) >= stack_cap:
                    report.frontier_truncated += 1
                    continue
                seen_prefixes.add(sibling)
                stack.append(sibling)

    if stack and report.runs >= max_schedules:
        report.budget_exhausted = True
    return report
