"""Incremental flowcheck: analyze the callgraph closure of a git diff.

``python -m repro.analysis check --changed [REF]`` resolves the files
touched since ``REF`` (worktree + index + untracked, default HEAD) and
reports only findings in their *callgraph closure*: every module that
the changed modules call into, or that calls into them, transitively.

Soundness note: the whole program is still parsed and every pass still
runs over the full tree — several rules (FC006 orphan registrations,
FC003 cross-function pairing, FC009's program-wide release scan) are
only meaningful with whole-program context. Incrementality is applied
to the *reported* file set, not the analyzed one, so a diff can never
hide a finding by shrinking the model. The win is triage focus and a
stable fast path: an empty diff short-circuits before the parse.
"""

from __future__ import annotations

import ast
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set

from repro.analysis.flowcheck import run_check
from repro.analysis.flowcheck.model import Program
from repro.analysis.flowcheck.runner import CheckReport

__all__ = ["ChangedResult", "run_changed"]

SRC_DIR = "src"


@dataclass
class ChangedResult:
    """A filtered check plus the diff/closure bookkeeping behind it."""

    report: CheckReport
    ref: str
    changed: List[str] = field(default_factory=list)
    closure: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.report.ok

    def render(self, show_suppressed: bool = False) -> str:
        if not self.changed:
            return f"flowcheck --changed: no source files differ from {self.ref}"
        head = (
            f"flowcheck --changed {self.ref}: {len(self.changed)} changed"
            f" -> {len(self.closure)} files in callgraph closure"
        )
        return head + "\n" + self.report.render(show_suppressed=show_suppressed)


def _git(repo_root: Path, *argv: str) -> List[str]:
    proc = subprocess.run(
        ["git", *argv],
        cwd=str(repo_root),
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"git {' '.join(argv)} failed: {proc.stderr.strip() or proc.returncode}"
        )
    return [line for line in proc.stdout.splitlines() if line.strip()]


def changed_source_files(ref: str, repo_root: Path) -> List[str]:
    """Repo-relative ``src/**.py`` paths differing from ``ref``.

    Union of tracked changes against the ref and untracked files, so a
    brand-new module is part of the closure before its first commit.
    """
    tracked = _git(repo_root, "diff", "--name-only", ref, "--", SRC_DIR)
    untracked = _git(
        repo_root, "ls-files", "--others", "--exclude-standard", "--", SRC_DIR
    )
    out = sorted(set(tracked) | set(untracked))
    return [p for p in out if p.endswith(".py")]


def _file_adjacency(program: Program) -> Dict[str, Set[str]]:
    """Undirected module-to-module edges from resolved call sites."""
    adjacency: Dict[str, Set[str]] = {m.rel: set() for m in program.modules}
    for fn in program.functions.values():
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            for callee in program.resolve_call(node, fn):
                a, b = fn.module.rel, callee.module.rel
                if a != b:
                    adjacency[a].add(b)
                    adjacency[b].add(a)
    return adjacency


def callgraph_closure(program: Program, changed: List[str]) -> Set[str]:
    adjacency = _file_adjacency(program)
    seen: Set[str] = set()
    stack = [rel for rel in changed if rel in adjacency]
    while stack:
        rel = stack.pop()
        if rel in seen:
            continue
        seen.add(rel)
        stack.extend(adjacency[rel] - seen)
    return seen


def run_changed(
    ref: str = "HEAD",
    repo_root: Optional[str] = None,
    select: Optional[List[str]] = None,
) -> ChangedResult:
    root = Path(repo_root) if repo_root else Path.cwd()
    changed = changed_source_files(ref, root)
    if not changed:
        return ChangedResult(report=CheckReport(), ref=ref)
    src = root / SRC_DIR
    program = Program.load([str(src)], root=str(root))
    closure = callgraph_closure(program, changed)
    # Deleted/renamed-away files appear in the diff but not the model;
    # they still seed nothing, and their old findings are gone with them.
    full = run_check([str(src)], select=select, root=str(root))
    findings = [f for f in full.findings if f.path in closure]
    report = CheckReport(findings=findings, files_checked=len(closure))
    return ChangedResult(
        report=report, ref=ref, changed=changed, closure=sorted(closure)
    )
