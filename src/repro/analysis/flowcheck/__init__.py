"""flowcheck: interprocedural protocol & resource-lifecycle analysis.

Where detlint pattern-matches single files, flowcheck builds a
whole-program model of the generator-coroutine style used throughout
``src/repro`` — a call graph over ``yield from`` chains, ``spawn``
edges, and RPC dispatch through ``register_rpc``/``export`` name
strings — and runs dataflow passes over it:

========  ==========================================================
FC001     task leaks — spawned task handles whose join()/kill() is
          unreachable
FC002     event lifecycle — waitable Events that can never fire, and
          double-fire sites
FC003     resource pairing — acquire/release and register/deregister
          imbalance, including unprotected yields between the pair
FC004     lock-order cycles across mutex acquire sites
FC005     collective divergence — MoNA/MPI/IceT collectives reachable
          under rank-dependent branches whose arms disagree
FC006     RPC contract — forward/provider_call name strings resolve
          to registered handlers with compatible arity; orphans
FC007     tenant-taint — names derived from a tenant id / client
          pipeline name must pass tenancy.qualify() before wire,
          ownership-key or rendezvous-hash sinks (Isoguard engine)
FC008     epoch-guard — a yield while holding a (pipeline, iteration)
          activation epoch must be followed by epoch re-validation
          before any staged/replica/quota mutation
FC009     quota-balance — tenant charge/reserve matched by release on
          every path, including exception/abort/patience exits
FC010     metric-contract — consumed counters/gauges/span names are
          registered, updated somewhere, and not double-counted
========  ==========================================================

FC007–FC010 (the *Isoguard* passes, DESIGN §14) share an
interprocedural field-sensitive taint engine in
:mod:`repro.analysis.flowcheck.taint`; their diagnostics carry witness
paths (call chain plus the unqualified sink or unvalidated yield).

Suppression uses the detlint grammar with the ``flowcheck`` tool name::

    task = sim.spawn(loop())  # flowcheck: disable=FC001 -- daemon, killed at teardown

CLI: ``python -m repro.analysis check`` (and ``make check``).
See DESIGN.md §10 for the call-graph construction and each pass's
abstraction and known false-negative limits.
"""

from repro.analysis.flowcheck.model import FlowFinding, Program
from repro.analysis.flowcheck.runner import PASSES, CheckReport, run_check

__all__ = ["CheckReport", "FlowFinding", "PASSES", "Program", "run_check"]
