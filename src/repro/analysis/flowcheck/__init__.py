"""flowcheck: interprocedural protocol & resource-lifecycle analysis.

Where detlint pattern-matches single files, flowcheck builds a
whole-program model of the generator-coroutine style used throughout
``src/repro`` — a call graph over ``yield from`` chains, ``spawn``
edges, and RPC dispatch through ``register_rpc``/``export`` name
strings — and runs dataflow passes over it:

========  ==========================================================
FC001     task leaks — spawned task handles whose join()/kill() is
          unreachable
FC002     event lifecycle — waitable Events that can never fire, and
          double-fire sites
FC003     resource pairing — acquire/release and register/deregister
          imbalance, including unprotected yields between the pair
FC004     lock-order cycles across mutex acquire sites
FC005     collective divergence — MoNA/MPI/IceT collectives reachable
          under rank-dependent branches whose arms disagree
FC006     RPC contract — forward/provider_call name strings resolve
          to registered handlers with compatible arity; orphans
========  ==========================================================

Suppression uses the detlint grammar with the ``flowcheck`` tool name::

    task = sim.spawn(loop())  # flowcheck: disable=FC001 -- daemon, killed at teardown

CLI: ``python -m repro.analysis check`` (and ``make check``).
See DESIGN.md §10 for the call-graph construction and each pass's
abstraction and known false-negative limits.
"""

from repro.analysis.flowcheck.model import FlowFinding, Program
from repro.analysis.flowcheck.runner import PASSES, CheckReport, run_check

__all__ = ["CheckReport", "FlowFinding", "PASSES", "Program", "run_check"]
