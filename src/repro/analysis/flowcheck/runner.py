"""Flowcheck runner: build the program model once, run every pass.

Mirrors detlint's ``run_lint`` contract: ``run_check(paths)`` returns a
:class:`CheckReport` whose ``ok`` is True only when every finding is
suppressed with a reason. Reasonless ``# flowcheck: disable=...``
comments are themselves reported as FC000, so a suppression can never
silently rot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.analysis.flowcheck.callgraph import CallGraph
from repro.analysis.flowcheck.model import FlowFinding, Program
from repro.analysis.flowcheck.passes import REGISTRY, PassSpec

__all__ = ["PASSES", "CheckReport", "run_check"]

#: rule id -> registered pass
PASSES: Dict[str, PassSpec] = {spec.rule: spec for spec in REGISTRY}


@dataclass
class CheckReport:
    """All findings from one flowcheck run."""

    findings: List[FlowFinding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.unsuppressed()

    def unsuppressed(self) -> List[FlowFinding]:
        return [f for f in self.findings if not f.suppressed]

    def render(self, show_suppressed: bool = False) -> str:
        lines = [
            f.render()
            for f in self.findings
            if show_suppressed or not f.suppressed
        ]
        live = len(self.unsuppressed())
        suppressed = len(self.findings) - live
        lines.append(
            f"flowcheck: {self.files_checked} files, {live} findings"
            f" ({suppressed} suppressed)"
        )
        return "\n".join(lines)


def run_check(
    paths: Iterable[str],
    select: Optional[Iterable[str]] = None,
    root: Optional[str] = None,
) -> CheckReport:
    program = Program.load(paths, root=root)
    graph = CallGraph(program)
    selected = set(select) if select else None
    report = CheckReport(files_checked=len(program.modules))

    for spec in REGISTRY:
        if selected is not None and spec.rule not in selected:
            continue
        for raw in spec.fn(program, graph):
            reason = raw.module.suppressions.suppression_for(spec.rule, raw.line)
            report.findings.append(
                FlowFinding(
                    rule=spec.rule,
                    path=raw.module.rel,
                    line=raw.line,
                    col=raw.col,
                    message=raw.message,
                    severity=raw.severity,
                    suppressed=reason is not None,
                    reason=reason or "",
                )
            )

    if selected is None or "FC000" in selected:
        for module in program.modules:
            for lineno in module.suppressions.bad_disables:
                report.findings.append(
                    FlowFinding(
                        rule="FC000",
                        path=module.rel,
                        line=lineno,
                        col=0,
                        message=(
                            "flowcheck disable comment without a reason "
                            "(use '-- why this is a false positive')"
                        ),
                        severity="error",
                    )
                )

    report.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return report
