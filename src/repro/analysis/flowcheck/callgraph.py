"""Call-graph construction: spawn edges and RPC name-string dispatch.

Three edge families matter to the passes beyond plain calls (which
:meth:`Program.resolve_call` answers directly):

- **spawn edges** — ``sim.spawn(gen(...))`` / ``xstream.spawn`` /
  ``margo.spawn`` / ``spawn_at``: the first argument names the spawned
  coroutine; the call's *result* is the task handle FC001 tracks.
- **registrations** — ``self.export("m", self._rpc_m)`` under a
  provider class (name from the ``super().__init__(margo, "p")``
  literal) and direct ``register_rpc("name", handler)`` calls.
- **invocations** — ``provider_call(dest, "p", "m", ...)`` and
  ``forward(dest, "name", ...)`` with literal name strings. Wrappers
  that pass a *parameter* through to the name position (for example
  ``PipelineHandle._call(method)`` or ``_broadcast(method)``) are
  detected and their call sites' literals propagated, to a fixpoint,
  so the whole ``"colza/activate_commit"`` chain resolves.

``register_rpc`` with a non-literal name (the f-string inside
``Provider.export``) is *not* recorded: the export-site extraction
already covers that route, and recording a wildcard would disable
unknown-name checking entirely.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.flowcheck.model import (
    ClassInfo,
    FlowModule,
    FunctionInfo,
    Program,
    dotted_name,
)

__all__ = ["CallGraph", "RpcInvocation", "RpcRegistration", "SpawnSite"]

SPAWN_ATTRS = ("spawn", "spawn_at")


@dataclass
class SpawnSite:
    """One ``spawn(...)`` call and where its handle went."""

    call: ast.Call
    fn: FunctionInfo
    #: The spawned coroutine, when the argument is a direct call.
    target: Optional[FunctionInfo]


@dataclass
class RpcRegistration:
    """One handler published under a wire name."""

    full_name: str
    handler: Optional[FunctionInfo]
    node: ast.AST
    module: FlowModule
    #: Positional inputs the dispatch layer passes the handler:
    #: 1 for provider ``export`` (bound method), 2 for raw
    #: ``register_rpc`` (``handler(instance, input)``).
    expected_arity: int


@dataclass
class RpcInvocation:
    """One call site that names an RPC with (resolved) literals."""

    full_name: str
    node: ast.AST
    fn: FunctionInfo


@dataclass
class _Forwarder:
    """A function passing parameters through to RPC name positions."""

    fn: FunctionInfo
    #: param name -> role: "provider" | "method" | "name"
    roles: Dict[str, str]
    #: role -> constant part already known at this level
    constants: Dict[str, str] = field(default_factory=dict)


def _const_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _param_name(node: ast.AST, fn: FunctionInfo) -> Optional[str]:
    if isinstance(node, ast.Name) and node.id in set(fn.params()):
        return node.id
    return None


class CallGraph:
    """Spawn sites plus the RPC registry/invocation tables."""

    def __init__(self, program: Program):
        self.program = program
        self.spawns: List[SpawnSite] = []
        self.registrations: List[RpcRegistration] = []
        self.invocations: List[RpcInvocation] = []
        self._collect_spawns()
        self._collect_registrations()
        self._collect_invocations()

    # ------------------------------------------------------------------
    # spawn edges
    def _collect_spawns(self) -> None:
        for fn in self.program.functions.values():
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not (isinstance(func, ast.Attribute) and func.attr in SPAWN_ATTRS):
                    continue
                gen_arg = self._spawn_generator_arg(node, func.attr)
                target: Optional[FunctionInfo] = None
                if isinstance(gen_arg, ast.Call):
                    resolved = self.program.resolve_call(gen_arg, fn)
                    if len(resolved) == 1:
                        target = resolved[0]
                self.spawns.append(SpawnSite(call=node, fn=fn, target=target))

    @staticmethod
    def _spawn_generator_arg(call: ast.Call, attr: str) -> Optional[ast.AST]:
        args = call.args
        if attr == "spawn_at":
            return args[1] if len(args) > 1 else None
        return args[0] if args else None

    # ------------------------------------------------------------------
    # registrations
    def provider_name_of(self, cls: ClassInfo) -> Optional[str]:
        """The literal provider name from ``super().__init__(m, "p")``."""
        for owner in self.program.class_and_bases(cls):
            init = owner.methods.get("__init__")
            if init is None:
                continue
            for node in ast.walk(init.node):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "__init__"
                    and isinstance(func.value, ast.Call)
                    and isinstance(func.value.func, ast.Name)
                    and func.value.func.id == "super"
                    and len(node.args) >= 2
                ):
                    name = _const_str(node.args[1])
                    if name is not None:
                        return name
        return None

    def _handler_target(self, node: ast.AST, fn: FunctionInfo) -> Optional[FunctionInfo]:
        if isinstance(node, ast.Attribute) and dotted_name(node.value) == "self":
            if fn.cls is not None:
                return self.program.resolve_method(fn.cls, node.attr)
        if isinstance(node, ast.Name):
            resolved = self.program.resolve_call(
                ast.Call(func=node, args=[], keywords=[]), fn
            )
            if len(resolved) == 1:
                return resolved[0]
        return None

    def _collect_registrations(self) -> None:
        provider_names: Dict[Tuple[str, int, str], Optional[str]] = {}
        for fn in self.program.functions.values():
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call) or not isinstance(
                    node.func, ast.Attribute
                ):
                    continue
                attr = node.func.attr
                if attr == "export" and dotted_name(node.func.value) == "self":
                    if fn.cls is None or len(node.args) < 2:
                        continue
                    method = _const_str(node.args[0])
                    if method is None:
                        continue
                    key = fn.cls.key
                    if key not in provider_names:
                        provider_names[key] = self.provider_name_of(fn.cls)
                    provider = provider_names[key]
                    full = f"{provider}/{method}" if provider else f"?/{method}"
                    self.registrations.append(
                        RpcRegistration(
                            full_name=full,
                            handler=self._handler_target(node.args[1], fn),
                            node=node,
                            module=fn.module,
                            expected_arity=1,
                        )
                    )
                elif attr == "register_rpc" and len(node.args) >= 2:
                    name = _const_str(node.args[0])
                    if name is None:
                        continue  # dynamic: covered by the export route
                    self.registrations.append(
                        RpcRegistration(
                            full_name=name,
                            handler=self._handler_target(node.args[1], fn),
                            node=node,
                            module=fn.module,
                            expected_arity=2,
                        )
                    )

    # ------------------------------------------------------------------
    # invocations (with forwarder fixpoint)
    def _collect_invocations(self) -> None:
        forwarders: Dict[str, _Forwarder] = {}
        for fn in self.program.functions.values():
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call) or not isinstance(
                    node.func, ast.Attribute
                ):
                    continue
                attr = node.func.attr
                if attr == "provider_call" and len(node.args) >= 3:
                    self._record_name_parts(
                        fn,
                        node,
                        provider=node.args[1],
                        method=node.args[2],
                        forwarders=forwarders,
                    )
                elif attr == "forward" and len(node.args) >= 2:
                    self._record_name_parts(
                        fn, node, name=node.args[1], forwarders=forwarders
                    )
        self._propagate_forwarders(forwarders)

    def _record_name_parts(
        self,
        fn: FunctionInfo,
        node: ast.Call,
        forwarders: Dict[str, _Forwarder],
        provider: Optional[ast.AST] = None,
        method: Optional[ast.AST] = None,
        name: Optional[ast.AST] = None,
    ) -> None:
        roles: Dict[str, str] = {}
        constants: Dict[str, str] = {}
        for role, expr in (("provider", provider), ("method", method), ("name", name)):
            if expr is None:
                continue
            literal = _const_str(expr)
            if literal is not None:
                constants[role] = literal
                continue
            param = _param_name(expr, fn)
            if param is not None:
                roles[param] = role
            else:
                return  # unresolvable expression: out of scope
        full = self._full_name(constants)
        if full is not None:
            self.invocations.append(RpcInvocation(full, node, fn))
        elif roles:
            forwarders.setdefault(
                fn.qualname, _Forwarder(fn=fn, roles=roles, constants=constants)
            )

    @staticmethod
    def _full_name(constants: Dict[str, str]) -> Optional[str]:
        if "name" in constants:
            return constants["name"]
        if "provider" in constants and "method" in constants:
            return f"{constants['provider']}/{constants['method']}"
        return None

    def _propagate_forwarders(self, forwarders: Dict[str, _Forwarder]) -> None:
        """Resolve literals through forwarding chains to a fixpoint."""
        for _round in range(4):
            new: Dict[str, _Forwarder] = {}
            for fn in self.program.functions.values():
                for node in ast.walk(fn.node):
                    if not isinstance(node, ast.Call):
                        continue
                    for callee in self.program.resolve_call(node, fn):
                        spec = forwarders.get(callee.qualname)
                        if spec is None:
                            continue
                        self._apply_forwarder(fn, node, spec, new)
            added = False
            for qual, spec in new.items():
                if qual not in forwarders:
                    forwarders[qual] = spec
                    added = True
            if not added:
                break

    def _apply_forwarder(
        self,
        fn: FunctionInfo,
        node: ast.Call,
        spec: _Forwarder,
        new: Dict[str, _Forwarder],
    ) -> None:
        params = spec.fn.params()
        bound: Dict[str, ast.AST] = {}
        for idx, arg in enumerate(node.args):
            if idx < len(params):
                bound[params[idx]] = arg
        for kw in node.keywords:
            if kw.arg is not None:
                bound[kw.arg] = kw.value
        constants = dict(spec.constants)
        roles: Dict[str, str] = {}
        for param, role in spec.roles.items():
            expr = bound.get(param)
            if expr is None:
                return
            literal = _const_str(expr)
            if literal is not None:
                constants[role] = literal
                continue
            outer = _param_name(expr, fn)
            if outer is None:
                return
            roles[outer] = role
        full = self._full_name(constants)
        if full is not None:
            self.invocations.append(RpcInvocation(full, node, fn))
        elif roles:
            new.setdefault(
                fn.qualname, _Forwarder(fn=fn, roles=roles, constants=constants)
            )
