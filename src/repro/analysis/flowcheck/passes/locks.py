"""FC004: lock-order cycles and re-entrant acquires.

Lock identity is textual: ``self.x`` acquired in a method of class C
is the lock ``C.x``; a module-level receiver ``m`` is ``<module>:m``.
Bare-parameter receivers are skipped (identity unknowable without
types — a documented false-negative class).

Within a function we simulate a held-set over the statement list:
``yield R.acquire()`` and ``with R.held():`` add R, ``R.release()``
removes it, ``yield from R.locked(gen())`` holds R for the duration of
``gen``. Whenever lock B is taken while A is held we add an order edge
A -> B; calls made while A is held contribute edges A -> every lock in
the callee's *transitive acquire summary* (memoized, cycle-guarded,
single-candidate resolution only). A cycle in the resulting order
graph is a potential deadlock; acquiring a lock already in the held
set is reported directly as a re-entrant acquire.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.flowcheck.callgraph import CallGraph
from repro.analysis.flowcheck.model import (
    FunctionInfo,
    Program,
    dotted_name,
    receiver_of,
)
from repro.analysis.flowcheck.passes import Raw, flowpass

ACQUIRE_ATTRS = {"acquire"}
HELD_ATTRS = {"held", "locked"}
RELEASE_ATTRS = {"release", "unlock"}


def _lock_id(receiver: Optional[str], fn: FunctionInfo) -> Optional[str]:
    if not receiver:
        return None
    head = receiver.split(".")[0]
    if head == "self":
        if receiver == "self" or fn.cls is None:
            return None
        return f"{fn.cls.name}.{receiver.split('.', 1)[1]}"
    if head in set(fn.params()):
        return None
    return f"{fn.module.rel}:{receiver}"


class _Edges:
    def __init__(self) -> None:
        #: (a, b) -> (module, line) of the first witnessing site
        self.sites: Dict[Tuple[str, str], Tuple[FunctionInfo, int]] = {}

    def add(self, a: str, b: str, fn: FunctionInfo, line: int) -> None:
        self.sites.setdefault((a, b), (fn, line))


class _Summaries:
    """Transitive lock-acquire sets per function (memoized)."""

    def __init__(self, program: Program):
        self.program = program
        self._memo: Dict[str, Set[str]] = {}
        self._in_progress: Set[str] = set()

    def of(self, fn: FunctionInfo) -> Set[str]:
        if fn.qualname in self._memo:
            return self._memo[fn.qualname]
        if fn.qualname in self._in_progress:
            return set()
        self._in_progress.add(fn.qualname)
        acquired: Set[str] = set()
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ACQUIRE_ATTRS | HELD_ATTRS
            ):
                lock = _lock_id(receiver_of(node), fn)
                if lock:
                    acquired.add(lock)
            else:
                for callee in self._single(node, fn):
                    acquired.update(self.of(callee))
        self._in_progress.discard(fn.qualname)
        self._memo[fn.qualname] = acquired
        return acquired

    def _single(self, call: ast.Call, fn: FunctionInfo) -> List[FunctionInfo]:
        resolved = self.program.resolve_call(call, fn)
        return resolved if len(resolved) == 1 else []


def _acquire_in_stmt(stmt: ast.stmt, fn: FunctionInfo) -> Optional[Tuple[str, int]]:
    """Lock taken by ``yield R.acquire()`` / ``g = R.acquire(); yield g``."""
    for node in ast.walk(stmt):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ACQUIRE_ATTRS
        ):
            lock = _lock_id(receiver_of(node), fn)
            if lock:
                return lock, node.lineno
    return None


def _locked_helper_in_stmt(
    stmt: ast.stmt, fn: FunctionInfo
) -> Optional[Tuple[str, int]]:
    """``yield from R.locked(gen())`` holds R for the statement."""
    for node in ast.walk(stmt):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "locked"
        ):
            lock = _lock_id(receiver_of(node), fn)
            if lock:
                return lock, node.lineno
    return None


def _releases_in_stmt(stmt: ast.stmt, fn: FunctionInfo) -> Set[str]:
    out: Set[str] = set()
    for node in ast.walk(stmt):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in RELEASE_ATTRS
        ):
            lock = _lock_id(receiver_of(node), fn)
            if lock:
                out.add(lock)
    return out


def _walk_fn(
    fn: FunctionInfo,
    summaries: _Summaries,
    edges: _Edges,
    reacquires: List[Raw],
) -> None:
    def take(lock: str, line: int, held: List[str]) -> None:
        if lock in held:
            reacquires.append(
                Raw(
                    module=fn.module,
                    line=line,
                    col=0,
                    message=(
                        f"lock '{lock}' acquired while already held on this "
                        "path: self-deadlock"
                    ),
                    severity="error",
                )
            )
            return
        for prior in held:
            edges.add(prior, lock, fn, line)
        held.append(lock)

    def call_edges(stmt: ast.stmt, held: List[str]) -> None:
        if not held:
            return
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ACQUIRE_ATTRS | HELD_ATTRS | RELEASE_ATTRS
            ):
                continue
            for callee in summaries._single(node, fn):
                for lock in sorted(summaries.of(callee)):
                    if lock in held:
                        continue
                    for prior in held:
                        edges.add(prior, lock, fn, node.lineno)

    def scan(body: List[ast.stmt], held: List[str]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.With):
                released_at_exit: List[str] = []
                for item in stmt.items:
                    ctx = item.context_expr
                    if (
                        isinstance(ctx, ast.Call)
                        and isinstance(ctx.func, ast.Attribute)
                        and ctx.func.attr in HELD_ATTRS
                    ):
                        lock = _lock_id(receiver_of(ctx), fn)
                        if not lock:
                            continue
                        # 'yield R.acquire(); with R.held():' — the lock
                        # is already in the held set; the guard only
                        # takes over the release.
                        if lock not in held:
                            take(lock, stmt.lineno, held)
                        released_at_exit.append(lock)
                scan(list(stmt.body), held)
                for lock in released_at_exit:
                    if lock in held:
                        held.remove(lock)
                continue
            taken = _acquire_in_stmt(stmt, fn)
            if taken is not None:
                take(taken[0], taken[1], held)
            scoped = _locked_helper_in_stmt(stmt, fn)
            if scoped is not None and scoped[0] not in held:
                take(scoped[0], scoped[1], held)
                call_edges(stmt, held)
                held.remove(scoped[0])
            else:
                call_edges(stmt, held)
            for lock in _releases_in_stmt(stmt, fn):
                if lock in held:
                    held.remove(lock)
            for field in ("body", "orelse", "finalbody"):
                sub = getattr(stmt, field, None)
                if sub:
                    scan(list(sub), held)
            for handler in getattr(stmt, "handlers", []) or []:
                scan(list(handler.body), held)

    scan(list(fn.node.body), [])


def _find_cycles(edges: _Edges) -> List[List[str]]:
    graph: Dict[str, Set[str]] = {}
    for (a, b) in edges.sites:
        graph.setdefault(a, set()).add(b)
        graph.setdefault(b, set())
    cycles: Set[Tuple[str, ...]] = set()

    def dfs(start: str, node: str, path: List[str], seen: Set[str]) -> None:
        for succ in sorted(graph.get(node, ())):
            if succ == start:
                cycle = path[:]
                pivot = cycle.index(min(cycle))
                cycles.add(tuple(cycle[pivot:] + cycle[:pivot]))
            elif succ not in seen and len(path) < 8:
                seen.add(succ)
                dfs(start, succ, path + [succ], seen)
                seen.discard(succ)

    for node in sorted(graph):
        dfs(node, node, [node], {node})
    return [list(c) for c in sorted(cycles)]


@flowpass("FC004", "lock-order", severity="error")
def check_lock_order(program: Program, graph: CallGraph) -> Iterator[Raw]:
    summaries = _Summaries(program)
    edges = _Edges()
    reacquires: List[Raw] = []
    for fn in program.functions.values():
        _walk_fn(fn, summaries, edges, reacquires)
    yield from reacquires
    for cycle in _find_cycles(edges):
        first, second = cycle[0], cycle[1] if len(cycle) > 1 else cycle[0]
        fn, line = edges.sites.get((first, second), (None, 0))
        if fn is None:
            continue
        chain = " -> ".join(cycle + [cycle[0]])
        yield Raw(
            module=fn.module,
            line=line,
            col=0,
            message=(
                f"lock-order cycle {chain}: two tasks interleaving these "
                "acquire sequences deadlock"
            ),
            severity="error",
        )
