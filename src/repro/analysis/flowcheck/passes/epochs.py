"""FC008: epoch-guard — re-validate activation epochs after yields.

The provider's ``(pipeline, iteration) -> epoch`` table
(``self._active``) is the staging fabric's truth about which
activation owns staged state.  Handlers capture the epoch on entry and
then *yield* — RPC forwards, RDMA ``bulk_pull``, event waits — and in
a cooperative simulation every yield is exactly where a concurrent
deactivate/abort/re-activate can retire the epoch.  The contract
(hand-enforced in PRs 5 and 7, cf. ``provider.py``'s stage handler):
**between any yield and the next mutation of staged-block, replica or
quota state, the epoch must be re-validated** — an ``_active``
comparison/membership test, or a ``still_valid`` guard threaded into
the waiting primitive.

Scope: functions whose body mentions an ``_active`` attribute (they
hold or check an epoch).  The pass runs a linearized statement scan
per function tracking one bit — *dirty*, "a yield happened since the
last validation":

- a **yield** sets dirty (after the statement's own checks — a
  ``yield from pipeline.stage(...)`` that was validated immediately
  before is the blessed pattern);
- a **validation** clears dirty: an ``_active`` read inside a
  comparison, an ``if``/``while``/``assert`` test mentioning
  ``_active``, or any mention of ``still_valid``;
- a **mutation** while dirty is the finding.  Mutations are calls of
  ``.stage()``/``.discard()`` on a non-self receiver, replica-store
  writes (``put``/``pop``/``drop_iteration``/``drop_pipeline`` on a
  receiver containing ``replica``), quota movements
  (``charge``/``uncharge``/``release``/``release_pipeline`` on a
  receiver containing ``tenant``) and subscript stores into a
  ``staged``-named container.

``except``/``finally`` bodies are exempt from the mutation check:
compensation there *must* run regardless of the epoch (an aborted
stage uncharges its reservation unconditionally).  Operations on the
``_active``/``_prepared`` tables themselves are epoch lifecycle, not
guarded state.  Branch merges are pessimistic (dirty if any branch
was); loop bodies are scanned twice so a yield at the bottom flags an
unvalidated mutation at the top.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.analysis.flowcheck.callgraph import CallGraph
from repro.analysis.flowcheck.model import (
    FunctionInfo,
    Program,
    dotted_name,
    receiver_of,
)
from repro.analysis.flowcheck.passes import Raw, flowpass

PIPELINE_MUTATORS = {"stage", "discard"}
REPLICA_MUTATORS = {"put", "pop", "drop_iteration", "drop_pipeline"}
QUOTA_MUTATORS = {"charge", "uncharge", "release", "release_pipeline"}
#: Epoch bookkeeping tables — operations on them ARE the lifecycle.
EPOCH_TABLES = ("_active", "_prepared")


def _mentions_active(node: ast.AST) -> bool:
    return any(
        isinstance(child, ast.Attribute) and child.attr == "_active"
        for child in ast.walk(node)
    )


def _mentions_still_valid(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and child.id == "still_valid":
            return True
        if isinstance(child, ast.Attribute) and child.attr == "still_valid":
            return True
        if isinstance(child, ast.keyword) and child.arg == "still_valid":
            return True
    return False


def _is_validation(stmt: ast.stmt) -> bool:
    """Does this statement re-establish the epoch?"""
    if _mentions_still_valid(stmt):
        return True
    for node in ast.walk(stmt):
        if isinstance(node, ast.Compare) and _mentions_active(node):
            return True
    return False


def _test_validates(test: ast.expr) -> bool:
    return _mentions_active(test) or _mentions_still_valid(test)


def _has_yield(stmt: ast.stmt) -> bool:
    for node in ast.walk(stmt):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
    return False


def _mutations(stmt: ast.stmt) -> Iterator[Tuple[int, int, str]]:
    """(line, col, description) of guarded-state mutations in stmt."""
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            receiver = receiver_of(node) or ""
            attr = node.func.attr
            if any(table in receiver for table in EPOCH_TABLES):
                continue
            if attr in PIPELINE_MUTATORS and receiver not in ("", "self"):
                yield (
                    node.lineno, node.col_offset,
                    f"{receiver}.{attr}() mutates staged state",
                )
            elif attr in REPLICA_MUTATORS and "replica" in receiver.lower():
                yield (
                    node.lineno, node.col_offset,
                    f"{receiver}.{attr}() mutates the replica store",
                )
            elif attr in QUOTA_MUTATORS and "tenant" in receiver.lower():
                yield (
                    node.lineno, node.col_offset,
                    f"{receiver}.{attr}() moves quota charges",
                )
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Subscript):
                    receiver = dotted_name(target.value) or ""
                    if "staged" in receiver and not any(
                        table in receiver for table in EPOCH_TABLES
                    ):
                        yield (
                            target.lineno, target.col_offset,
                            f"store into {receiver}[...] mutates staged state",
                        )


class _Scan:
    def __init__(self, fn: FunctionInfo):
        self.fn = fn
        self.findings: List[Raw] = []
        self.last_yield: Optional[int] = None

    def run(self) -> List[Raw]:
        self._block(self.fn.node.body, dirty=False)
        return self.findings

    # ------------------------------------------------------------------
    def _block(self, body: List[ast.stmt], dirty: bool, in_handler: bool = False) -> bool:
        for stmt in body:
            dirty = self._stmt(stmt, dirty, in_handler)
        return dirty

    def _stmt(self, stmt: ast.stmt, dirty: bool, in_handler: bool) -> bool:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return dirty
        if isinstance(stmt, ast.If):
            validates = _test_validates(stmt.test)
            inner = False if validates else dirty
            body_dirty = self._block(stmt.body, inner, in_handler)
            else_dirty = self._block(stmt.orelse, inner, in_handler)
            exits = _always_exits(stmt.body)
            if validates:
                # `if self._active.get(key) != epoch: <bail>` — the
                # continuation is validated whichever arm ran.
                return body_dirty if not exits else else_dirty
            return body_dirty or else_dirty
        if isinstance(stmt, (ast.For, ast.While)):
            if isinstance(stmt, ast.While) and _test_validates(stmt.test):
                dirty = False
            # Two passes: the second sees the back-edge's dirty state.
            once = self._first_pass_quiet(stmt.body, dirty, in_handler)
            final = self._block(stmt.body, once, in_handler)
            final = self._block(stmt.orelse, final or dirty, in_handler)
            return final or dirty
        if isinstance(stmt, ast.Try):
            body_dirty = self._block(stmt.body, dirty, in_handler)
            for handler in stmt.handlers:
                # Compensation paths run precisely because the epoch's
                # fate is unknown — exempt from the mutation check.
                self._block(handler.body, body_dirty, in_handler=True)
            else_dirty = self._block(stmt.orelse, body_dirty, in_handler)
            return self._block(stmt.finalbody, else_dirty, in_handler=True)
        if isinstance(stmt, ast.With):
            return self._block(stmt.body, dirty, in_handler)

        # Leaf statement: check mutations against the *pre* state,
        # then validation, then this statement's own yields.
        if dirty and not in_handler:
            for line, col, what in _mutations(stmt):
                self.findings.append(
                    Raw(
                        module=self.fn.module,
                        line=line,
                        col=col,
                        message=(
                            f"{what} after the yield at line "
                            f"{self.last_yield} without re-validating the "
                            "activation epoch (compare against _active or "
                            "use a still_valid guard first: a concurrent "
                            "deactivate/re-activate may own this state now)"
                        ),
                        severity="error",
                    )
                )
        if _is_validation(stmt):
            dirty = False
        if _has_yield(stmt):
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Yield, ast.YieldFrom)):
                    self.last_yield = node.lineno
                    break
            dirty = True
        return dirty

    def _first_pass_quiet(
        self, body: List[ast.stmt], dirty: bool, in_handler: bool
    ) -> bool:
        """First loop pass: compute the exit state without reporting."""
        saved = self.findings
        self.findings = []
        out = self._block(body, dirty, in_handler)
        self.findings = saved
        return out


def _always_exits(body: List[ast.stmt]) -> bool:
    if not body:
        return False
    last = body[-1]
    return isinstance(last, (ast.Raise, ast.Return, ast.Continue, ast.Break))


@flowpass("FC008", "epoch-guard", severity="error")
def check_epoch_guard(program: Program, graph: CallGraph) -> Iterator[Raw]:
    for _, fn in sorted(program.functions.items()):
        if not fn.is_generator:
            continue
        if not _mentions_active(fn.node):
            continue
        seen = set()
        for raw in _Scan(fn).run():
            key = (raw.line, raw.col, raw.message)
            if key not in seen:
                seen.add(key)
                yield raw
