"""FC002: Events that are waited on but can never fire, and double-fires.

Two hang shapes and one crash shape:

- **never-fires**: a function creates an Event (``Event(sim)`` or
  ``sim.event()``), something yields on it (directly or through an
  ``all_of``/``any_of`` combinator), no ``succeed()``/``fail()`` site
  exists in the function (nested ``def`` callbacks count), and the
  event never escapes the function (returned, stored, or passed to a
  non-combinator call). Waiters sleep forever.
- **unbound wait**: ``yield Event(sim)`` — the fresh event has no
  binding, so no code can ever fire it.
- **double-fire**: ``Event._trigger`` raises ``SimulationError`` on a
  second fire. Flagged when two fires on the same receiver appear in
  straight-line sequence without reassignment, or when a fire sits in
  a loop whose body neither rebinds the receiver nor consults
  ``.fired`` anywhere (the tree's wake-the-queue loops always guard
  with ``if grant.fired: continue`` or rebind per iteration).

Escape analysis is conservative: any use we cannot classify as a wait,
a fire, or an attribute inspection counts as an escape and silences the
never-fires check. That keeps factory functions (create, return) and
registry patterns (create, store on self) quiet at the cost of missing
hangs where the escaped alias is itself never fired.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.analysis.flowcheck.callgraph import CallGraph
from repro.analysis.flowcheck.model import FunctionInfo, Program, dotted_name
from repro.analysis.flowcheck.passes import Raw, flowpass, parent_map

COMBINATORS = {"all_of", "any_of", "AllOf", "AnyOf"}
FIRE_ATTRS = {"succeed", "fail"}


def _is_event_create(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name) and func.id == "Event":
        return True
    return isinstance(func, ast.Attribute) and func.attr == "event"


def _combinator_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = dotted_name(node.func) or ""
    return name.split(".")[-1] in COMBINATORS


class _EventUse:
    def __init__(self) -> None:
        self.waited = False
        self.fired = False
        self.escaped = False


def _classify_uses(fn: FunctionInfo, names: Set[str]) -> Dict[str, _EventUse]:
    uses = {name: _EventUse() for name in names}
    parents = parent_map(fn.node)
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Name) or node.id not in uses:
            continue
        use = uses[node.id]
        parent = parents.get(node)
        if isinstance(parent, ast.Yield) and parent.value is node:
            use.waited = True
        elif isinstance(parent, ast.Attribute):
            grand = parents.get(parent)
            if (
                parent.attr in FIRE_ATTRS
                and isinstance(grand, ast.Call)
                and grand.func is parent
            ):
                use.fired = True
            elif isinstance(parent.ctx, ast.Load):
                pass  # .fired / .value inspection: neither wait nor escape
            else:
                use.escaped = True
        elif isinstance(parent, (ast.List, ast.Tuple, ast.Set)):
            # Containers feed combinators or escape; look one level up.
            grand = parents.get(parent)
            if _combinator_call(grand) or (
                isinstance(grand, ast.Yield)
            ):
                use.waited = True
            elif isinstance(parent.ctx, ast.Store):
                pass
            else:
                use.escaped = True
        elif _combinator_call(parent):
            use.waited = True
        elif isinstance(parent, ast.Assign) and node in parent.targets:
            pass  # rebinding the name, not a use
        elif isinstance(parent, ast.Compare) or isinstance(parent, ast.BoolOp):
            pass
        else:
            # Return, argument to an unknown call, subscript store, ...
            use.escaped = True
    return uses


def _local_event_names(fn: FunctionInfo) -> Dict[str, ast.Assign]:
    creations: Dict[str, ast.Assign] = {}
    for node in ast.walk(fn.node):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and _is_event_create(node.value)
        ):
            creations[node.targets[0].id] = node
    return creations


def _never_fires(fn: FunctionInfo) -> Iterator[Raw]:
    creations = _local_event_names(fn)
    if not creations:
        return
    uses = _classify_uses(fn, set(creations))
    for name, assign in creations.items():
        use = uses[name]
        if use.waited and not use.fired and not use.escaped:
            yield Raw(
                module=fn.module,
                line=assign.lineno,
                col=assign.col_offset,
                message=(
                    f"event '{name}' is waited on but has no succeed()/fail() "
                    "site and never escapes this function: waiters hang forever"
                ),
                severity="error",
            )


def _unbound_waits(fn: FunctionInfo) -> Iterator[Raw]:
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Yield) and _is_event_create(node.value):
            yield Raw(
                module=fn.module,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    "yield of a freshly constructed Event: nothing holds a "
                    "reference, so it can never fire — permanent hang"
                ),
                severity="error",
            )


def _fire_receiver(stmt: ast.stmt) -> Optional[str]:
    """Receiver of a top-level ``R.succeed()/R.fail()`` statement."""
    if not isinstance(stmt, ast.Expr) or not isinstance(stmt.value, ast.Call):
        return None
    func = stmt.value.func
    if isinstance(func, ast.Attribute) and func.attr in FIRE_ATTRS:
        return dotted_name(func.value)
    return None


def _assigned_names(stmt: ast.stmt) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(stmt):
        if isinstance(node, (ast.Name, ast.Attribute)) and isinstance(
            getattr(node, "ctx", None), ast.Store
        ):
            dotted = dotted_name(node)
            if dotted:
                names.add(dotted)
    return names


def _mentions_fired(node: ast.AST) -> bool:
    return any(
        isinstance(n, ast.Attribute) and n.attr == "fired" for n in ast.walk(node)
    )


def _double_fires(fn: FunctionInfo) -> Iterator[Raw]:
    def scan(body: List[ast.stmt], loop: Optional[ast.AST]) -> Iterator[Raw]:
        last_fire: Dict[str, ast.stmt] = {}
        for idx, stmt in enumerate(body):
            receiver = _fire_receiver(stmt)
            if receiver is not None:
                if receiver in last_fire:
                    yield Raw(
                        module=fn.module,
                        line=stmt.lineno,
                        col=stmt.col_offset,
                        message=(
                            f"second fire of event '{receiver}' with no "
                            "reassignment in between: Event._trigger raises "
                            "SimulationError on the second call"
                        ),
                        severity="error",
                    )
                else:
                    last_fire[receiver] = stmt
                if loop is not None:
                    loop_vars = _loop_bound_names(loop)
                    exits_after = any(
                        isinstance(later, (ast.Return, ast.Break, ast.Raise))
                        for later in body[idx + 1 :]
                    )
                    if (
                        receiver not in loop_vars
                        and not _mentions_fired(loop)
                        and not exits_after
                    ):
                        yield Raw(
                            module=fn.module,
                            line=stmt.lineno,
                            col=stmt.col_offset,
                            message=(
                                f"event '{receiver}' fired inside a loop that "
                                "neither rebinds it nor checks .fired: second "
                                "iteration raises SimulationError"
                            ),
                            severity="error",
                        )
                continue
            for name in _assigned_names(stmt):
                last_fire.pop(name, None)
            if isinstance(stmt, (ast.For, ast.While)):
                for sub in _each_body(stmt):
                    yield from scan(sub, stmt)
                last_fire.clear()
            elif isinstance(stmt, (ast.If, ast.Try, ast.With)):
                for sub in _each_body(stmt):
                    yield from scan(sub, loop)
                last_fire.clear()

    def _each_body(stmt: ast.stmt) -> Iterator[List[ast.stmt]]:
        for field in ("body", "orelse", "finalbody"):
            sub = getattr(stmt, field, None)
            if sub:
                yield list(sub)
        for handler in getattr(stmt, "handlers", []) or []:
            yield list(handler.body)

    def _loop_bound_names(loop: ast.AST) -> Set[str]:
        names: Set[str] = set()
        if isinstance(loop, ast.For):
            for node in ast.walk(loop.target):
                if isinstance(node, ast.Name):
                    names.add(node.id)
        for stmt in getattr(loop, "body", []):
            names.update(_assigned_names(stmt))
        return names

    yield from scan(list(fn.node.body), None)


@flowpass("FC002", "event-lifecycle", severity="error")
def check_event_lifecycle(program: Program, graph: CallGraph) -> Iterator[Raw]:
    for fn in program.functions.values():
        yield from _never_fires(fn)
        yield from _unbound_waits(fn)
        yield from _double_fires(fn)
