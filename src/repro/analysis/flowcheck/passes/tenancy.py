"""FC007: tenant-taint — unqualified names must not reach the fabric.

DESIGN §13's isolation argument is structural: every wire-level
pipeline name, ownership key and rendezvous-hash key is
``tenant#name``-qualified, so two tenants' key spaces are disjoint *by
construction*.  That argument holds only if every value derived from a
tenant id or a client-side pipeline name actually passes through
``tenancy.qualify()`` before reaching the fabric.  This pass proves it
with the taint engine (:mod:`repro.analysis.flowcheck.taint`):

**Sources.**  ``name``/``pipeline``/``pipeline_name`` parameters of
methods on *tenant-bound* classes (classes whose ``__init__`` assigns
``self.tenant`` — the client/admin handles) carry ``raw-name``;
``base_name()`` results carry ``raw-name``; ``tenant`` parameters,
``.tenant`` attribute reads and ``tenant_of()`` results carry
``tenant-id``; ``t, n = split_qualified(x)`` carries
``tenant-id``/``raw-name`` per element.

**Sanitizer.**  ``qualify()`` (and the client's ``qualified()``
wrapper, transitively — its body ends in ``qualify``).

**Sinks.**  The RPC payload of ``provider_call``/``forward`` (dict
keys ``pipeline``/``name`` — the keys the provider routes by) and the
key argument of ``placement_rank``/``block_owner``/``replica_buddies``
(the HRW rendezvous hash).

Two purely local rules catch *re-joins* that would launder a name
across tenants without any sink involved:

- ``qualify(t, base_name(x))`` (or via locals) where ``t`` does not
  come from ``tenant_of(x)``/``split_qualified(x)`` of the *same*
  expression re-attaches a stripped name to a different tenant;
- an f-string gluing a tainted part to a ``#``-bearing literal
  hand-builds a qualified name, bypassing ``qualify()``'s separator
  validation.

The module that defines ``qualify`` is exempt (it *is* the
sanitizer).  Server-side code is naturally out of scope: its
``pipeline`` parameters carry already-qualified wire names and the
handle classes that hold them never assign ``self.tenant``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.analysis.flowcheck.callgraph import CallGraph
from repro.analysis.flowcheck.model import FlowModule, FunctionInfo, Program
from repro.analysis.flowcheck.passes import Raw, flowpass
from repro.analysis.flowcheck.taint import SinkSpec, TaintEngine, TaintSpec

RAW = "raw-name"
TENANT = "tenant-id"

#: Parameter names that mean "a client-side pipeline name" on a
#: tenant-bound class.
NAME_PARAMS = {"name", "pipeline", "pipeline_name"}

SINKS = (
    SinkSpec(callee="provider_call", arg=3, kw="input",
             kind="wire-name", keys=("pipeline", "name")),
    SinkSpec(callee="forward", arg=2, kw="input",
             kind="wire-name", keys=("pipeline", "name")),
    SinkSpec(callee="placement_rank", arg=0, kind="rendezvous-hash"),
    SinkSpec(callee="block_owner", arg=0, kind="rendezvous-hash"),
    SinkSpec(callee="replica_buddies", arg=0, kind="ownership-key"),
)


def _tenant_bound_classes(program: Program) -> Set[tuple]:
    """Class keys whose ``__init__`` assigns ``self.tenant``."""
    out: Set[tuple] = set()
    for infos in program.classes.values():
        for info in infos:
            init = info.methods.get("__init__")
            if init is None:
                continue
            for node in ast.walk(init.node):
                if (
                    isinstance(node, (ast.Assign, ast.AnnAssign))
                    and any(
                        isinstance(t, ast.Attribute)
                        and t.attr == "tenant"
                        and isinstance(t.value, ast.Name)
                        and t.value.id == "self"
                        for t in (
                            node.targets
                            if isinstance(node, ast.Assign)
                            else [node.target]
                        )
                    )
                ):
                    out.add(info.key)
    return out


def _qualify_modules(program: Program) -> Set[str]:
    """Modules that define ``qualify`` — the sanitizer's own home."""
    return {
        fn.module.rel
        for fn in program.functions.values()
        if fn.name == "qualify" and fn.cls is None
    }


def _build_spec(program: Program) -> TaintSpec:
    bound = _tenant_bound_classes(program)
    exempt_rels = _qualify_modules(program)

    def param_label(fn: FunctionInfo, param: str) -> Optional[str]:
        if param == "tenant":
            return TENANT
        if (
            param in NAME_PARAMS
            and fn.cls is not None
            and fn.cls.key in bound
        ):
            return RAW
        return None

    return TaintSpec(
        param_label=param_label,
        source_calls={"base_name": RAW, "tenant_of": TENANT},
        source_tuple_calls={"split_qualified": (TENANT, RAW)},
        source_attrs={"tenant": TENANT},
        sanitizers=frozenset({"qualify"}),
        sinks=SINKS,
        forbidden=frozenset({RAW, TENANT}),
        exempt=lambda module: module.rel in exempt_rels,
    )


# ---------------------------------------------------------------------------
# local re-join rules
def _origin_key(node: ast.expr) -> str:
    return ast.dump(node)


def _rejoin_findings(fn: FunctionInfo, exempt: Set[str]) -> Iterator[Raw]:
    if fn.module.rel in exempt:
        return
    #: local var -> origin expr of the *name* half it holds.
    name_origin: Dict[str, str] = {}
    #: local var -> origin expr of the *tenant* half it holds.
    tenant_origin: Dict[str, str] = {}

    def origin_of(node: ast.expr, table: Dict[str, str]) -> Optional[str]:
        if isinstance(node, ast.Name):
            return table.get(node.id)
        if isinstance(node, ast.Call):
            cn = node.func.id if isinstance(node.func, ast.Name) else (
                node.func.attr if isinstance(node.func, ast.Attribute) else None
            )
            if cn in ("base_name", "tenant_of") and node.args:
                return _origin_key(node.args[0])
        return None

    for node in ast.walk(fn.node):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            call = node.value
            cn = call.func.id if isinstance(call.func, ast.Name) else None
            if cn == "base_name" and call.args and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    name_origin[target.id] = _origin_key(call.args[0])
            elif cn == "tenant_of" and call.args and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    tenant_origin[target.id] = _origin_key(call.args[0])
            elif cn == "split_qualified" and call.args and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Tuple) and len(target.elts) == 2:
                    okey = _origin_key(call.args[0])
                    if isinstance(target.elts[0], ast.Name):
                        tenant_origin[target.elts[0].id] = okey
                    if isinstance(target.elts[1], ast.Name):
                        name_origin[target.elts[1].id] = okey

    for node in ast.walk(fn.node):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "qualify"
            and len(node.args) >= 2
        ):
            continue
        n_org = origin_of(node.args[1], name_origin)
        if n_org is None:
            continue
        t_org = origin_of(node.args[0], tenant_origin)
        if t_org != n_org:
            yield Raw(
                module=fn.module,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    "re-joins a split-qualified name with a tenant that is "
                    "not its own: the base name came from one qualified "
                    "name, the tenant from "
                    + ("another" if t_org else "an unrelated value")
                    + " — cross-tenant laundering"
                ),
                severity="error",
            )


def _manual_join_findings(
    fn: FunctionInfo, engine: TaintEngine, exempt: Set[str]
) -> Iterator[Raw]:
    """f-strings that glue tainted parts to a '#' literal."""
    if fn.module.rel in exempt:
        return
    tainted_params = {
        p
        for p in fn.params()
        if engine.spec.param_label(fn, p) is not None
        or engine._param_in.get((fn.qualname, p))
    }
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.JoinedStr):
            continue
        has_sep = any(
            isinstance(part, ast.Constant)
            and isinstance(part.value, str)
            and "#" in part.value
            for part in node.values
        )
        if not has_sep:
            continue
        for part in node.values:
            if not isinstance(part, ast.FormattedValue):
                continue
            tainted = False
            if (
                isinstance(part.value, ast.Name)
                and part.value.id in tainted_params
            ):
                tainted = True
            if (
                isinstance(part.value, ast.Attribute)
                and part.value.attr == "tenant"
            ):
                tainted = True
            if tainted:
                yield Raw(
                    module=fn.module,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        "hand-built '#' join with a tenant-derived part: "
                        "use tenancy.qualify(), which validates the "
                        "separator, instead of an f-string"
                    ),
                    severity="error",
                )
                break


@flowpass("FC007", "tenant-taint", severity="error")
def check_tenant_taint(program: Program, graph: CallGraph) -> Iterator[Raw]:
    spec = _build_spec(program)
    engine = TaintEngine(program, spec)
    for finding in engine.run():
        witness = " -> ".join(finding.witness) if finding.witness else ""
        tail = f" [witness: {witness}]" if witness else ""
        yield Raw(
            module=finding.fn.module,
            line=finding.line,
            col=finding.col,
            message=(
                f"{finding.label} reaches the {finding.kind} sink "
                f"({finding.sunk}) without passing through "
                f"tenancy.qualify(){tail}"
            ),
            severity="error",
        )
    exempt = _qualify_modules(program)
    for _, fn in sorted(program.functions.items()):
        yield from _rejoin_findings(fn, exempt)
        yield from _manual_join_findings(fn, engine, exempt)
