"""FC006: RPC name strings must resolve, and handlers must fit dispatch.

The Mochi layers dispatch by string: ``forward(addr, "p/m", ...)`` and
``provider_call(addr, "p", "m", ...)`` look a handler up at runtime,
so a typo or a renamed method becomes a timeout in a chaos run instead
of an error at review time. Using the call graph's registration and
invocation tables (which resolve literals through one-or-more levels
of parameter-forwarding wrappers such as ``PipelineHandle._call``):

- an invocation naming an RPC nobody registers is an **error** at the
  call site;
- a registration no call site ever names is an **orphan** (warning) at
  the registration site — dead protocol surface;
- a resolved handler whose signature cannot accept what dispatch
  passes (1 payload arg via provider ``export``, ``(instance, input)``
  via raw ``register_rpc``) is an **error**;
- a resolved handler that is not a generator is an **error** unless it
  returns a call result (delegation), since the dispatch loop runs
  handlers with ``yield from``.

Limits: invocations whose name expression is neither a literal nor a
forwarded parameter are invisible (none exist in-tree today), and
registrations under a provider whose name literal cannot be found
get a ``?/`` prefix and are excluded from orphan matching.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set

from repro.analysis.flowcheck.callgraph import CallGraph, RpcRegistration
from repro.analysis.flowcheck.model import Program
from repro.analysis.flowcheck.passes import Raw, flowpass


def _returns_call(fn_node: ast.AST) -> bool:
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Call):
            return True
    return False


def _arity_problem(reg: RpcRegistration) -> str:
    handler = reg.handler
    expected = reg.expected_arity
    if handler is None:
        return ""
    required = handler.required_positional()
    capacity = handler.max_positional()
    if required > expected:
        return (
            f"handler {handler.name}() requires {required} positional "
            f"args but dispatch passes {expected}"
        )
    if capacity is not None and capacity < expected:
        return (
            f"handler {handler.name}() accepts at most {capacity} positional "
            f"args but dispatch passes {expected}"
        )
    return ""


@flowpass("FC006", "rpc-contract", severity="error")
def check_rpc_contract(program: Program, graph: CallGraph) -> Iterator[Raw]:
    registered: Dict[str, List[RpcRegistration]] = {}
    for reg in graph.registrations:
        registered.setdefault(reg.full_name, []).append(reg)
    invoked: Set[str] = {inv.full_name for inv in graph.invocations}

    seen_unknown: Set[tuple] = set()
    for inv in graph.invocations:
        if inv.full_name in registered:
            continue
        key = (inv.fn.qualname, inv.node.lineno, inv.node.col_offset, inv.full_name)
        if key in seen_unknown:
            continue
        seen_unknown.add(key)
        yield Raw(
            module=inv.fn.module,
            line=inv.node.lineno,
            col=inv.node.col_offset,
            message=(
                f"RPC '{inv.full_name}' is named here but no export/"
                "register_rpc ever registers it: dispatch can only time out"
            ),
            severity="error",
        )

    for reg in graph.registrations:
        if reg.full_name.startswith("?/"):
            continue
        if reg.full_name not in invoked:
            yield Raw(
                module=reg.module,
                line=reg.node.lineno,
                col=reg.node.col_offset,
                message=(
                    f"handler for '{reg.full_name}' is registered but no "
                    "call site ever names it: dead protocol surface"
                ),
                severity="warning",
            )
        problem = _arity_problem(reg)
        if problem:
            yield Raw(
                module=reg.module,
                line=reg.node.lineno,
                col=reg.node.col_offset,
                message=f"'{reg.full_name}': {problem}",
                severity="error",
            )
        if (
            reg.handler is not None
            and not reg.handler.is_generator
            and not _returns_call(reg.handler.node)
        ):
            yield Raw(
                module=reg.module,
                line=reg.node.lineno,
                col=reg.node.col_offset,
                message=(
                    f"handler {reg.handler.name}() for '{reg.full_name}' is "
                    "not a generator: the dispatch loop drives handlers with "
                    "'yield from'"
                ),
                severity="error",
            )
