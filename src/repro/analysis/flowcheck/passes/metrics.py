"""FC010: metric-contract — consumed telemetry must actually exist.

The chaos invariant monitor keys its checks off span names
(``span.name == "colza.stage"``) and the bench trajectory pins counter
values (``sim.metrics.get("ssg.probes")``).  Both are stringly-typed:
rename a counter at its producer and the consumer silently reads 0 —
the invariant still "passes", the trajectory gate compares garbage.
This pass closes the loop over the whole program:

- **Producers** are metric registrations —
  ``<scope>.counter("x")``/``gauge``/``histogram`` with a literal
  name — and literal trace spans (``trace.begin("layer.event")``,
  ``trace.add(...)``).  Scope prefixes resolve through locals
  (``core = sim.metrics.scope("core")``), class fields
  (``self._metrics = ...scope("ssg")`` in ``__init__``, used from any
  method) and chained calls; an f-string scope
  (``scope(f"tenant.{t}")``) produces under a wildcard prefix.
- **Consumers** are ``metrics.get("full.name")`` with a literal, and
  ``<span>.name == "layer.event"`` comparisons against a dotted
  literal.  A consumer with no matching producer (exact, or a
  wildcard-prefix producer with the same member name) is an error.
- A registration that is never **updated** (no chained or
  via-variable ``inc``/``set``/``observe``/``add``) is a warning: the
  metric exists but no path increments it.
- The same fully-resolved counter ``.inc()``'d twice in one function
  is a warning — the double-count-per-iteration hazard the bench
  trajectory's op-count identity assertion would otherwise surface at
  run time only.

Dynamic names (``counter(name)``) are skipped: they are read-back
aggregation, not contracts.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.flowcheck.callgraph import CallGraph
from repro.analysis.flowcheck.model import FunctionInfo, Program, dotted_name
from repro.analysis.flowcheck.passes import Raw, flowpass, parent_map

REGISTER_ATTRS = {"counter", "gauge", "histogram"}
UPDATE_ATTRS = {"inc", "set", "observe", "add"}
#: Chained reads that still count as "the registration is used".
READ_ATTRS = {"value", "summary", "quantile"}
WILDCARD = "*"


def _literal(node: Optional[ast.expr]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _scope_prefix_of_call(call: ast.Call) -> Optional[str]:
    """``X.scope(<arg>)`` -> prefix literal, WILDCARD, or None."""
    if not (
        isinstance(call.func, ast.Attribute) and call.func.attr == "scope"
    ):
        return None
    if not call.args:
        return WILDCARD
    lit = _literal(call.args[0])
    return lit if lit is not None else WILDCARD


def _class_scope_fields(fn: FunctionInfo) -> Dict[str, str]:
    """``self.<attr>`` -> scope prefix, over the whole class."""
    out: Dict[str, str] = {}
    if fn.cls is None:
        return out
    for method in fn.cls.methods.values():
        for node in ast.walk(method.node):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            prefix = _scope_prefix_of_call(node.value)
            if prefix is None:
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    out[target.attr] = prefix
    return out


def _local_scopes(fn: FunctionInfo) -> Dict[str, str]:
    """Local var -> scope prefix within one function."""
    out: Dict[str, str] = {}
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            prefix = _scope_prefix_of_call(node.value)
            if prefix is None:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out[target.id] = prefix
    return out


def _prefix_of_receiver(
    receiver: ast.expr, locals_: Dict[str, str], fields: Dict[str, str]
) -> str:
    if isinstance(receiver, ast.Call):
        prefix = _scope_prefix_of_call(receiver)
        if prefix is not None:
            return prefix
        return WILDCARD
    if isinstance(receiver, ast.Name):
        return locals_.get(receiver.id, WILDCARD)
    if (
        isinstance(receiver, ast.Attribute)
        and isinstance(receiver.value, ast.Name)
        and receiver.value.id == "self"
    ):
        return fields.get(receiver.attr, WILDCARD)
    return WILDCARD


def _var_is_updated(fn: FunctionInfo, var: str) -> bool:
    for node in ast.walk(fn.node):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in (UPDATE_ATTRS | READ_ATTRS)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == var
        ):
            return True
    return False


def _field_is_updated(fn: FunctionInfo, attr: str) -> bool:
    if fn.cls is None:
        return False
    for method in fn.cls.methods.values():
        for node in ast.walk(method.node):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in (UPDATE_ATTRS | READ_ATTRS)
                and isinstance(node.func.value, ast.Attribute)
                and node.func.value.attr == attr
                and isinstance(node.func.value.value, ast.Name)
                and node.func.value.value.id == "self"
            ):
                return True
    return False


@flowpass("FC010", "metric-contract", severity="error")
def check_metric_contract(program: Program, graph: CallGraph) -> Iterator[Raw]:
    #: (prefix, member) for every literal metric registration.
    produced: Set[Tuple[str, str]] = set()
    span_names: Set[str] = set()
    dynamic_spans = False
    #: consumer sites, resolved after collection.
    metric_consumers: List[Tuple[FunctionInfo, ast.Call, str]] = []
    span_consumers: List[Tuple[FunctionInfo, ast.Compare, str]] = []
    unused: List[Tuple[FunctionInfo, ast.Call, str]] = []
    #: (fn, full name) -> inc sites, for the double-count rule.
    inc_sites: Dict[Tuple[str, str], List[ast.Call]] = {}
    fns = sorted(program.functions.items())

    for _, fn in fns:
        parents = parent_map(fn.node)
        locals_ = _local_scopes(fn)
        fields = _class_scope_fields(fn)
        for node in ast.walk(fn.node):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
            ):
                if isinstance(node, ast.Compare):
                    name = _span_compare(node)
                    if name is not None:
                        span_consumers.append((fn, node, name))
                continue
            attr = node.func.attr

            # trace spans -------------------------------------------------
            if attr in ("begin", "add"):
                receiver = dotted_name(node.func.value) or ""
                if "trace" in receiver and node.args:
                    lit = _literal(node.args[0])
                    if lit is not None:
                        span_names.add(lit)
                    else:
                        dynamic_spans = True
                continue

            # metric registrations ---------------------------------------
            if attr in REGISTER_ATTRS and node.args:
                member = _literal(node.args[0])
                if member is None:
                    continue
                prefix = _prefix_of_receiver(node.func.value, locals_, fields)
                produced.add((prefix, member))
                parent = parents.get(node)
                used = False
                if isinstance(parent, ast.Attribute) and parent.attr in (
                    UPDATE_ATTRS | READ_ATTRS
                ):
                    used = True
                    if parent.attr == "inc":
                        full = f"{prefix}.{member}"
                        inc_sites.setdefault((fn.qualname, full), []).append(node)
                elif isinstance(parent, ast.Assign):
                    for target in parent.targets:
                        if isinstance(target, ast.Name) and _var_is_updated(
                            fn, target.id
                        ):
                            used = True
                        elif (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                            and _field_is_updated(fn, target.attr)
                        ):
                            used = True
                if not used:
                    unused.append((fn, node, f"{prefix}.{member}"))
                continue

            # metric reads ------------------------------------------------
            if attr == "get" and node.args:
                receiver = dotted_name(node.func.value) or ""
                if "metrics" in receiver:
                    lit = _literal(node.args[0])
                    if lit is not None:
                        metric_consumers.append((fn, node, lit))

    # ------------------------------------------------------------------
    def produces(full: str) -> bool:
        if "." in full:
            prefix, member = full.rsplit(".", 1)
        else:
            prefix, member = "", full
        if (prefix, member) in produced:
            return True
        return (WILDCARD, member) in produced

    for fn, node, full in metric_consumers:
        if not produces(full):
            yield Raw(
                module=fn.module,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"metrics.get({full!r}) reads a metric no code path "
                    "registers: the consumer silently sees 0/None "
                    "(renamed producer?)"
                ),
                severity="error",
            )
    for fn, node, name in span_consumers:
        if name not in span_names and not dynamic_spans:
            yield Raw(
                module=fn.module,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"span name {name!r} is compared against but no "
                    "trace.begin/add ever emits it: the branch is dead "
                    "(renamed span?)"
                ),
                severity="error",
            )
    for fn, node, full in unused:
        yield Raw(
            module=fn.module,
            line=node.lineno,
            col=node.col_offset,
            message=(
                f"metric {full!r} is registered here but never "
                "incremented or set on any path"
            ),
            severity="warning",
        )
    for (qualname, full), sites in sorted(inc_sites.items()):
        if len(sites) > 1 and not full.startswith(f"{WILDCARD}."):
            first = sites[0]
            yield Raw(
                module=program.functions[qualname].module,
                line=sites[1].lineno,
                col=sites[1].col_offset,
                message=(
                    f"counter {full!r} is incremented {len(sites)} times "
                    f"in {qualname.split('::')[-1]}() (first at line "
                    f"{first.lineno}): double-counted per iteration"
                ),
                severity="warning",
            )


def _span_compare(node: ast.Compare) -> Optional[str]:
    """``<x>.name == "layer.event"`` -> the literal, else None."""
    if len(node.ops) != 1 or not isinstance(node.ops[0], (ast.Eq,)):
        return None
    sides = [node.left, node.comparators[0]]
    attr = next(
        (
            s
            for s in sides
            if isinstance(s, ast.Attribute) and s.attr == "name"
        ),
        None,
    )
    lit = next((_literal(s) for s in sides if _literal(s) is not None), None)
    if attr is None or lit is None or "." not in lit:
        return None
    return lit
