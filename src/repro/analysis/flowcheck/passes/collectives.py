"""FC005: collective operations under rank-dependent branches.

A collective (barrier, bcast, reduce, ...) only completes when every
rank in the communicator enters it, in the same order. If a branch
whose condition depends on the local rank performs a different
collective *sequence* in its two arms, some ranks wait in a collective
the others never reach: a classic SPMD deadlock.

Mechanics:

- **rank taint**: seeded by names ``rank``/``vrank``/``my_rank``/
  ``comm_rank``/``myrank`` and any ``.rank`` attribute, propagated
  through assignments to a fixpoint (so ``vrank = order.index(rank)``
  and ``swap = vrank // 2`` are tainted).
- **collective signature**: per statement list, the ordered tree of
  collective-call names, recursing through single-candidate callees
  (memoized, cycle-guarded). Loops contribute a ``loop(...)`` node,
  branches an ``if(then, else)`` node — equality is structural.
- **divergence**: for each ``if`` with a tainted test, the two arms'
  signatures must be equal; additionally, if exactly one arm exits
  early (return/raise) and collectives follow the branch in the same
  body, the exiting arm skips them — also divergence.
- **communicator classes** (types defining >= 3 collective method
  names: MonaComm, MpiComm, ...) implement the collectives out of
  point-to-point sends and legitimately branch on rank internally;
  their methods are exempt, and recursion into them contributes just
  the collective's name.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.flowcheck.callgraph import CallGraph
from repro.analysis.flowcheck.model import (
    ClassInfo,
    FunctionInfo,
    Program,
    dotted_name,
)
from repro.analysis.flowcheck.passes import Raw, flowpass

COLLECTIVES = {
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "gatherv",
    "allgather",
    "allgatherv",
    "scatter",
    "alltoall",
    "composite",
}
RANK_SEEDS = {"rank", "vrank", "my_rank", "myrank", "comm_rank"}


def _is_communicator(cls: Optional[ClassInfo]) -> bool:
    if cls is None:
        return False
    return len(COLLECTIVES & set(cls.methods)) >= 3


# ---------------------------------------------------------------------------
# rank taint
def _tainted_names(fn: FunctionInfo) -> Set[str]:
    tainted = {p for p in fn.params() if p in RANK_SEEDS}
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Name) and node.id in RANK_SEEDS:
            tainted.add(node.id)
    for _ in range(10):
        grew = False
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Assign):
                continue
            for target, value in _assignment_pairs(node):
                if not _expr_tainted(value, tainted):
                    continue
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name) and leaf.id not in tainted:
                        tainted.add(leaf.id)
                        grew = True
        if not grew:
            break
    return tainted


def _assignment_pairs(node: ast.Assign):
    """Element-wise pairs for ``a, b = x, y``; whole-value otherwise."""
    for target in node.targets:
        if (
            isinstance(target, ast.Tuple)
            and isinstance(node.value, ast.Tuple)
            and len(target.elts) == len(node.value.elts)
        ):
            yield from zip(target.elts, node.value.elts)
        else:
            yield target, node.value


def _expr_tainted(expr: ast.AST, tainted: Set[str]) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and node.id in tainted:
            return True
        if isinstance(node, ast.Attribute) and node.attr in RANK_SEEDS:
            return True
    return False


# ---------------------------------------------------------------------------
# collective signatures
class _Signatures:
    def __init__(self, program: Program):
        self.program = program
        self._memo: Dict[str, Tuple] = {}
        self._in_progress: Set[str] = set()

    def of_fn(self, fn: FunctionInfo) -> Tuple:
        if fn.qualname in self._memo:
            return self._memo[fn.qualname]
        if fn.qualname in self._in_progress:
            return ()
        self._in_progress.add(fn.qualname)
        sig = self.of_body(list(fn.node.body), fn)[0]
        self._in_progress.discard(fn.qualname)
        self._memo[fn.qualname] = sig
        return sig

    def of_body(self, body: List[ast.stmt], fn: FunctionInfo) -> Tuple[Tuple, bool]:
        """(signature, terminates) for a statement list."""
        parts: List = []
        terminates = False
        for stmt in body:
            if isinstance(stmt, (ast.Return, ast.Raise)):
                terminates = True
                break
            if isinstance(stmt, ast.If):
                then_sig, _ = self.of_body(list(stmt.body), fn)
                else_sig, _ = self.of_body(list(stmt.orelse), fn)
                if then_sig or else_sig:
                    parts.append(("if", then_sig, else_sig))
                continue
            if isinstance(stmt, (ast.For, ast.While)):
                inner, _ = self.of_body(list(stmt.body), fn)
                if inner:
                    parts.append(("loop", inner))
                continue
            if isinstance(stmt, ast.Try):
                for field in ("body", "orelse", "finalbody"):
                    inner, _ = self.of_body(list(getattr(stmt, field)), fn)
                    parts.extend(inner)
                continue
            if isinstance(stmt, ast.With):
                inner, _ = self.of_body(list(stmt.body), fn)
                parts.extend(inner)
                continue
            parts.extend(self._calls_of(stmt, fn))
        return tuple(parts), terminates

    def _calls_of(self, stmt: ast.stmt, fn: FunctionInfo) -> List:
        out: List = []
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            name = (dotted_name(node.func) or "").split(".")[-1]
            if name in COLLECTIVES:
                out.append(("c", name))
                continue
            resolved = self.program.resolve_call(node, fn)
            if len(resolved) == 1 and not _is_communicator(resolved[0].cls):
                sub = self.of_fn(resolved[0])
                out.extend(sub)
        return out


def _flatten(sig: Tuple) -> List[str]:
    names: List[str] = []
    for part in sig:
        if part and part[0] == "c":
            names.append(part[1])
        else:
            for sub in part[1:]:
                names.extend(_flatten(sub))
    return names


def _describe(sig: Tuple) -> str:
    names = _flatten(sig)
    return "[" + ", ".join(names) + "]" if names else "[no collectives]"


# ---------------------------------------------------------------------------
def _divergences(
    fn: FunctionInfo, signatures: _Signatures, tainted: Set[str]
) -> Iterator[Raw]:
    def scan(body: List[ast.stmt]) -> Iterator[Raw]:
        for idx, stmt in enumerate(body):
            for sub in _sub_bodies(stmt):
                yield from scan(sub)
            if not isinstance(stmt, ast.If):
                continue
            if not _expr_tainted(stmt.test, tainted):
                continue
            then_sig, then_term = signatures.of_body(list(stmt.body), fn)
            else_sig, else_term = signatures.of_body(list(stmt.orelse), fn)
            if then_sig != else_sig:
                yield Raw(
                    module=fn.module,
                    line=stmt.lineno,
                    col=stmt.col_offset,
                    message=(
                        "rank-dependent branch arms perform different "
                        f"collective sequences: {_describe(then_sig)} vs "
                        f"{_describe(else_sig)} — ranks taking different arms "
                        "deadlock in the mismatched collective"
                    ),
                    severity="error",
                )
            elif then_term != else_term:
                rest_sig, _ = signatures.of_body(list(body[idx + 1 :]), fn)
                if _flatten(rest_sig):
                    yield Raw(
                        module=fn.module,
                        line=stmt.lineno,
                        col=stmt.col_offset,
                        message=(
                            "rank-dependent early exit skips the "
                            f"{_describe(rest_sig)} collectives that follow: "
                            "exiting ranks never enter them"
                        ),
                        severity="error",
                    )

    def _sub_bodies(stmt: ast.stmt) -> Iterator[List[ast.stmt]]:
        for field in ("body", "orelse", "finalbody"):
            sub = getattr(stmt, field, None)
            if sub:
                yield list(sub)
        for handler in getattr(stmt, "handlers", []) or []:
            yield list(handler.body)

    yield from scan(list(fn.node.body))


@flowpass("FC005", "collective-divergence", severity="error")
def check_collective_divergence(
    program: Program, graph: CallGraph
) -> Iterator[Raw]:
    signatures = _Signatures(program)
    for fn in program.functions.values():
        if _is_communicator(fn.cls):
            continue
        tainted = _tainted_names(fn)
        if not tainted:
            continue
        yield from _divergences(fn, signatures, tainted)
