"""FC001: spawned task handles whose join()/kill() is unreachable.

A ``spawn(...)`` returns a task handle. If the handle is bound to a
local that is never mentioned again, or stored on ``self`` under an
attribute no code ever loads, then no join/kill/interrupt site can
reach the task: it can only end by running to completion, and a stuck
task is invisible to its owner.

Abstraction: *any* later mention of the handle counts as consumption —
we do not require the mention to be a ``join``/``kill`` call, because
handles routinely travel through lists into ``all_of`` combinators.
Discarded handles (``sim.spawn(loop())`` as a bare expression
statement) are deliberately NOT reported: that is the tree's documented
fire-and-forget idiom, and flagging it would bury the real leaks.
Both choices trade false negatives for a near-zero false-positive
rate; see DESIGN.md.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.flowcheck.callgraph import CallGraph
from repro.analysis.flowcheck.model import Program
from repro.analysis.flowcheck.passes import Raw, flowpass, parent_map, self_attr_name


def _name_used_again(fn_node: ast.AST, name: str, exclude: ast.AST) -> bool:
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Name) and node.id == name and node is not exclude:
            return True
    return False


def _self_attr_loaded_anywhere(program: Program, attr: str) -> bool:
    """Any ``self.<attr>`` load (or del) anywhere in the program."""
    for fn in program.functions.values():
        if fn.cls is None:
            continue
        for node in ast.walk(fn.node):
            if (
                self_attr_name(node) == attr
                and not isinstance(node.ctx, ast.Store)
            ):
                return True
    return False


@flowpass("FC001", "task-leak", severity="warning")
def check_task_leaks(program: Program, graph: CallGraph) -> Iterator[Raw]:
    parents_cache = {}
    for site in graph.spawns:
        fn = site.fn
        if fn.qualname not in parents_cache:
            parents_cache[fn.qualname] = parent_map(fn.node)
        parents = parents_cache[fn.qualname]
        parent = parents.get(site.call)
        if not isinstance(parent, ast.Assign) or parent.value is not site.call:
            # Bare-expression spawns are fire-and-forget by convention;
            # handles nested in other expressions (append, all_of, ...)
            # are consumed by construction.
            continue
        if len(parent.targets) != 1:
            continue
        target = parent.targets[0]
        what = site.target.name if site.target else "task"
        if isinstance(target, ast.Name):
            if not _name_used_again(fn.node, target.id, exclude=target):
                yield Raw(
                    module=fn.module,
                    line=site.call.lineno,
                    col=site.call.col_offset,
                    message=(
                        f"task handle '{target.id}' (spawn of {what}) is never "
                        "joined, killed, or otherwise consumed"
                    ),
                    severity="warning",
                )
        else:
            attr = self_attr_name(target)
            if attr is not None and not _self_attr_loaded_anywhere(program, attr):
                yield Raw(
                    module=fn.module,
                    line=site.call.lineno,
                    col=site.call.col_offset,
                    message=(
                        f"task handle 'self.{attr}' (spawn of {what}) is stored "
                        "but no code ever reads it back"
                    ),
                    severity="warning",
                )
