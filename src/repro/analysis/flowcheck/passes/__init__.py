"""Pass registry and shared AST utilities for flowcheck.

Each pass module registers one rule via :func:`flowpass`. A pass is a
generator ``fn(program, graph)`` yielding :class:`Raw` findings; the
runner turns those into :class:`~repro.analysis.flowcheck.model.FlowFinding`
objects after consulting the per-module suppression tables.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional

from repro.analysis.flowcheck.model import FlowModule

__all__ = [
    "PassSpec",
    "Raw",
    "REGISTRY",
    "flowpass",
    "parent_map",
    "self_attr_name",
]


@dataclass
class Raw:
    """A pass-level finding, pre-suppression."""

    module: FlowModule
    line: int
    col: int
    message: str
    severity: str


@dataclass
class PassSpec:
    rule: str
    slug: str
    severity: str
    fn: Callable[..., Iterator[Raw]]


REGISTRY: List[PassSpec] = []


def flowpass(rule: str, slug: str, severity: str = "error"):
    """Register a pass under a rule id with its default severity."""

    def decorate(fn: Callable[..., Iterator[Raw]]):
        REGISTRY.append(PassSpec(rule=rule, slug=slug, severity=severity, fn=fn))
        return fn

    return decorate


def parent_map(root: ast.AST) -> Dict[ast.AST, ast.AST]:
    """Child node -> parent node for every node under ``root``."""
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(root):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def self_attr_name(node: ast.AST) -> Optional[str]:
    """``self.x`` -> ``"x"``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


# Import for side effect: each module registers its pass.
from repro.analysis.flowcheck.passes import (  # noqa: E402,F401
    tasks,
    events,
    pairing,
    locks,
    collectives,
    rpc,
    tenancy,
    epochs,
    quota,
    metrics,
)
