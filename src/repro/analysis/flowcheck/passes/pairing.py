"""FC003: acquire/release and register/deregister pairing.

Two layers:

**Grant pairing (error).** A ``yield R.acquire()`` (or
``grant = R.acquire(); ...; yield grant``) must be matched by an
``R.release()`` somewhere — in the same function, or anywhere in the
program when the receiver is a ``self.``-rooted attribute (lifecycle
locks legitimately release in a sibling method). When acquire and
release sit in the same function, every ``yield`` between them must be
covered by a ``try/finally`` whose finalbody releases ``R``: a kill or
interrupt landing on an unprotected yield leaks the resource slot
forever. ``with R.held():`` is the structurally safe form and is
recognized as such. Receivers that are ``self`` alone (the primitive's
own methods) or a bare parameter (the caller owns the pairing
contract, e.g. ``Condition.wait(mutex)``) are out of scope.

**Registration pairing (warning).** A class that ``export``s RPC
handlers, or a module that calls ``register_rpc`` with a literal name,
should have *some* ``unexport``/``deregister_rpc`` call on its
class chain / in its module; otherwise handlers outlive shutdown and a
late ``forward`` dispatches into a detached provider.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.flowcheck.callgraph import CallGraph
from repro.analysis.flowcheck.model import (
    FunctionInfo,
    Program,
    dotted_name,
    iter_yields,
    receiver_of,
)
from repro.analysis.flowcheck.passes import Raw, flowpass, parent_map

RELEASE_ATTRS = {"release", "unlock"}
DEREGISTER_ATTRS = {"deregister_rpc", "unexport"}


def _skip_receiver(receiver: Optional[str], fn: FunctionInfo) -> bool:
    if not receiver:
        return True
    head = receiver.split(".")[0]
    if receiver == "self":
        return True  # the primitive's own implementation
    if head != "self" and head in set(fn.params()):
        return True  # caller's pairing contract
    return False


def _release_sites(root: ast.AST, receiver: str) -> List[ast.Call]:
    sites = []
    for node in ast.walk(root):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in RELEASE_ATTRS
            and dotted_name(node.func.value) == receiver
        ):
            sites.append(node)
    return sites


def _program_releases(program: Program, receiver: str) -> bool:
    return any(
        _release_sites(fn.node, receiver)
        for fn in program.functions.values()
    )


def _grant_escapes(fn: FunctionInfo, grant: str, assign: ast.Assign) -> bool:
    """The grant variable is returned or stored outside the function."""
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Return) and node.value is not None:
            if any(
                isinstance(n, ast.Name) and n.id == grant
                for n in ast.walk(node.value)
            ):
                return True
        if isinstance(node, ast.Assign) and node is not assign:
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    if any(
                        isinstance(n, ast.Name) and n.id == grant
                        for n in ast.walk(node.value)
                    ):
                        return True
    return False


def _acquires(fn: FunctionInfo) -> Iterator[Tuple[str, ast.AST, Optional[ast.Assign]]]:
    """(receiver, wait-yield node, grant assign or None) per acquire."""
    parents = parent_map(fn.node)
    grant_assigns: Dict[str, Tuple[str, ast.Assign]] = {}
    for node in ast.walk(fn.node):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "acquire"
        ):
            continue
        receiver = receiver_of(node)
        if _skip_receiver(receiver, fn):
            continue
        parent = parents.get(node)
        if isinstance(parent, ast.Yield):
            yield receiver, parent, None
        elif (
            isinstance(parent, ast.Assign)
            and len(parent.targets) == 1
            and isinstance(parent.targets[0], ast.Name)
        ):
            grant_assigns[parent.targets[0].id] = (receiver, parent)
    for node in ast.walk(fn.node):
        if (
            isinstance(node, ast.Yield)
            and isinstance(node.value, ast.Name)
            and node.value.id in grant_assigns
        ):
            receiver, assign = grant_assigns[node.value.id]
            yield receiver, node, assign


def _protected_by_finally(
    node: ast.AST, parents: Dict[ast.AST, ast.AST], receiver: str
) -> bool:
    """Some ancestor try has a finalbody releasing ``receiver``."""
    current = parents.get(node)
    while current is not None:
        if isinstance(current, ast.Try):
            for stmt in current.finalbody:
                if _release_sites(stmt, receiver):
                    return True
        current = parents.get(current)
    return False


def _held_receivers(root: ast.AST) -> Set[str]:
    """Receivers guarded by ``with R.held():`` anywhere under root."""
    out: Set[str] = set()
    for node in ast.walk(root):
        if not isinstance(node, ast.With):
            continue
        for item in node.items:
            ctx = item.context_expr
            if (
                isinstance(ctx, ast.Call)
                and isinstance(ctx.func, ast.Attribute)
                and ctx.func.attr == "held"
            ):
                receiver = dotted_name(ctx.func.value)
                if receiver:
                    out.add(receiver)
    return out


def _grant_findings(fn: FunctionInfo, program: Program) -> Iterator[Raw]:
    parents = parent_map(fn.node)
    guarded = _held_receivers(fn.node)
    for receiver, wait_node, assign in _acquires(fn):
        if receiver in guarded:
            # with R.held(): — the guard releases on exit, exception,
            # and GeneratorExit, so the pairing is structural.
            continue
        local_releases = _release_sites(fn.node, receiver)
        if not local_releases:
            if assign is not None and _grant_escapes(
                fn, assign.targets[0].id, assign
            ):
                continue  # ownership handed off
            if receiver.startswith("self.") and _program_releases(
                program, receiver
            ):
                continue  # cross-method lifecycle pairing
            yield Raw(
                module=fn.module,
                line=wait_node.lineno,
                col=wait_node.col_offset,
                message=(
                    f"acquire of '{receiver}' has no matching release() "
                    "anywhere on this path: the slot leaks"
                ),
                severity="error",
            )
            continue
        last_release = max(site.lineno for site in local_releases)
        for y in iter_yields(fn.node):
            if y is wait_node:
                continue
            if not (wait_node.lineno < y.lineno <= last_release):
                continue
            if _protected_by_finally(y, parents, receiver):
                continue
            yield Raw(
                module=fn.module,
                line=wait_node.lineno,
                col=wait_node.col_offset,
                message=(
                    f"yield at line {y.lineno} sits between acquire and "
                    f"release of '{receiver}' without try/finally protection: "
                    "a kill or interrupt there leaks the slot "
                    f"(use 'with {receiver}.held():')"
                ),
                severity="error",
            )
            break


def _registration_findings(program: Program, graph: CallGraph) -> Iterator[Raw]:
    flagged_classes: Set[Tuple[str, int, str]] = set()
    flagged_modules: Set[str] = set()
    for reg in graph.registrations:
        fn = _owning_fn(graph, reg)
        if fn is None:
            continue
        if reg.expected_arity == 1 and fn.cls is not None:
            key = fn.cls.key
            if key in flagged_classes:
                continue
            if _chain_deregisters(program, fn):
                flagged_classes.add(key)
                continue
            flagged_classes.add(key)
            yield Raw(
                module=reg.module,
                line=reg.node.lineno,
                col=reg.node.col_offset,
                message=(
                    f"class {fn.cls.name} exports RPC handlers but no "
                    "unexport/deregister_rpc exists on its class chain: "
                    "handlers outlive shutdown"
                ),
                severity="warning",
            )
        elif reg.expected_arity == 2:
            if reg.module.rel in flagged_modules:
                continue
            has_dereg = any(
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in DEREGISTER_ATTRS
                for node in ast.walk(reg.module.tree)
            )
            if has_dereg:
                flagged_modules.add(reg.module.rel)
                continue
            flagged_modules.add(reg.module.rel)
            yield Raw(
                module=reg.module,
                line=reg.node.lineno,
                col=reg.node.col_offset,
                message=(
                    f"register_rpc('{reg.full_name}') has no deregister_rpc "
                    "anywhere in this module: the handler outlives its owner"
                ),
                severity="warning",
            )


def _owning_fn(graph: CallGraph, reg) -> Optional[FunctionInfo]:
    for fn in graph.program.functions.values():
        if fn.module is reg.module:
            for node in ast.walk(fn.node):
                if node is reg.node:
                    return fn
    return None


def _chain_deregisters(program: Program, fn: FunctionInfo) -> bool:
    for owner in program.class_and_bases(fn.cls):
        for method in owner.methods.values():
            for node in ast.walk(method.node):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in DEREGISTER_ATTRS
                ):
                    return True
    return False


@flowpass("FC003", "resource-pairing", severity="error")
def check_resource_pairing(program: Program, graph: CallGraph) -> Iterator[Raw]:
    for fn in program.functions.values():
        yield from _grant_findings(fn, program)
    yield from _registration_findings(program, graph)
