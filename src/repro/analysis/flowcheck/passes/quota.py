"""FC009: quota-balance — every tenant charge is released on all paths.

FC003 pairs binary acquire/release grants; tenant quotas are
*quantitative*: ``TenantRegistry.charge()``/``reserve()`` add bytes
and blocks to a tenant's account that only an exact
``uncharge()``/``release()``/``release_pipeline()`` gives back.  A
charge that leaks — an exception, an abort, a patience-exhaustion exit
that skips the release — wedges the tenant's backpressure forever
(``reserve`` waits on room that can never appear).  PR 7 hand-built
the pairing in the stage handler; this pass generalizes it:

- **Charging sites** are ``.charge(...)``/``.reserve(...)`` calls on a
  quota-registry receiver (a dotted receiver containing ``tenant``,
  ``registry`` or ``quota`` — ``self.tenants``, ``provider.tenants``).
  Bare ``self`` receivers are the registry's own implementation and
  compute-cost ``ctx.charge(seconds)`` calls never match.
- After a charge, the charge is **pending**.  A yield while pending
  must sit under a ``try`` whose ``except``/``finally`` undoes the
  charge (an ``uncharge``/``release`` on a quota receiver): a kill,
  interrupt or RPC error landing on an unprotected yield leaks the
  charge.  Once a protected yield has completed — control left the
  compensating ``try`` — the charge is **committed**: post-commit
  yields (replica forwards, metric flushes) are fine.
- A charging function with **no release anywhere in the program** on a
  matching receiver family is reported at the charge site: nothing can
  ever balance it (the release may legitimately live in a sibling
  handler — deactivate releases what stage charged — so the search is
  whole-program, FC003-style).

``reserve`` counts as a charging site because it charges internally
before returning (backpressure admission); its own yield is protected
inside the registry, so the pending window starts *after* the
statement.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.analysis.flowcheck.callgraph import CallGraph
from repro.analysis.flowcheck.model import (
    FunctionInfo,
    Program,
    iter_yields,
    receiver_of,
)
from repro.analysis.flowcheck.passes import Raw, flowpass, parent_map

CHARGE_ATTRS = {"charge", "reserve"}
RELEASE_ATTRS = {"uncharge", "release", "release_pipeline"}
#: A receiver is a quota registry if its dotted path contains one of
#: these — ``self.tenants``, ``provider.tenants``, ``quota_registry``.
REGISTRY_MARKERS = ("tenant", "registry", "quota")


def _is_quota_receiver(receiver: Optional[str]) -> bool:
    if not receiver or receiver == "self":
        return False
    return any(marker in receiver.lower() for marker in REGISTRY_MARKERS)


def _quota_calls(root: ast.AST, attrs) -> List[ast.Call]:
    out = []
    for node in ast.walk(root):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in attrs
            and _is_quota_receiver(receiver_of(node))
        ):
            out.append(node)
    return out


def _program_releases(program: Program) -> bool:
    return any(
        _quota_calls(fn.node, RELEASE_ATTRS)
        for fn in program.functions.values()
    )


def _compensating_try(
    node: ast.AST, parents, stop_at: ast.AST
) -> Optional[ast.Try]:
    """Nearest ancestor Try whose handlers/finalbody undo a charge."""
    current = parents.get(node)
    while current is not None and current is not stop_at:
        if isinstance(current, ast.Try):
            for handler in current.handlers:
                for stmt in handler.body:
                    if _quota_calls(stmt, RELEASE_ATTRS):
                        return current
            for stmt in current.finalbody:
                if _quota_calls(stmt, RELEASE_ATTRS):
                    return current
        current = parents.get(current)
    return None


def _check_function(fn: FunctionInfo, program: Program) -> Iterator[Raw]:
    charges = _quota_calls(fn.node, CHARGE_ATTRS)
    if not charges:
        return
    parents = parent_map(fn.node)
    has_local_release = bool(_quota_calls(fn.node, RELEASE_ATTRS))
    if not has_local_release and not _program_releases(program):
        for charge in charges:
            yield Raw(
                module=fn.module,
                line=charge.lineno,
                col=charge.col_offset,
                message=(
                    f"quota {charge.func.attr}() has no matching "
                    "uncharge/release anywhere in the program: the "
                    "tenant's budget can never be rebalanced"
                ),
                severity="error",
            )
        return

    yields = sorted(iter_yields(fn.node), key=lambda y: (y.lineno, y.col_offset))
    for charge in charges:
        compensated = False
        for y in yields:
            if y.lineno < charge.lineno:
                continue
            # The charge's own statement (reserve is itself a yield
            # from) starts the pending window *after* it completes.
            if y.lineno == charge.lineno or _contains(y, charge):
                continue
            protected = _compensating_try(y, parents, stop_at=fn.node)
            if protected is not None:
                compensated = True
                continue
            if compensated:
                # Control already left a compensating try once: the
                # charge is committed, later yields are post-commit.
                continue
            yield Raw(
                module=fn.module,
                line=y.lineno,
                col=y.col_offset,
                message=(
                    f"yield while a quota {charge.func.attr}() from line "
                    f"{charge.lineno} is pending, with no try/except/"
                    "finally releasing it: a kill, interrupt or RPC error "
                    "here leaks the charge (wrap the yield and uncharge "
                    "on BaseException)"
                ),
                severity="error",
            )
            break


def _contains(outer: ast.AST, inner: ast.AST) -> bool:
    return any(node is inner for node in ast.walk(outer))


@flowpass("FC009", "quota-balance", severity="error")
def check_quota_balance(program: Program, graph: CallGraph) -> Iterator[Raw]:
    for _, fn in sorted(program.functions.items()):
        yield from _check_function(fn, program)
