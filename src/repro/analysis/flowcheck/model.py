"""The whole-program model flowcheck's passes analyze.

A :class:`Program` is every module in the analyzed file set, parsed
once, with three indexes the passes share:

- ``functions``: fully-qualified name -> :class:`FunctionInfo` for each
  function/method (``path::Class.method`` / ``path::func``);
- ``classes``: class name -> :class:`ClassInfo` list (name collisions
  across modules are kept, not merged);
- ``methods_by_name``: bare name -> every function/method so named,
  the receiver-agnostic resolution fallback.

Name resolution is deliberately textual (stdlib ``ast`` only, no type
inference): ``self.f()`` resolves through the enclosing class and its
textual base-class chain; ``obj.f()`` falls back to every method named
``f`` in the program. That over-approximates call edges, which is the
right direction for reachability questions ("is a release reachable?")
and documented per-pass for the precision questions.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.analysis.detlint import dotted_name
from repro.analysis.suppress import SuppressionTable

__all__ = [
    "ClassInfo",
    "FlowFinding",
    "FlowModule",
    "FunctionInfo",
    "Program",
    "dotted_name",
    "iter_yields",
    "receiver_of",
]

SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class FlowFinding:
    """One flowcheck rule hit at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"
    suppressed: bool = False
    reason: str = ""

    def render(self) -> str:
        tail = f"  [suppressed: {self.reason}]" if self.suppressed else ""
        return (
            f"{self.path}:{self.line}:{self.col}: {self.rule} "
            f"[{self.severity}] {self.message}{tail}"
        )


class FlowModule:
    """One parsed module plus its flowcheck suppression table."""

    def __init__(self, path: Path, rel: str, source: str):
        self.path = path
        self.rel = rel.replace("\\", "/")
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=self.rel)
        self.suppressions = SuppressionTable("flowcheck", self.lines)


class ClassInfo:
    """A class definition: its methods and textual base names."""

    def __init__(self, module: FlowModule, node: ast.ClassDef):
        self.module = module
        self.node = node
        self.name = node.name
        #: Stable identity (file + line + name) for seen-sets and memo
        #: keys — id() would tie analysis order to allocation addresses.
        self.key = (module.rel, node.lineno, node.name)
        #: Base-class names as written (last dotted component).
        self.base_names: List[str] = []
        for base in node.bases:
            name = dotted_name(base)
            if name:
                self.base_names.append(name.split(".")[-1])
        self.methods: Dict[str, "FunctionInfo"] = {}


class FunctionInfo:
    """One function or method and its derived facts."""

    def __init__(
        self,
        module: FlowModule,
        node: ast.FunctionDef,
        cls: Optional[ClassInfo] = None,
    ):
        self.module = module
        self.node = node
        self.cls = cls
        self.name = node.name
        owner = f"{cls.name}." if cls else ""
        self.qualname = f"{module.rel}::{owner}{node.name}"
        self.is_generator = any(True for _ in iter_yields(node))

    # ------------------------------------------------------------------
    def params(self) -> List[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if self.cls is not None and names and names[0] in ("self", "cls"):
            names = names[1:]
        return names

    def required_positional(self) -> int:
        """Positional parameters without defaults (excluding self/cls)."""
        args = self.node.args
        positional = args.posonlyargs + args.args
        required = len(positional) - len(args.defaults)
        if self.cls is not None and positional and positional[0].arg in ("self", "cls"):
            required -= 1
        return max(required, 0)

    def max_positional(self) -> Optional[int]:
        """Positional capacity, or None for ``*args``."""
        args = self.node.args
        if args.vararg is not None:
            return None
        count = len(args.posonlyargs) + len(args.args)
        if self.cls is not None and (args.posonlyargs + args.args):
            first = (args.posonlyargs + args.args)[0].arg
            if first in ("self", "cls"):
                count -= 1
        return count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FunctionInfo {self.qualname}>"


# ---------------------------------------------------------------------------
# AST helpers shared by the passes
def iter_yields(fn: ast.AST) -> Iterator[ast.AST]:
    """Yield/YieldFrom nodes of this scope (not of nested functions)."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(child, (ast.Yield, ast.YieldFrom)):
            yield child
        stack.extend(ast.iter_child_nodes(child))


def receiver_of(call: ast.Call) -> Optional[str]:
    """Dotted receiver of a method call: ``a.b.acquire()`` -> ``a.b``."""
    if not isinstance(call.func, ast.Attribute):
        return None
    return dotted_name(call.func.value)


def _python_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


class Program:
    """Every module in the file set, parsed and indexed."""

    def __init__(self, modules: List[FlowModule]):
        self.modules = modules
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, List[ClassInfo]] = {}
        self.methods_by_name: Dict[str, List[FunctionInfo]] = {}
        #: Module-level functions by (module rel, name).
        self._module_functions: Dict[Tuple[str, str], FunctionInfo] = {}
        for module in modules:
            self._index_module(module)

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, paths: Iterable[str], root: Optional[str] = None) -> "Program":
        root_path = Path(root) if root else Path.cwd()
        modules = []
        for file_path in _python_files(Path(p) for p in paths):
            try:
                rel = str(file_path.resolve().relative_to(root_path.resolve()))
            except ValueError:
                rel = str(file_path)
            modules.append(FlowModule(file_path, rel, file_path.read_text()))
        return cls(modules)

    # ------------------------------------------------------------------
    def _index_module(self, module: FlowModule) -> None:
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(FunctionInfo(module, node))
            elif isinstance(node, ast.ClassDef):
                info = ClassInfo(module, node)
                self.classes.setdefault(info.name, []).append(info)
                for child in node.body:
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        fn = FunctionInfo(module, child, cls=info)
                        info.methods[fn.name] = fn
                        self._add_function(fn)
                    elif isinstance(child, (ast.FunctionDef,)):  # pragma: no cover
                        pass

    def _add_function(self, fn: FunctionInfo) -> None:
        self.functions[fn.qualname] = fn
        self.methods_by_name.setdefault(fn.name, []).append(fn)
        if fn.cls is None:
            self._module_functions[(fn.module.rel, fn.name)] = fn

    # ------------------------------------------------------------------
    # resolution
    def resolve_method(self, cls: ClassInfo, name: str) -> Optional[FunctionInfo]:
        """``self.<name>`` through the textual base-class chain."""
        seen: Set[Tuple[str, int, str]] = set()
        stack = [cls]
        while stack:
            current = stack.pop(0)
            if current.key in seen:
                continue
            seen.add(current.key)
            if name in current.methods:
                return current.methods[name]
            for base_name in current.base_names:
                stack.extend(self.classes.get(base_name, []))
        return None

    def class_and_bases(self, cls: ClassInfo) -> Iterator[ClassInfo]:
        """The class followed by its textual base chain (deduplicated)."""
        seen: Set[Tuple[str, int, str]] = set()
        stack = [cls]
        while stack:
            current = stack.pop(0)
            if current.key in seen:
                continue
            seen.add(current.key)
            yield current
            for base_name in current.base_names:
                stack.extend(self.classes.get(base_name, []))

    #: Above this many same-named candidates the name is considered too
    #: generic to resolve (edges to everything would drown the passes).
    MAX_CANDIDATES = 12

    def resolve_call(self, call: ast.Call, caller: FunctionInfo) -> List[FunctionInfo]:
        """Callees a call expression may reach (over-approximate)."""
        func = call.func
        if isinstance(func, ast.Name):
            local = self._module_functions.get((caller.module.rel, func.id))
            if local is not None:
                return [local]
            candidates = [
                f for f in self.methods_by_name.get(func.id, []) if f.cls is None
            ]
            return candidates if len(candidates) == 1 else []
        if isinstance(func, ast.Attribute):
            receiver = dotted_name(func.value)
            if receiver == "self" and caller.cls is not None:
                target = self.resolve_method(caller.cls, func.attr)
                if target is not None:
                    return [target]
            candidates = [f for f in self.methods_by_name.get(func.attr, []) if f.cls]
            if 0 < len(candidates) <= self.MAX_CANDIDATES:
                return candidates
        return []
