"""Isoguard's interprocedural field-sensitive taint engine.

The FC001–FC006 passes are mostly *shape* analyses (does a release
exist, does a name resolve).  The tenancy-era contracts (DESIGN §13)
are *value* questions: did this wire name pass through
``tenancy.qualify()`` before reaching the fabric?  This module answers
them with a classic forward taint analysis over flowcheck's
:class:`~repro.analysis.flowcheck.model.Program`:

- **labels** are short strings (``"raw-name"``, ``"tenant-id"``)
  attached to abstract values by *source* rules (a parameter predicate,
  source-call results, source-attribute reads);
- **sanitizers** are callees whose result is always clean
  (``qualify``);
- **sinks** are call arguments that must never carry a forbidden
  label; dict-valued sinks can restrict the check to specific keys
  (``{"pipeline": ..., "name": ...}`` payloads).

Propagation is field-sensitive per class (``self.name = name`` in
``__init__`` taints every later ``self.name`` read *of that class*),
key-sensitive for dict literals and ``d["k"] = v`` stores, and flows
through f-strings, concatenation, tuple unpacking of *splitting*
source calls, and — interprocedurally — through call arguments,
constructor arguments and return values.  The whole program iterates
to a fixpoint (labels only ever grow, so it terminates); each label
carries a provenance chain that becomes the finding's witness path::

    witness: client.py:139 pipeline_handle() passes 'name' ->
    client.py:150 __init__() stores self.name -> sink

Precision notes (documented in DESIGN §14): field labels are
flow-insensitive across methods (a field sanitized in one method still
reads tainted elsewhere), unresolved calls conservatively propagate
the union of their argument labels, and branches merge by union.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field as dc_field
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.flowcheck.model import (
    FlowModule,
    FunctionInfo,
    Program,
    dotted_name,
)

__all__ = ["SinkSpec", "TaintEngine", "TaintFinding", "TaintSpec"]

#: Fixpoint safety net; real chains in this tree converge in <= 4.
MAX_ROUNDS = 10


@dataclass(frozen=True)
class SinkSpec:
    """One sink: a callee name plus which argument must stay clean."""

    callee: str
    arg: int
    kw: str = ""
    kind: str = "sink"
    #: For dict-valued arguments, only these keys are inspected;
    #: empty means the whole value.
    keys: Tuple[str, ...] = ()


@dataclass
class TaintSpec:
    """Sources, sanitizers and sinks for one taint domain."""

    #: (fn, param_name) -> label or None: parameter sources.
    param_label: Callable[[FunctionInfo, str], Optional[str]]
    #: callee last-name -> label of its result.
    source_calls: Dict[str, str]
    #: callee last-name -> labels of each tuple element when the
    #: result is unpacked (``t, n = split_qualified(x)``).
    source_tuple_calls: Dict[str, Tuple[str, ...]]
    #: attribute name -> label of any ``obj.<attr>`` read.
    source_attrs: Dict[str, str]
    #: callee last-names whose result is always clean.
    sanitizers: FrozenSet[str]
    sinks: Tuple[SinkSpec, ...]
    #: labels that must not reach a sink.
    forbidden: FrozenSet[str]
    #: modules the engine skips entirely (the sanitizer's own home).
    exempt: Callable[[FlowModule], bool] = lambda module: False


@dataclass(frozen=True)
class TaintFinding:
    fn: FunctionInfo
    line: int
    col: int
    label: str
    kind: str
    sunk: str
    witness: Tuple[str, ...]


@dataclass
class Val:
    """Abstract value: labels, per-dict-key labels, label provenance."""

    labels: Set[str] = dc_field(default_factory=set)
    keys: Dict[str, Set[str]] = dc_field(default_factory=dict)
    #: label -> provenance key into TaintEngine._prov.
    prov: Dict[str, tuple] = dc_field(default_factory=dict)

    def copy(self) -> "Val":
        return Val(
            labels=set(self.labels),
            keys={k: set(v) for k, v in self.keys.items()},
            prov=dict(self.prov),
        )

    def all_labels(self) -> Set[str]:
        out = set(self.labels)
        for labels in self.keys.values():
            out |= labels
        return out

    def merge(self, other: "Val") -> "Val":
        out = self.copy()
        out.labels |= other.labels
        for k, v in other.keys.items():
            out.keys.setdefault(k, set()).update(v)
        for label, key in other.prov.items():
            out.prov.setdefault(label, key)
        return out


def _callee_name(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


class TaintEngine:
    """Run one :class:`TaintSpec` over a program to a fixpoint."""

    def __init__(self, program: Program, spec: TaintSpec):
        self.program = program
        self.spec = spec
        #: (qualname, param) -> labels flowing in from call sites.
        self._param_in: Dict[Tuple[str, str], Set[str]] = {}
        #: (qualname, param, key) -> labels for dict-valued params.
        self._param_key_in: Dict[Tuple[str, str, str], Set[str]] = {}
        #: (class key, field) -> labels ever stored into the field.
        self._field_in: Dict[Tuple[tuple, str], Set[str]] = {}
        #: qualname -> labels / per-key labels of the return value.
        self._ret: Dict[str, Set[str]] = {}
        self._ret_keys: Dict[str, Dict[str, Set[str]]] = {}
        #: provenance key -> (description, predecessor key or None).
        self._prov: Dict[tuple, Tuple[str, Optional[tuple]]] = {}
        self._findings: Dict[tuple, TaintFinding] = {}
        self._fns = [
            fn
            for qn, fn in sorted(program.functions.items())
            if not spec.exempt(fn.module)
        ]

    # ------------------------------------------------------------------
    def run(self) -> List[TaintFinding]:
        for _ in range(MAX_ROUNDS):
            self._changed = False
            for fn in self._fns:
                _FnFlow(self, fn).run()
            if not self._changed:
                break
        return sorted(
            self._findings.values(),
            key=lambda f: (f.fn.module.rel, f.line, f.label),
        )

    # ------------------------------------------------------------------
    # fixpoint state updates (all monotone)
    def _note(self) -> None:
        self._changed = True

    def add_prov(self, key: tuple, desc: str, prev: Optional[tuple]) -> tuple:
        self._prov.setdefault(key, (desc, prev))
        return key

    def witness(self, key: Optional[tuple]) -> Tuple[str, ...]:
        chain: List[str] = []
        seen = set()
        while key is not None and key not in seen:
            seen.add(key)
            desc, key = self._prov.get(key, ("", None))
            if desc:
                chain.append(desc)
        return tuple(reversed(chain))

    def push_param(
        self, callee: FunctionInfo, param: str, val: Val, desc: str,
    ) -> None:
        slot = self._param_in.setdefault((callee.qualname, param), set())
        for label in val.all_labels():
            self.add_prov(
                ("param", callee.qualname, param, label), desc, val.prov.get(label)
            )
            if label not in slot:
                slot.add(label)
                self._note()
        for dkey, labels in val.keys.items():
            kslot = self._param_key_in.setdefault(
                (callee.qualname, param, dkey), set()
            )
            for label in labels:
                self.add_prov(
                    ("param", callee.qualname, param, label),
                    desc,
                    val.prov.get(label),
                )
                if label not in kslot:
                    kslot.add(label)
                    self._note()

    def store_field(
        self, cls_key: tuple, field: str, val: Val, desc: str,
    ) -> None:
        slot = self._field_in.setdefault((cls_key, field), set())
        for label in val.all_labels():
            self.add_prov(
                ("field", cls_key, field, label), desc, val.prov.get(label)
            )
            if label not in slot:
                slot.add(label)
                self._note()

    def read_field(self, cls_key: tuple, field: str) -> Val:
        labels = self._field_in.get((cls_key, field), set())
        return Val(
            labels=set(labels),
            prov={lb: ("field", cls_key, field, lb) for lb in labels},
        )

    def set_return(self, fn: FunctionInfo, val: Val) -> None:
        slot = self._ret.setdefault(fn.qualname, set())
        for label in val.labels:
            self.add_prov(
                ("ret", fn.qualname, label),
                f"{fn.module.rel} {fn.name}() returns it",
                val.prov.get(label),
            )
            if label not in slot:
                slot.add(label)
                self._note()
        kslot = self._ret_keys.setdefault(fn.qualname, {})
        for dkey, labels in val.keys.items():
            cur = kslot.setdefault(dkey, set())
            for label in labels:
                self.add_prov(
                    ("ret", fn.qualname, label),
                    f"{fn.module.rel} {fn.name}() returns it",
                    val.prov.get(label),
                )
                if label not in cur:
                    cur.add(label)
                    self._note()

    def return_val(self, fn: FunctionInfo) -> Val:
        labels = self._ret.get(fn.qualname, set())
        val = Val(
            labels=set(labels),
            prov={lb: ("ret", fn.qualname, lb) for lb in labels},
        )
        for dkey, labels in self._ret_keys.get(fn.qualname, {}).items():
            val.keys[dkey] = set(labels)
            for lb in labels:
                val.prov.setdefault(lb, ("ret", fn.qualname, lb))
        return val

    def report(
        self,
        fn: FunctionInfo,
        call: ast.Call,
        spec: SinkSpec,
        label: str,
        sunk: str,
        prov: Optional[tuple],
    ) -> None:
        key = (fn.qualname, call.lineno, spec.kind, label, sunk)
        if key in self._findings:
            return
        self._findings[key] = TaintFinding(
            fn=fn,
            line=call.lineno,
            col=call.col_offset,
            label=label,
            kind=spec.kind,
            sunk=sunk,
            witness=self.witness(prov),
        )
        self._note()

    # ------------------------------------------------------------------
    def resolve_callees(
        self, call: ast.Call, caller: FunctionInfo
    ) -> List[FunctionInfo]:
        """resolve_call plus unique-class constructor resolution."""
        if isinstance(call.func, ast.Name):
            classes = self.program.classes.get(call.func.id, [])
            if len(classes) == 1:
                init = classes[0].methods.get("__init__")
                if init is not None:
                    return [init]
        return self.program.resolve_call(call, caller)


class _FnFlow:
    """One intraprocedural pass over one function."""

    def __init__(self, engine: TaintEngine, fn: FunctionInfo):
        self.engine = engine
        self.fn = fn
        self.env: Dict[str, Val] = {}
        spec = engine.spec
        for param in fn.params():
            val = Val()
            incoming = engine._param_in.get((fn.qualname, param), set())
            for label in incoming:
                val.labels.add(label)
                val.prov[label] = ("param", fn.qualname, param, label)
            for (qn, p, dkey), labels in engine._param_key_in.items():
                if qn == fn.qualname and p == param:
                    val.keys.setdefault(dkey, set()).update(labels)
                    for label in labels:
                        val.prov.setdefault(
                            label, ("param", fn.qualname, param, label)
                        )
            own = spec.param_label(fn, param)
            if own is not None and own not in val.labels:
                val.labels.add(own)
                val.prov[own] = engine.add_prov(
                    ("src", fn.qualname, param, own),
                    f"{fn.module.rel}:{fn.node.lineno} parameter "
                    f"'{param}' of {fn.name}() carries {own}",
                    None,
                )
            if val.labels or val.keys:
                self.env[param] = val

    # ------------------------------------------------------------------
    def run(self) -> None:
        self._block(self.fn.node.body)

    def _block(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(stmt, ast.Assign):
            val = self.eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, val, stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign(stmt.target, self.eval(stmt.value), stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            val = self.eval(stmt.value)
            name = dotted_name(stmt.target)
            if name is not None:
                old = self.env.get(name, Val())
                self.env[name] = old.merge(val)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.engine.set_return(self.fn, self.eval(stmt.value))
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, (ast.If,)):
            self.eval(stmt.test)
            before = {k: v.copy() for k, v in self.env.items()}
            self._block(stmt.body)
            after_body = self.env
            self.env = before
            self._block(stmt.orelse)
            for name, val in after_body.items():
                self.env[name] = self.env.get(name, Val()).merge(val)
        elif isinstance(stmt, (ast.For, ast.While)):
            if isinstance(stmt, ast.For):
                self._assign(stmt.target, self.eval(stmt.iter), stmt.iter)
            else:
                self.eval(stmt.test)
            # Two passes approximate the loop fixpoint (labels are
            # monotone, one extra pass covers loop-carried flows).
            self._block(stmt.body)
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            self._block(stmt.body)
            for handler in stmt.handlers:
                self._block(handler.body)
            self._block(stmt.orelse)
            self._block(stmt.finalbody)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                val = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, val, item.context_expr)
            self._block(stmt.body)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child)

    # ------------------------------------------------------------------
    def _assign(self, target: ast.expr, val: Val, value: ast.expr) -> None:
        spec = self.engine.spec
        if isinstance(target, ast.Name):
            self.env[target.id] = val.copy()
            return
        if isinstance(target, ast.Tuple):
            # Tuple unpack of a splitting source call assigns each
            # element its own label; anything else gets the union.
            split = None
            if isinstance(value, ast.Call):
                cn = _callee_name(value)
                split = spec.source_tuple_calls.get(cn or "")
            for idx, element in enumerate(target.elts):
                if split is not None and idx < len(split):
                    label = split[idx]
                    part = Val(labels={label})
                    part.prov[label] = self.engine.add_prov(
                        ("src", self.fn.qualname, value.lineno, label, idx),
                        f"{self.fn.module.rel}:{value.lineno} element {idx} "
                        f"of {_callee_name(value)}() carries {label}",
                        None,
                    )
                    self._assign(element, part, value)
                else:
                    self._assign(element, val, value)
            return
        if isinstance(target, ast.Attribute):
            dotted = dotted_name(target)
            if dotted is not None:
                self.env[dotted] = val.copy()
            if (
                isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and self.fn.cls is not None
            ):
                self.engine.store_field(
                    self.fn.cls.key,
                    target.attr,
                    val,
                    f"{self.fn.module.rel}:{target.lineno} {self.fn.name}() "
                    f"stores self.{target.attr}",
                )
            return
        if isinstance(target, ast.Subscript):
            receiver = dotted_name(target.value)
            key = target.slice
            if (
                receiver is not None
                and isinstance(key, ast.Constant)
                and isinstance(key.value, str)
            ):
                holder = self.env.setdefault(receiver, Val())
                holder.keys[key.value] = set(val.all_labels())
                for label in holder.keys[key.value]:
                    holder.prov.setdefault(label, val.prov.get(label))
            elif receiver is not None and val.all_labels():
                holder = self.env.setdefault(receiver, Val())
                self.env[receiver] = holder.merge(val)

    # ------------------------------------------------------------------
    def eval(self, node: ast.expr) -> Val:
        spec = self.engine.spec
        if isinstance(node, ast.Constant):
            return Val()
        if isinstance(node, ast.Name):
            val = self.env.get(node.id)
            return val.copy() if val is not None else Val()
        if isinstance(node, ast.Attribute):
            if node.attr in spec.source_attrs:
                label = spec.source_attrs[node.attr]
                prov = self.engine.add_prov(
                    ("src", self.fn.qualname, node.lineno, node.attr),
                    f"{self.fn.module.rel}:{node.lineno} reads "
                    f".{node.attr} ({label})",
                    None,
                )
                return Val(labels={label}, prov={label: prov})
            dotted = dotted_name(node)
            if dotted is not None and dotted in self.env:
                return self.env[dotted].copy()
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and self.fn.cls is not None
            ):
                return self.engine.read_field(self.fn.cls.key, node.attr)
            return self.eval(node.value) if not isinstance(node.value, ast.Name) else Val()
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.JoinedStr):
            out = Val()
            for part in node.values:
                if isinstance(part, ast.FormattedValue):
                    out = out.merge(self.eval(part.value))
            return out
        if isinstance(node, ast.FormattedValue):
            return self.eval(node.value)
        if isinstance(node, (ast.BinOp,)):
            return self.eval(node.left).merge(self.eval(node.right))
        if isinstance(node, ast.BoolOp):
            out = Val()
            for value in node.values:
                out = out.merge(self.eval(value))
            return out
        if isinstance(node, (ast.Compare,)):
            out = self.eval(node.left)
            for comp in node.comparators:
                out = out.merge(self.eval(comp))
            return Val()  # a comparison result carries no name taint
        if isinstance(node, ast.Dict):
            out = Val()
            for key, value in zip(node.keys, node.values):
                vval = self.eval(value)
                if (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                ):
                    out.keys[key.value] = set(vval.all_labels())
                else:
                    if key is not None:
                        out = out.merge(self.eval(key))
                    out.labels |= vval.all_labels()
                for label, prov in vval.prov.items():
                    out.prov.setdefault(label, prov)
            return out
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = Val()
            for element in node.elts:
                out = out.merge(self.eval(element))
            return out
        if isinstance(node, ast.Subscript):
            receiver = dotted_name(node.value)
            base = (
                self.env.get(receiver, Val()).copy()
                if receiver is not None
                else self.eval(node.value)
            )
            if (
                isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, str)
                and node.slice.value in base.keys
            ):
                labels = base.keys[node.slice.value]
                return Val(
                    labels=set(labels),
                    prov={lb: base.prov.get(lb) for lb in labels},
                )
            return Val(labels=base.all_labels(), prov=dict(base.prov))
        if isinstance(node, (ast.Yield, ast.YieldFrom, ast.Await)):
            if node.value is not None:
                return self.eval(node.value)
            return Val()
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return self.eval(node.body).merge(self.eval(node.orelse))
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, ast.Lambda):
            return Val()
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self.eval(node.elt)
        if isinstance(node, ast.DictComp):
            return self.eval(node.key).merge(self.eval(node.value))
        return Val()

    # ------------------------------------------------------------------
    def _call(self, call: ast.Call) -> Val:
        spec = self.engine.spec
        cn = _callee_name(call)
        arg_vals = [self.eval(arg) for arg in call.args]
        kw_vals = {
            kw.arg: self.eval(kw.value) for kw in call.keywords if kw.arg
        }
        for kw in call.keywords:
            if kw.arg is None:
                self.eval(kw.value)

        # Sink check first: the argument as written at this site.
        for sink in spec.sinks:
            if cn != sink.callee:
                continue
            val = self._sink_arg(call, sink, arg_vals, kw_vals)
            if val is None:
                continue
            if sink.keys:
                hit: Set[str] = set()
                for dkey in sink.keys:
                    hit |= val.keys.get(dkey, set())
                # A value with no key map at all (opaque dict) falls
                # back to its overall labels.
                if not val.keys:
                    hit |= val.labels
            else:
                hit = val.all_labels()
            for label in sorted(hit & spec.forbidden):
                self.engine.report(
                    self.fn, call, sink, label,
                    sunk=f"argument {sink.arg} of {sink.callee}()",
                    prov=val.prov.get(label),
                )

        if cn is not None and cn in spec.sanitizers:
            return Val()
        if cn is not None and cn in spec.source_calls:
            label = spec.source_calls[cn]
            prov = self.engine.add_prov(
                ("src", self.fn.qualname, call.lineno, cn),
                f"{self.fn.module.rel}:{call.lineno} result of {cn}() "
                f"carries {label}",
                None,
            )
            return Val(labels={label}, prov={label: prov})
        if cn is not None and cn in spec.source_tuple_calls:
            labels = set(spec.source_tuple_calls[cn])
            val = Val(labels=labels)
            for label in labels:
                val.prov[label] = self.engine.add_prov(
                    ("src", self.fn.qualname, call.lineno, cn, label),
                    f"{self.fn.module.rel}:{call.lineno} result of {cn}() "
                    f"carries {label}",
                    None,
                )
            return val

        callees = self.engine.resolve_callees(call, self.fn)
        result = Val()
        if callees:
            for callee in callees:
                params = callee.params()
                for idx, val in enumerate(arg_vals):
                    # Constructor/method calls drop the receiver slot via
                    # params(); positional args line up directly.
                    if idx < len(params) and (val.labels or val.keys):
                        self.engine.push_param(
                            callee, params[idx], val,
                            f"{self.fn.module.rel}:{call.lineno} "
                            f"{self.fn.name}() passes it to "
                            f"{callee.name}({params[idx]}=...)",
                        )
                for name, val in kw_vals.items():
                    if name in params and (val.labels or val.keys):
                        self.engine.push_param(
                            callee, name, val,
                            f"{self.fn.module.rel}:{call.lineno} "
                            f"{self.fn.name}() passes it to "
                            f"{callee.name}({name}=...)",
                        )
                result = result.merge(self.engine.return_val(callee))
                if callee.name == "__init__" and callee.cls is not None:
                    # Constructing an object whose fields the args taint:
                    # the object itself reads back through read_field.
                    pass
        else:
            # Unknown callee: conservatively propagate the union of the
            # receiver's and the arguments' labels through the result.
            if isinstance(call.func, ast.Attribute):
                result = result.merge(self.eval(call.func.value))
            for val in arg_vals:
                result = result.merge(val)
            for val in kw_vals.values():
                result = result.merge(val)
        return result

    def _sink_arg(
        self,
        call: ast.Call,
        sink: SinkSpec,
        arg_vals: List[Val],
        kw_vals: Dict[str, Val],
    ) -> Optional[Val]:
        if sink.arg < len(arg_vals):
            return arg_vals[sink.arg]
        if sink.kw and sink.kw in kw_vals:
            return kw_vals[sink.kw]
        return None
