"""Reasoned-suppression machinery shared by detlint and flowcheck.

Both analyzers use the same comment grammar, parameterized by the tool
name::

    x = risky()  # <tool>: disable=RULE1,RULE2 -- reason the rule is wrong here

A whole file opts out of a rule with ``# <tool>: disable-file=RULE --
reason`` on any line. A disable comment *without* a reason string never
suppresses anything; the parser records it so the runner can report it
(detlint's DET000 / flowcheck's FC000 convention).

The reason string is mandatory by design: a suppression is a reviewed
claim that the finding is a false positive (or an accepted hazard), and
the claim has to survive ``git blame``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Set, Tuple

__all__ = ["SuppressionTable"]


def _disable_re(tool: str) -> re.Pattern:
    return re.compile(
        rf"#\s*{re.escape(tool)}:\s*disable(?P<file>-file)?\s*=\s*"
        r"(?P<rules>[A-Z0-9,\s]+?)"
        r"(?:\s*--\s*(?P<reason>.+?))?\s*$"
    )


class SuppressionTable:
    """Per-file suppression comments for one tool."""

    def __init__(self, tool: str, lines: List[str]):
        self.tool = tool
        #: line -> (rule ids, reason)
        self.line_disables: Dict[int, Tuple[Set[str], str]] = {}
        #: rule id -> reason, applying to the whole file
        self.file_disables: Dict[str, str] = {}
        #: Lines carrying a disable comment with no reason string.
        self.bad_disables: List[int] = []
        pattern = _disable_re(tool)
        for lineno, text in enumerate(lines, start=1):
            if tool not in text:
                continue
            match = pattern.search(text)
            if match is None:
                continue
            rules = {r.strip() for r in match.group("rules").split(",") if r.strip()}
            reason = (match.group("reason") or "").strip()
            if not reason:
                self.bad_disables.append(lineno)
                continue
            if match.group("file"):
                for rule in rules:
                    self.file_disables[rule] = reason
            else:
                self.line_disables[lineno] = (rules, reason)

    def suppression_for(self, rule: str, line: int) -> Optional[str]:
        """The reason ``rule`` is suppressed at ``line``, or None."""
        if rule in self.file_disables:
            return self.file_disables[rule]
        entry = self.line_disables.get(line)
        if entry and rule in entry[0]:
            return entry[1]
        return None
