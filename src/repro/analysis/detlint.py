"""detlint: an AST linter for determinism hazards (stdlib ``ast`` only).

The kernel's contract — same seed, bit-identical trace — survives only
as long as no code path consults state the simulation does not own.
Each rule below targets one way this codebase could silently break
that contract; the catalog is deliberately tuned to *this* tree rather
than aspiring to generality:

========  ==========================================================
DET001    wall-clock reads (``time.time``, ``datetime.now``, ...)
DET002    global RNG state (``random.*``, ``numpy.random.*``) outside
          the registry module ``sim/rng.py``
DET003    iteration over unordered collections (``set``; also
          ``dict.keys()`` for explicitness) feeding task spawning,
          event scheduling, message fan-out — or materializing an
          ordered container (list/dict) from a set
DET004    ``id()``-based ordering or keying (memory addresses vary
          across runs)
DET005    mutable default arguments on task coroutines (state leaks
          between spawns)
DET006    bare/``BaseException`` excepts wrapping a yield inside a
          coroutine without re-raising (swallows ``Interrupt`` /
          ``Killed`` / ``GeneratorExit`` delivered via ``throw``)
DET007    builtin ``hash()`` (PYTHONHASHSEED-dependent for str/bytes)
DET008    order-sensitive float accumulation (``sum``/``reduce``) in
          the registered reducer modules (``mona/ops.py``,
          ``icet/compositor.py``)
========  ==========================================================

Suppression is per-line and requires a reason::

    t0 = time.time()  # detlint: disable=DET001 -- operator-facing wall time

A whole file can opt out of one rule with ``# detlint: disable-file=
DET00X -- reason`` on any line. A disable comment without a reason
string does not suppress anything (it is reported as DET000).
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.analysis.suppress import SuppressionTable

__all__ = ["Finding", "LintReport", "ModuleInfo", "RULES", "run_lint"]


# ---------------------------------------------------------------------------
# findings and suppression
@dataclass(frozen=True)
class Finding:
    """One rule hit at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    reason: str = ""

    def render(self) -> str:
        tail = f"  [suppressed: {self.reason}]" if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}{tail}"


class ModuleInfo:
    """One parsed module plus its suppression table."""

    def __init__(self, path: Path, rel: str, source: str):
        self.path = path
        self.rel = rel
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=rel)
        self._suppressions = SuppressionTable("detlint", self.lines)

    @property
    def line_disables(self) -> Dict[int, Tuple[Set[str], str]]:
        return self._suppressions.line_disables

    @property
    def file_disables(self) -> Dict[str, str]:
        return self._suppressions.file_disables

    @property
    def bad_disables(self) -> List[int]:
        """Malformed suppressions (no reason): reported as DET000."""
        return self._suppressions.bad_disables

    def suppression_for(self, rule: str, line: int) -> Optional[str]:
        """The reason ``rule`` is suppressed at ``line``, or None."""
        return self._suppressions.suppression_for(rule, line)


# ---------------------------------------------------------------------------
# rule registry
RuleFn = Callable[[ModuleInfo], Iterator[Tuple[ast.AST, str]]]


@dataclass(frozen=True)
class Rule:
    id: str
    slug: str
    summary: str
    fn: RuleFn = field(compare=False)


RULES: List[Rule] = []


def rule(rule_id: str, slug: str, summary: str) -> Callable[[RuleFn], RuleFn]:
    def register(fn: RuleFn) -> RuleFn:
        RULES.append(Rule(rule_id, slug, summary, fn))
        return fn

    return register


# ---------------------------------------------------------------------------
# shared AST helpers
def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def iter_calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def function_defs(tree: ast.AST) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _yields_directly(node: ast.AST) -> Iterator[ast.AST]:
    """Yield/YieldFrom nodes of this scope (not of nested functions)."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(child, (ast.Yield, ast.YieldFrom)):
            yield child
        stack.extend(ast.iter_child_nodes(child))


def is_coroutine_def(fn: ast.FunctionDef) -> bool:
    """A generator function — the kernel's task/coroutine unit."""
    return next(_yields_directly(fn), None) is not None


def imports_of(tree: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom) and node.module:
            names.add(node.module.split(".")[0])
    return names


# ---------------------------------------------------------------------------
# DET001 wall-clock
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "date.today",
    "datetime.date.today",
}


@rule("DET001", "wall-clock", "wall-clock reads bypass the simulated clock")
def check_wall_clock(mod: ModuleInfo) -> Iterator[Tuple[ast.AST, str]]:
    for call in iter_calls(mod.tree):
        name = dotted_name(call.func)
        if name in _WALL_CLOCK:
            yield call, (
                f"wall-clock call {name}() is nondeterministic across runs; "
                "use sim.now (simulated time) or suppress if operator-facing"
            )


# ---------------------------------------------------------------------------
# DET002 global RNG
_RNG_ALLOWED_SUFFIX = ("sim/rng.py",)


@rule("DET002", "global-rng", "global RNG state bypasses the seeded RngRegistry")
def check_global_rng(mod: ModuleInfo) -> Iterator[Tuple[ast.AST, str]]:
    if mod.rel.replace("\\", "/").endswith(_RNG_ALLOWED_SUFFIX):
        return
    has_random = "random" in imports_of(mod.tree)
    for call in iter_calls(mod.tree):
        name = dotted_name(call.func)
        if name is None:
            continue
        parts = name.split(".")
        if has_random and len(parts) == 2 and parts[0] == "random":
            yield call, (
                f"{name}() draws from the process-global random state; "
                "use sim.rng.stream(<name>) so replay stays seeded"
            )
        elif len(parts) >= 3 and parts[0] in ("np", "numpy") and parts[1] == "random":
            # default_rng(seed)/Generator(bitgen) with an explicit seed
            # is a private, deterministic stream — only the no-argument
            # form (seeded from OS entropy) and the module-level global
            # state are hazards.
            if parts[2] in ("default_rng", "Generator") and (call.args or call.keywords):
                continue
            yield call, (
                f"{name}() uses numpy's global (or entropy-seeded) RNG "
                "outside sim/rng.py; seed it explicitly or draw from "
                "sim.rng.stream(<name>)"
            )


# ---------------------------------------------------------------------------
# DET003 unordered iteration feeding scheduling / ordered output
_SCHEDULING_ATTRS = {
    "spawn",
    "spawn_at",
    "timeout",
    "provider_call",
    "send",
    "post",
    "schedule",
    "enqueue",
    "_schedule_at",
    "_schedule_call",
}


def _setish_names(fn: ast.AST) -> Set[str]:
    """Local names bound to set-typed values inside one function."""
    names: Set[str] = set()

    def setish(expr: ast.AST) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            return expr.func.id in ("set", "frozenset")
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)
        ):
            return setish(expr.left) or setish(expr.right)
        if isinstance(expr, ast.Name):
            return expr.id in names
        return False

    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and setish(node.value):
                names.add(target.id)
        elif isinstance(node, ast.AugAssign):
            # x &= set(...) keeps x set-typed; x stays in `names`.
            continue
    return names


def _is_unordered_iter(expr: ast.AST, setnames: Set[str]) -> Optional[str]:
    """Why ``expr`` iterates in unordered/implicit order, or None."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return "a set literal/comprehension"
    if isinstance(expr, ast.Call):
        if isinstance(expr.func, ast.Name) and expr.func.id in ("set", "frozenset"):
            return f"{expr.func.id}(...)"
        if isinstance(expr.func, ast.Attribute) and expr.func.attr == "keys":
            return ".keys() (make the ordering explicit)"
    if isinstance(expr, ast.Name) and expr.id in setnames:
        return f"set-typed local {expr.id!r}"
    if isinstance(expr, ast.BinOp) and isinstance(
        expr.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)
    ):
        if (
            _is_unordered_iter(expr.left, setnames) is not None
            or _is_unordered_iter(expr.right, setnames) is not None
        ):
            return "a set expression"
    return None


def _contains_scheduling(node: Iterable[ast.AST]) -> bool:
    for stmt in node:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Call):
                func = sub.func
                attr = (
                    func.attr
                    if isinstance(func, ast.Attribute)
                    else func.id if isinstance(func, ast.Name) else None
                )
                if attr in _SCHEDULING_ATTRS:
                    return True
    return False


@rule(
    "DET003",
    "unordered-iter",
    "unordered iteration feeding scheduling or ordered containers",
)
def check_unordered_iteration(mod: ModuleInfo) -> Iterator[Tuple[ast.AST, str]]:
    scopes: List[ast.AST] = [mod.tree, *function_defs(mod.tree)]
    seen: Set[Tuple[int, int]] = set()
    for scope in scopes:
        setnames = _setish_names(scope) if scope is not mod.tree else set()
        for node in ast.walk(scope):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not scope:
                continue  # handled as its own scope
            if isinstance(node, ast.For):
                why = _is_unordered_iter(node.iter, setnames)
                if why and _contains_scheduling(node.body):
                    key = (node.lineno, node.col_offset)
                    if key not in seen:
                        seen.add(key)
                        yield node, (
                            f"loop over {why} spawns/schedules/sends per "
                            "element: hash order becomes schedule order; "
                            "iterate sorted(...) instead"
                        )
            elif isinstance(node, (ast.ListComp, ast.DictComp)):
                for gen in node.generators:
                    why = _is_unordered_iter(gen.iter, setnames)
                    if why is None:
                        continue
                    key = (node.lineno, node.col_offset)
                    if key in seen:
                        continue
                    seen.add(key)
                    kind = "list" if isinstance(node, ast.ListComp) else "dict"
                    yield node, (
                        f"{kind} comprehension over {why} materializes an "
                        "arbitrary (PYTHONHASHSEED-dependent) order; iterate "
                        "sorted(...) instead"
                    )
                    break


# ---------------------------------------------------------------------------
# DET004 id()-based ordering
@rule("DET004", "id-ordering", "id() values are memory addresses, unstable across runs")
def check_id_ordering(mod: ModuleInfo) -> Iterator[Tuple[ast.AST, str]]:
    for call in iter_calls(mod.tree):
        if isinstance(call.func, ast.Name) and call.func.id == "id" and len(call.args) == 1:
            yield call, (
                "id()-based ordering/keying depends on allocation addresses; "
                "key on a stable name or sequence number instead"
            )


# ---------------------------------------------------------------------------
# DET005 mutable defaults in coroutines
def _mutable_default(expr: ast.AST) -> Optional[str]:
    if isinstance(expr, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(expr, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        if expr.func.id in ("list", "dict", "set", "bytearray"):
            return expr.func.id
    return None


@rule("DET005", "mutable-default", "mutable defaults on task coroutines leak between spawns")
def check_mutable_coroutine_defaults(mod: ModuleInfo) -> Iterator[Tuple[ast.AST, str]]:
    for fn in function_defs(mod.tree):
        if not is_coroutine_def(fn):
            continue
        defaults = list(fn.args.defaults) + [
            d for d in fn.args.kw_defaults if d is not None
        ]
        for default in defaults:
            kind = _mutable_default(default)
            if kind is not None:
                yield default, (
                    f"coroutine {fn.name!r} has a mutable {kind} default: "
                    "every spawn shares (and mutates) one instance; "
                    "default to None and allocate inside"
                )


# ---------------------------------------------------------------------------
# DET006 interrupt-swallowing excepts in coroutines
def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
    return False


@rule("DET006", "swallowed-throw", "bare except around a yield swallows kernel throws")
def check_bare_except_around_yield(mod: ModuleInfo) -> Iterator[Tuple[ast.AST, str]]:
    for fn in function_defs(mod.tree):
        if not is_coroutine_def(fn):
            continue
        for node in ast.walk(fn):
            if not isinstance(node, ast.Try):
                continue
            if next(_yields_directly_in_body(node.body), None) is None:
                continue
            for handler in node.handlers:
                too_broad = handler.type is None or (
                    isinstance(handler.type, ast.Name)
                    and handler.type.id == "BaseException"
                )
                if too_broad and not _handler_reraises(handler):
                    what = "bare except" if handler.type is None else "except BaseException"
                    yield handler, (
                        f"{what} wraps a yield point without re-raising: "
                        "Interrupt/Killed/GeneratorExit delivered via "
                        "gen.throw() are silently swallowed; catch specific "
                        "exceptions or re-raise"
                    )


def _yields_directly_in_body(body: List[ast.stmt]) -> Iterator[ast.AST]:
    for stmt in body:
        yield from _yields_directly_stmt(stmt)


def _yields_directly_stmt(stmt: ast.stmt) -> Iterator[ast.AST]:
    stack: List[ast.AST] = [stmt]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            yield node
        stack.extend(ast.iter_child_nodes(node))


# ---------------------------------------------------------------------------
# DET007 builtin hash()
@rule("DET007", "hash-builtin", "hash() is PYTHONHASHSEED-dependent for str/bytes")
def check_builtin_hash(mod: ModuleInfo) -> Iterator[Tuple[ast.AST, str]]:
    for call in iter_calls(mod.tree):
        if isinstance(call.func, ast.Name) and call.func.id == "hash" and call.args:
            yield call, (
                "builtin hash() of str/bytes varies per process "
                "(PYTHONHASHSEED), so set/dict iteration orders built on it "
                "differ across runs; use a stable digest (zlib.crc32, "
                "hashlib) instead"
            )


# ---------------------------------------------------------------------------
# DET008 order-sensitive float accumulation
_ORDER_SENSITIVE_SUFFIX = ("mona/ops.py", "icet/compositor.py")


@rule(
    "DET008",
    "float-accumulation",
    "float accumulation order matters in registered reducer modules",
)
def check_float_accumulation(mod: ModuleInfo) -> Iterator[Tuple[ast.AST, str]]:
    rel = mod.rel.replace("\\", "/")
    if not rel.endswith(_ORDER_SENSITIVE_SUFFIX):
        return
    for call in iter_calls(mod.tree):
        name = dotted_name(call.func)
        if name == "sum" or (name and name.split(".")[-1] == "reduce"):
            yield call, (
                f"{name}() accumulates in argument order inside an "
                "order-sensitive reducer: rank permutations change the "
                "float result; use math.fsum or a fixed reduction tree"
            )


# ---------------------------------------------------------------------------
# runner
@dataclass
class LintReport:
    """All findings over a file set."""

    findings: List[Finding]

    @property
    def unsuppressed(self) -> List[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def ok(self) -> bool:
        return not self.unsuppressed

    def render(self) -> str:
        lines = [f.render() for f in self.findings]
        lines.append(
            f"detlint: {len(self.unsuppressed)} finding(s), "
            f"{len(self.suppressed)} suppressed, "
            f"{len(RULES)} rules"
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "findings": [
                    {
                        "rule": f.rule,
                        "path": f.path,
                        "line": f.line,
                        "col": f.col,
                        "message": f.message,
                        "suppressed": f.suppressed,
                        "reason": f.reason,
                    }
                    for f in self.findings
                ],
                "ok": self.ok,
            },
            indent=2,
            sort_keys=True,
        )


def _python_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def run_lint(
    paths: Iterable[str],
    select: Optional[Iterable[str]] = None,
    root: Optional[str] = None,
) -> LintReport:
    """Lint ``paths`` (files or directories) with all (or ``select``)
    rules; findings matching a suppression comment are kept but marked."""
    selected = set(select) if select else {r.id for r in RULES}
    root_path = Path(root) if root else Path.cwd()
    findings: List[Finding] = []
    for file_path in _python_files(Path(p) for p in paths):
        try:
            rel = str(file_path.resolve().relative_to(root_path.resolve()))
        except ValueError:
            rel = str(file_path)
        rel = rel.replace("\\", "/")
        mod = ModuleInfo(file_path, rel, file_path.read_text())
        for lineno in mod.bad_disables:
            findings.append(
                Finding(
                    rule="DET000",
                    path=rel,
                    line=lineno,
                    col=0,
                    message=(
                        "detlint suppression without a reason string "
                        "(use `# detlint: disable=DETxxx -- why`)"
                    ),
                )
            )
        for rule_obj in RULES:
            if rule_obj.id not in selected:
                continue
            for node, message in rule_obj.fn(mod):
                line = getattr(node, "lineno", 1)
                col = getattr(node, "col_offset", 0)
                reason = mod.suppression_for(rule_obj.id, line)
                findings.append(
                    Finding(
                        rule=rule_obj.id,
                        path=rel,
                        line=line,
                        col=col,
                        message=message,
                        suppressed=reason is not None,
                        reason=reason or "",
                    )
                )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return LintReport(findings)
