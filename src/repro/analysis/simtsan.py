"""SimTSan: a yield-point race detector for cooperative tasks.

Under the DES kernel only one task runs at a time, so classic data
races cannot happen — the failure mode is the *atomicity violation*: a
task reads shared state, yields (an RPC, a timeout, an RDMA pull), and
another task mutates that state before the reader resumes. The reader
then acts on a snapshot the rest of the system no longer agrees with —
exactly how elastic staging services corrupt frozen views and 2PC
bookkeeping.

Semantics (DESIGN §9). Every kernel resume bumps the resumed task's
logical clock (:attr:`repro.sim.Task.clock`); two accesses with equal
clock values happened inside one uninterrupted run slice. For a
:class:`Shared` container the detector records, per key and per task,
the clock at the task's most recent read. A write by task *W* flags a
race against every other live task *T* whose recorded read clock still
equals ``T.clock`` — *T* read the value, has not been resumed since,
and is therefore suspended at a yield point while *W* rewrites the
state under it. Records from earlier slices are pruned, not flagged:
once a task resumes, what it does with previously-read values is
beyond a dynamic tool's visibility (and re-validation patterns like
the provider's activation epochs exist precisely for that case).

Everything is opt-in and observer-effect-free: ``Shared`` containers
behave exactly like ``dict`` until a :class:`SimTSan` is installed on
their simulation, and installing one changes no scheduling decision —
the same seed still produces the same trace, plus diagnostics. Race
diagnostics go three ways: a :class:`RaceReport` on
:attr:`SimTSan.races`, a ``simtsan.race`` zero-length span with
span-linked tags (object label, key, reader/writer tasks and source
sites) in the telemetry tracer, and a ``simtsan.races`` counter.

Meta-level observers (the chaos :class:`InvariantMonitor`) read
protocol state without being part of the protocol; they wrap their
inspection in :func:`untracked` so auditing a dict is never mistaken
for racing on it.
"""

from __future__ import annotations

import os
import sys
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

__all__ = ["RaceReport", "Shared", "SimTSan", "tracked", "untracked"]

#: Sentinel key for container-level reads (iteration, len, truthiness):
#: they observe every key at once, so any later write conflicts.
_WHOLE = "<container>"

#: Per-key read tables are pruned when they exceed this many tasks
#: (short-lived RPC handler tasks would otherwise accumulate forever).
_PRUNE_AT = 32


def _site() -> str:
    """``pkg/module.py:lineno`` of the first frame outside this file."""
    own = __file__
    frame = sys._getframe(1)
    while frame is not None and frame.f_code.co_filename == own:
        frame = frame.f_back
    if frame is None:  # pragma: no cover - defensive
        return "<unknown>"
    path = frame.f_code.co_filename
    parts = path.replace(os.sep, "/").rsplit("/", 2)
    return f"{'/'.join(parts[-2:])}:{frame.f_lineno}"


@dataclass(frozen=True)
class RaceReport:
    """One read-across-yield / concurrent-write interleaving."""

    label: str
    key: str
    reader: str
    reader_site: str
    read_time: float
    writer: str
    writer_site: str
    write_time: float

    def describe(self) -> str:
        return (
            f"race on {self.label}[{self.key}]: {self.reader} read at "
            f"t={self.read_time:.6g} ({self.reader_site}), suspended at a "
            f"yield point, then {self.writer} wrote at "
            f"t={self.write_time:.6g} ({self.writer_site})"
        )


class SimTSan:
    """The detector: one per simulation, installed explicitly.

    Usage::

        tsan = SimTSan(sim).install()
        table = tracked(sim, {"owner": None}, label="demo.table")
        ...
        sim.run()
        tsan.assert_clean()
    """

    def __init__(self, sim: Any, trace: bool = True):
        self.sim = sim
        #: Flagged interleavings, in detection order.
        self.races: List[RaceReport] = []
        #: Emit span-linked diagnostics through ``sim.trace``.
        self.trace = trace
        #: Optional access observer ``fn(label, key, is_write)``: the
        #: model checker (repro.analysis.mcheck) collects per-step
        #: Shared-container footprints through it, which become the
        #: independence relation its schedule pruning is keyed on.
        #: Suspended accesses (:func:`untracked`) stay invisible.
        self.on_access: Optional[Any] = None
        self._suspended = 0

    # ------------------------------------------------------------------
    def install(self) -> "SimTSan":
        if getattr(self.sim, "_simtsan", None) is not None:
            raise RuntimeError("a SimTSan detector is already installed")
        self.sim._simtsan = self
        return self

    def uninstall(self) -> None:
        if self.sim._simtsan is self:
            self.sim._simtsan = None

    @property
    def active(self) -> bool:
        return self._suspended == 0

    # ------------------------------------------------------------------
    # access recording (called by Shared)
    def on_read(self, shared: "Shared", key: Any) -> None:
        if self._suspended:
            return
        hook = self.on_access
        if hook is not None:
            hook(shared.label, key, False)
        task = self.sim.current_task
        if task is None:
            # Root-context code (setup, run_until predicates) never
            # yields mid-read; nothing to span a yield point with.
            return
        table = shared._tsan_reads.get(key)
        if table is None:
            table = shared._tsan_reads[key] = {}
        elif len(table) > _PRUNE_AT:
            for stale in [
                t for t, (clk, _, _) in table.items()
                if t.finished or t.clock != clk
            ]:
                del table[stale]
        table[task] = (task.clock, self.sim.now, _site())

    def on_write(self, shared: "Shared", key: Any) -> None:
        if self._suspended:
            return
        hook = self.on_access
        if hook is not None:
            hook(shared.label, key, True)
        writer = self.sim.current_task
        write_site = None
        keys = (key, _WHOLE) if key is not _WHOLE else tuple(shared._tsan_reads)
        for conflict_key in keys:
            table = shared._tsan_reads.get(conflict_key)
            if not table:
                continue
            drop = []
            for task, (clock, read_time, read_site) in table.items():
                if task is writer:
                    continue
                drop.append(task)
                if task.finished or task.clock != clock:
                    continue  # resumed since the read: out of scope
                if write_site is None:
                    write_site = _site()
                self._report(
                    shared,
                    conflict_key,
                    reader=task.name,
                    reader_site=read_site,
                    read_time=read_time,
                    writer=writer.name if writer is not None else "<main>",
                    writer_site=write_site,
                )
            for task in drop:
                del table[task]

    # ------------------------------------------------------------------
    def _report(
        self,
        shared: "Shared",
        key: Any,
        reader: str,
        reader_site: str,
        read_time: float,
        writer: str,
        writer_site: str,
    ) -> None:
        report = RaceReport(
            label=shared.label,
            key=repr(key) if key is not _WHOLE else _WHOLE,
            reader=reader,
            reader_site=reader_site,
            read_time=read_time,
            writer=writer,
            writer_site=writer_site,
            write_time=self.sim.now,
        )
        self.races.append(report)
        if self.trace:
            trace = self.sim.trace
            span = trace.begin_async(
                "simtsan.race",
                label=report.label,
                key=report.key,
                reader=report.reader,
                reader_site=report.reader_site,
                read_time=report.read_time,
                writer=report.writer,
                writer_site=report.writer_site,
            )
            trace.end(span)
            trace.add("simtsan.races")

    # ------------------------------------------------------------------
    def assert_clean(self) -> None:
        """Raise ``AssertionError`` listing every flagged race."""
        if self.races:
            raise AssertionError(
                "SimTSan flagged yield-point races:\n"
                + "\n".join(r.describe() for r in self.races)
            )


@contextmanager
def untracked(sim: Any) -> Iterator[None]:
    """Suspend access recording (meta-level observers, invariant
    checkers): reads/writes inside the block are invisible to SimTSan."""
    detector: Optional[SimTSan] = getattr(sim, "_simtsan", None)
    if detector is None:
        yield
        return
    detector._suspended += 1
    try:
        yield
    finally:
        detector._suspended -= 1


class Shared(dict):
    """A dict whose accesses SimTSan can observe.

    With no detector installed (or ``sim=None``) every operation is a
    plain dict operation plus one attribute check — cheap enough to
    leave adopted permanently on the SSG membership view, the
    provider's pipeline table, and the 2PC activation/prepared state.
    """

    __slots__ = ("_sim", "label", "_tsan_reads")

    def __init__(
        self,
        data: Optional[Mapping] = None,
        *,
        sim: Any = None,
        label: str = "shared",
    ):
        super().__init__(data if data is not None else {})
        self._sim = sim
        self.label = label
        #: key -> {task: (task clock, sim time, source site)}
        self._tsan_reads: Dict[Any, Dict[Any, Tuple[int, float, str]]] = {}

    def _detector(self) -> Optional[SimTSan]:
        sim = self._sim
        return sim._simtsan if sim is not None else None

    # ------------------------------------------------------------------
    # reads
    def __getitem__(self, key):
        det = self._detector()
        if det is not None:
            det.on_read(self, key)
        return super().__getitem__(key)

    def get(self, key, default=None):
        det = self._detector()
        if det is not None:
            det.on_read(self, key)
        return super().get(key, default)

    def __contains__(self, key):
        det = self._detector()
        if det is not None:
            det.on_read(self, key)
        return super().__contains__(key)

    def __iter__(self):
        det = self._detector()
        if det is not None:
            det.on_read(self, _WHOLE)
        return super().__iter__()

    def __len__(self):
        det = self._detector()
        if det is not None:
            det.on_read(self, _WHOLE)
        return super().__len__()

    def keys(self):
        det = self._detector()
        if det is not None:
            det.on_read(self, _WHOLE)
        return super().keys()

    def values(self):
        det = self._detector()
        if det is not None:
            det.on_read(self, _WHOLE)
        return super().values()

    def items(self):
        det = self._detector()
        if det is not None:
            det.on_read(self, _WHOLE)
        return super().items()

    # ------------------------------------------------------------------
    # writes
    def __setitem__(self, key, value):
        det = self._detector()
        if det is not None:
            det.on_write(self, key)
        super().__setitem__(key, value)

    def __delitem__(self, key):
        det = self._detector()
        if det is not None:
            det.on_write(self, key)
        super().__delitem__(key)

    def pop(self, key, *default):
        det = self._detector()
        if det is not None:
            det.on_write(self, key)
        return super().pop(key, *default)

    def setdefault(self, key, default=None):
        det = self._detector()
        if det is not None:
            # A plain read when present, a write when absent.
            if super().__contains__(key):
                det.on_read(self, key)
            else:
                det.on_write(self, key)
        return super().setdefault(key, default)

    def update(self, *args, **kwargs):
        det = self._detector()
        if det is not None:
            det.on_write(self, _WHOLE)
        super().update(*args, **kwargs)

    def clear(self):
        det = self._detector()
        if det is not None:
            det.on_write(self, _WHOLE)
        super().clear()

    def popitem(self):
        det = self._detector()
        if det is not None:
            det.on_write(self, _WHOLE)
        return super().popitem()


def tracked(sim: Any, data: Optional[Mapping] = None, label: str = "shared") -> Shared:
    """Wrap ``data`` (a mapping) for SimTSan observation."""
    if data is not None and not isinstance(data, Mapping):
        raise TypeError(
            f"tracked() supports mappings, not {type(data).__name__}"
        )
    return Shared(data, sim=sim, label=label)
