"""Schedule-perturbation fuzzer: determinism under adversarial tie-breaks.

The kernel resolves same-timestamp events FIFO (a monotonic sequence
number breaks ties). That makes every run reproducible — but it also
means the test suite only ever exercises *one* of the many schedules
the protocol must tolerate: real Mercury/Argobots interleavings do not
arrive in spawn order. The fuzzer explores that space while staying
seeded:

1. ``Simulation(perturb_seed=k)`` passes each tie-break sequence number
   through a splitmix64 bijection salted with ``k`` — a deterministic
   permutation of same-timestamp event order, different for every
   ``k``, identical for the same ``k``.
2. A fuzz scenario runs the *unmodified* stack under
   :class:`repro.sim.perturbed_ties` and reduces the outcome to two
   digests:

   - the **schedule digest** (``sim.trace.digest()``) — expected to
     *differ* across perturbations (evidence the knob actually moved
     the schedule), and
   - the **invariant digest** — a canonical hash of what the run
     *guarantees* (invariant-monitor violations, per-iteration view
     sizes, final membership), expected to be *identical* across
     perturbations.

Any perturbation seed that changes the invariant digest, or produces a
violation, is a reproducible counterexample: re-run with the same
``(scenario seed, fuzz seed)`` pair and the exact failing schedule
replays.

CLI: ``python -m repro.analysis fuzz --scenario 2pc_activation -n 5``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.sim import perturbed_ties
from repro.sim.trace import canonical_tags

__all__ = [
    "FUZZ_SCENARIOS",
    "FuzzOutcome",
    "FuzzReport",
    "fuzz_scenario",
    "outcome_schedule",
    "run_fuzz",
    "run_fuzz_one",
]


def invariant_digest(payload: Dict[str, Any]) -> str:
    """Canonical hash of the run's observable guarantees.

    Canonicalization is *strict* — the same policy as the tracer's
    schedule digest (:func:`repro.sim.trace.canonical_tags`): JSON
    primitives, lists/tuples/dicts thereof, numpy scalars, and
    Address-like objects (rendered via ``str``). Anything else raises
    ``TypeError`` instead of silently degrading to ``str(value)`` —
    default reprs carry memory addresses, which would make the "same
    guarantees" digest differ between two identical runs (or, worse,
    collide two genuinely different outcomes that happen to repr alike).
    """
    blob = json.dumps(
        canonical_tags(payload), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass(frozen=True)
class FuzzOutcome:
    """One run of one scenario under one perturbation."""

    scenario: str
    seed: int
    fuzz_seed: Optional[int]  # None = baseline FIFO schedule
    schedule_digest: str
    invariant_digest: str
    violations: Tuple[str, ...]
    payload: Dict[str, Any] = field(compare=False, default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class FuzzReport:
    """A baseline plus N perturbed runs of one scenario."""

    scenario: str
    seed: int
    baseline: FuzzOutcome
    outcomes: List[FuzzOutcome]

    @property
    def divergences(self) -> List[FuzzOutcome]:
        """Perturbed runs whose guarantees differ from the baseline's."""
        return [
            o
            for o in self.outcomes
            if o.violations or o.invariant_digest != self.baseline.invariant_digest
        ]

    @property
    def perturbed_schedules(self) -> int:
        """How many perturbations actually produced a distinct schedule
        (if this is 0 the fuzzer exercised nothing)."""
        return len(
            {o.schedule_digest for o in self.outcomes}
            - {self.baseline.schedule_digest}
        )

    @property
    def ok(self) -> bool:
        return not self.baseline.violations and not self.divergences

    def render(self) -> str:
        lines = [
            f"fuzz {self.scenario} seed={self.seed}: "
            f"{len(self.outcomes)} perturbed run(s), "
            f"{self.perturbed_schedules} distinct schedule(s), "
            f"{len(self.divergences)} divergence(s)"
        ]
        for outcome in self.divergences:
            lines.append(
                f"  DIVERGED fuzz_seed={outcome.fuzz_seed}: "
                f"invariant {outcome.invariant_digest[:12]} != "
                f"baseline {self.baseline.invariant_digest[:12]}"
            )
            for violation in outcome.violations:
                lines.append(f"    violation: {violation}")
        if self.ok:
            lines.append(
                f"  all invariant digests == {self.baseline.invariant_digest[:12]}"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# scenario registry
#: name -> callable(seed) -> (schedule_digest, invariant_payload, violations)
FUZZ_SCENARIOS: Dict[str, Callable[[int], Tuple[str, Dict[str, Any], List[str]]]] = {}


def fuzz_scenario(fn):
    FUZZ_SCENARIOS[fn.__name__.replace("_fuzz_", "", 1)] = fn
    return fn


@fuzz_scenario
def _fuzz_2pc_activation(seed: int) -> Tuple[str, Dict[str, Any], List[str]]:
    """Full stack, three 2PC-activated iterations, invariant monitor on.

    The guarantee under test: no matter how same-timestamp RPC
    deliveries interleave, every activate commits the same agreed view,
    blocks stay singly owned, and membership reconverges.
    """
    from repro.chaos.scenarios import _finish, _workload, build_stack
    from repro.testing import drive

    ctx = build_stack(seed)
    view_sizes = drive(ctx.sim, _workload(ctx, iterations=3), max_time=600)
    result = _finish(ctx, {"view_sizes": view_sizes})
    payload = {
        "view_sizes": view_sizes,
        "final_members": sorted(str(a) for a in ctx.deployment.addresses()),
        "violations": sorted(result.violations),
    }
    return result.digest, payload, list(result.violations)


@fuzz_scenario
def _fuzz_swim_convergence(seed: int) -> Tuple[str, Dict[str, Any], List[str]]:
    """Five SWIM agents converge, one leaves gracefully, the rest
    reconverge: final membership must not depend on gossip tie-breaks."""
    from repro.ssg.agent import converged
    from repro.sim import Simulation
    from repro.testing import build_ssg_group, drive, run_until

    sim = Simulation(seed=seed)
    _fabric, _gf, agents = build_ssg_group(sim, 5)
    violations: List[str] = []
    try:
        run_until(sim, lambda: converged(agents), max_time=120)
    except TimeoutError:
        violations.append("initial convergence timed out")
    drive(sim, agents[-1].leave(), max_time=60)
    try:
        run_until(sim, lambda: converged(agents), max_time=120)
    except TimeoutError:
        violations.append("post-leave convergence timed out")
    sim.run(until=sim.now + 5.0)
    members = sorted(str(a) for a in agents[0].members())
    payload = {
        "members": members,
        "n_members": len(members),
        "converged": converged(agents),
        "violations": sorted(violations),
    }
    if not converged(agents):
        violations.append(f"group not converged at t={sim.now:.2f}")
    return sim.trace.digest(), payload, violations


# ---------------------------------------------------------------------------
# harness
def run_fuzz_one(
    scenario: str, seed: int = 0, fuzz_seed: Optional[int] = None
) -> FuzzOutcome:
    """One run of ``scenario`` under perturbation ``fuzz_seed`` (None =
    the unperturbed FIFO baseline)."""
    fn = FUZZ_SCENARIOS[scenario]
    if fuzz_seed is None:
        schedule, payload, violations = fn(seed)
    else:
        with perturbed_ties(fuzz_seed):
            schedule, payload, violations = fn(seed)
    return FuzzOutcome(
        scenario=scenario,
        seed=seed,
        fuzz_seed=fuzz_seed,
        schedule_digest=schedule,
        invariant_digest=invariant_digest(payload),
        violations=tuple(violations),
        payload=payload,
    )


def run_fuzz(
    scenario: str,
    seed: int = 0,
    fuzz_seeds: Optional[List[int]] = None,
    n: int = 5,
) -> FuzzReport:
    """Baseline run plus one perturbed run per fuzz seed (default
    ``range(n)``), diffing invariant digests against the baseline."""
    if scenario not in FUZZ_SCENARIOS:
        raise KeyError(
            f"unknown fuzz scenario {scenario!r}; have {sorted(FUZZ_SCENARIOS)}"
        )
    seeds = list(fuzz_seeds) if fuzz_seeds is not None else list(range(n))
    baseline = run_fuzz_one(scenario, seed, None)
    outcomes = [run_fuzz_one(scenario, seed, fs) for fs in seeds]
    return FuzzReport(scenario=scenario, seed=seed, baseline=baseline, outcomes=outcomes)


def outcome_schedule(outcome: FuzzOutcome) -> Any:
    """A divergent fuzz outcome as a replayable ``.sched`` counterexample.

    The same format the model checker writes (``repro-sched-v1``): the
    perturbation seed pins the tie-break permutation, the violation and
    invariant digests pin the failure identity, and ``python -m
    repro.analysis replay <file>`` re-executes and compares both.
    """
    from repro.analysis.mcheck.sched import Schedule, violation_digest

    return Schedule(
        tool="fuzz",
        scenario=outcome.scenario,
        seed=outcome.seed,
        fuzz_seed=outcome.fuzz_seed,
        violation_digest=violation_digest(
            outcome.scenario, outcome.seed, outcome.violations
        ),
        violations=tuple(outcome.violations),
        invariant_digest=outcome.invariant_digest,
    )
