"""CLI for the analysis toolchain.

::

    python -m repro.analysis lint [paths...] [--json] [--select DET001,DET003]
    python -m repro.analysis check [paths...] [--select FC001,FC010] [--show-suppressed]
    python -m repro.analysis check --changed [REF]
    python -m repro.analysis report [paths...] [--json | --sarif]
    python -m repro.analysis fuzz [--scenario NAME] [--seed N] [-n N | --fuzz-seeds 0,1,2] [--json] [--repro-dir DIR]
    python -m repro.analysis mcheck [--scenario NAME] [--seed N] [--max-schedules N] [--max-flips N] [--out DIR] [--json]
    python -m repro.analysis replay FILE [FILE...]

``lint`` (detlint) and ``check`` (flowcheck) exit 1 if any unsuppressed
finding remains; ``check --changed REF`` restricts the *reported* file
set to the callgraph closure of the git diff against REF (default HEAD)
while still analyzing the whole tree; ``report`` merges both into one
document — SARIF-lite JSON by default, real SARIF 2.1.0 with
``--sarif`` — and exits 1 under the same condition; ``fuzz`` exits 1 if
any perturbed schedule produces an invariant violation or an invariant
digest differing from the unperturbed baseline, and with ``--repro-dir``
writes each divergence as a replayable ``.sched`` file; ``mcheck``
systematically explores same-timestamp interleavings of a scenario's
racy window and exits 1 if any explored schedule violates an invariant
(the minimized counterexample is written to ``--out``); ``replay``
re-executes ``.sched`` counterexamples from either tool and exits 1
unless every one reproduces its recorded failure identity.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.detlint import RULES, run_lint


def _default_paths(args: argparse.Namespace) -> list:
    return args.paths or [str(Path(__file__).resolve().parents[2])]  # src/


def _cmd_lint(args: argparse.Namespace) -> int:
    select = args.select.split(",") if args.select else None
    report = run_lint(_default_paths(args), select=select, root=args.root)
    if args.json:
        print(report.to_json())
    else:
        print(report.render())
    return 0 if report.ok else 1


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.analysis.flowcheck import run_check

    select = args.select.split(",") if args.select else None
    if args.changed is not None:
        from repro.analysis.incremental import run_changed

        try:
            result = run_changed(ref=args.changed, select=select)
        except RuntimeError as exc:
            print(f"flowcheck --changed: {exc}", file=sys.stderr)
            return 2
        print(result.render(show_suppressed=args.show_suppressed))
        return 0 if result.ok else 1
    report = run_check(_default_paths(args), select=select, root=args.root)
    print(report.render(show_suppressed=args.show_suppressed))
    return 0 if report.ok else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import run_report

    report = run_report(_default_paths(args), root=args.root)
    print(report.to_sarif() if args.sarif else report.to_json())
    return 0 if report.ok else 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.analysis.fuzz import FUZZ_SCENARIOS, outcome_schedule, run_fuzz

    if args.list:
        for name in sorted(FUZZ_SCENARIOS):
            print(name)
        return 0
    fuzz_seeds = (
        [int(s) for s in args.fuzz_seeds.split(",")] if args.fuzz_seeds else None
    )
    exit_code = 0
    for scenario in args.scenario or sorted(FUZZ_SCENARIOS):
        report = run_fuzz(scenario, seed=args.seed, fuzz_seeds=fuzz_seeds, n=args.n)
        if args.repro_dir and not report.ok:
            out = Path(args.repro_dir)
            out.mkdir(parents=True, exist_ok=True)
            for outcome in report.divergences:
                path = out / (
                    f"fuzz-{report.scenario}-s{report.seed}"
                    f"-f{outcome.fuzz_seed}.sched"
                )
                outcome_schedule(outcome).save(str(path))
                print(f"  repro written: {path}", file=sys.stderr)
        if args.json:
            print(
                json.dumps(
                    {
                        "scenario": report.scenario,
                        "seed": report.seed,
                        "ok": report.ok,
                        "perturbed_schedules": report.perturbed_schedules,
                        "baseline_invariant_digest": report.baseline.invariant_digest,
                        "outcomes": [
                            {
                                "fuzz_seed": o.fuzz_seed,
                                "schedule_digest": o.schedule_digest,
                                "invariant_digest": o.invariant_digest,
                                "violations": list(o.violations),
                            }
                            for o in report.outcomes
                        ],
                    },
                    indent=2,
                    sort_keys=True,
                )
            )
        else:
            print(report.render())
        if not report.ok:
            exit_code = 1
    return exit_code


def _cmd_mcheck(args: argparse.Namespace) -> int:
    from repro.analysis.mcheck import explore, scenario_names

    if args.list:
        for name in scenario_names():
            print(name)
        return 0
    log = (lambda msg: print(f"  {msg}", file=sys.stderr)) if args.verbose else None
    exit_code = 0
    for scenario in args.scenario or scenario_names():
        report = explore(
            scenario,
            seed=args.seed,
            max_schedules=args.max_schedules,
            max_flips=args.max_flips,
            prune=not args.no_prune,
            do_shrink=not args.no_shrink,
            log=log,
        )
        if args.json:
            print(json.dumps(report.to_json(), indent=2, sort_keys=True))
        else:
            print(report.render())
        if not report.ok:
            exit_code = 1
            schedule = report.schedule()
            if args.out and schedule is not None:
                out = Path(args.out)
                out.mkdir(parents=True, exist_ok=True)
                path = out / f"mcheck-{scenario}-s{args.seed}.sched"
                schedule.save(str(path))
                print(f"  counterexample written: {path}", file=sys.stderr)
    return exit_code


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.analysis.mcheck import Schedule, replay

    exit_code = 0
    for path in args.files:
        try:
            schedule = Schedule.load(path)
        except (OSError, ValueError, KeyError) as exc:
            print(f"replay: {path}: {exc}", file=sys.stderr)
            return 2
        result = replay(schedule)
        if args.json:
            print(
                json.dumps(
                    {
                        "file": path,
                        "tool": schedule.tool,
                        "scenario": schedule.scenario,
                        "matches": result.matches,
                        "diverged": result.diverged,
                        "violations": list(result.violations),
                        "violation_digest": result.violation_digest,
                    },
                    indent=2,
                    sort_keys=True,
                )
            )
        else:
            print(result.render())
        if not result.matches:
            exit_code = 1
    return exit_code


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="determinism analysis toolchain (DESIGN §9)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser("lint", help="run the detlint AST rules")
    lint.add_argument("paths", nargs="*", help="files/directories (default: src tree)")
    lint.add_argument("--json", action="store_true", help="machine-readable output")
    lint.add_argument(
        "--select", help="comma-separated rule ids (default: all %d)" % len(RULES)
    )
    lint.add_argument("--root", help="path findings are reported relative to")
    lint.set_defaults(fn=_cmd_lint)

    check = sub.add_parser("check", help="run the flowcheck dataflow passes")
    check.add_argument("paths", nargs="*", help="files/directories (default: src tree)")
    check.add_argument("--select", help="comma-separated rule ids (FC001..FC010)")
    check.add_argument("--root", help="path findings are reported relative to")
    check.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        metavar="REF",
        help="report only the callgraph closure of the git diff against REF"
        " (default HEAD); the whole tree is still analyzed for soundness",
    )
    check.add_argument(
        "--show-suppressed",
        action="store_true",
        help="include suppressed findings (with reasons) in the output",
    )
    check.set_defaults(fn=_cmd_check)

    report = sub.add_parser(
        "report", help="merged detlint+flowcheck SARIF-lite JSON report"
    )
    report.add_argument(
        "paths", nargs="*", help="files/directories (default: src tree)"
    )
    report.add_argument("--root", help="path findings are reported relative to")
    report.add_argument(
        "--json", action="store_true", help="SARIF-lite JSON (the default)"
    )
    report.add_argument(
        "--sarif",
        action="store_true",
        help="emit SARIF 2.1.0 (for github code-scanning upload)",
    )
    report.set_defaults(fn=_cmd_report)

    fuzz = sub.add_parser("fuzz", help="run the schedule-perturbation fuzzer")
    fuzz.add_argument(
        "--scenario",
        action="append",
        help="fuzz scenario name (repeatable; default: all). See --list.",
    )
    fuzz.add_argument("--seed", type=int, default=0, help="scenario seed")
    fuzz.add_argument("-n", type=int, default=5, help="number of fuzz seeds (0..n-1)")
    fuzz.add_argument("--fuzz-seeds", help="explicit comma-separated fuzz seeds")
    fuzz.add_argument("--json", action="store_true", help="machine-readable output")
    fuzz.add_argument("--list", action="store_true", help="list fuzz scenarios")
    fuzz.add_argument(
        "--repro-dir",
        metavar="DIR",
        help="write each divergence as a replayable .sched file under DIR",
    )
    fuzz.set_defaults(fn=_cmd_fuzz)

    mcheck = sub.add_parser(
        "mcheck", help="systematically explore schedule interleavings (Colzacheck)"
    )
    mcheck.add_argument(
        "--scenario",
        action="append",
        help="mcheck scenario name (repeatable; default: all). See --list.",
    )
    mcheck.add_argument("--seed", type=int, default=0, help="scenario seed")
    mcheck.add_argument(
        "--max-schedules", type=int, default=64, help="execution budget (default 64)"
    )
    mcheck.add_argument(
        "--max-flips",
        type=int,
        default=3,
        help="preemption bound: max non-FIFO choices per schedule (default 3)",
    )
    mcheck.add_argument(
        "--no-prune",
        action="store_true",
        help="disable DPOR equivalence pruning (explore every sibling)",
    )
    mcheck.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip counterexample minimization",
    )
    mcheck.add_argument(
        "--out",
        metavar="DIR",
        help="write minimized counterexamples as .sched files under DIR",
    )
    mcheck.add_argument("--json", action="store_true", help="machine-readable output")
    mcheck.add_argument(
        "--verbose", action="store_true", help="log every executed schedule"
    )
    mcheck.add_argument("--list", action="store_true", help="list mcheck scenarios")
    mcheck.set_defaults(fn=_cmd_mcheck)

    rep = sub.add_parser(
        "replay", help="re-execute .sched counterexamples (mcheck or fuzz)"
    )
    rep.add_argument("files", nargs="+", help=".sched files to replay")
    rep.add_argument("--json", action="store_true", help="machine-readable output")
    rep.set_defaults(fn=_cmd_replay)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
