"""The ADIOS2 front door: Adios -> IO -> Variables/Engines."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.adios.comm import AdiosComm

__all__ = ["Adios", "IO", "Variable"]


@dataclass(frozen=True)
class Variable:
    """A global 1-D array variable (shape/start/count decomposition)."""

    name: str
    shape: int  # global element count
    dtype: str = "float64"

    @property
    def itemsize(self) -> int:
        return np.dtype(self.dtype).itemsize


class IO:
    """An ADIOS2 IO object: variable definitions + engine factory."""

    def __init__(self, adios: "Adios", name: str):
        self.adios = adios
        self.name = name
        self.engine_type = "SST"
        self.variables: Dict[str, Variable] = {}

    def set_engine(self, engine_type: str) -> None:
        if engine_type != "SST":
            raise ValueError(f"only the SST engine is implemented, not {engine_type!r}")
        self.engine_type = engine_type

    def define_variable(self, name: str, shape: int, dtype: str = "float64") -> Variable:
        if name in self.variables:
            raise ValueError(f"variable {name!r} already defined")
        if shape < 1:
            raise ValueError("shape must be >= 1")
        var = Variable(name, int(shape), dtype)
        self.variables[name] = var
        return var

    def inquire_variable(self, name: str) -> Optional[Variable]:
        return self.variables.get(name)

    def open(self, stream_name: str, mode: str, comm: AdiosComm, margo):
        """Open an SST engine ('w' for the producer, 'r' for consumers)."""
        from repro.adios.sst import SSTReader, SSTWriter

        registry = self.adios.registry
        if mode == "w":
            return SSTWriter(self, stream_name, comm, margo, registry)
        if mode == "r":
            return SSTReader(self, stream_name, comm, margo, registry)
        raise ValueError(f"mode must be 'w' or 'r', got {mode!r}")


class Adios:
    """Top-level ADIOS object; owns the stream rendezvous registry."""

    def __init__(self, registry=None):
        from repro.adios.sst import StreamRegistry

        self.registry = registry if registry is not None else StreamRegistry()
        self._ios: Dict[str, IO] = {}

    def declare_io(self, name: str) -> IO:
        if name in self._ios:
            raise ValueError(f"IO {name!r} already declared")
        io = IO(self, name)
        self._ios[name] = io
        return io

    def at_io(self, name: str) -> Optional[IO]:
        return self._ios.get(name)
