"""The SST engine: step-streamed global arrays with RDMA redistribution.

Writers decompose a global 1-D array into per-rank blocks; at
``end_step`` the blocks are RDMA-exposed and their metadata (offsets +
memory handles) is aggregated over the writer ``Comm`` (the injectable
MoNA/MPI communicator) and published to the :class:`StreamRegistry`
(standing for SST's contact/rendezvous file). Readers wait for steps,
then ``get`` arbitrary slabs: the engine intersects the request with
the writers' blocks and pulls exactly the overlapping byte ranges via
RDMA — N writers to M readers, no global barrier between the sides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

import numpy as np

from repro.adios.comm import AdiosComm
from repro.adios.core import IO, Variable
from repro.na.payload import MemoryHandle, VirtualPayload
from repro.sim.kernel import Event

__all__ = ["SSTReader", "SSTWriter", "StreamRegistry"]

#: (start, count, handle) of one writer-rank block.
Block = Tuple[int, int, MemoryHandle]
StepMetadata = Dict[str, List[Block]]

END_OF_STREAM = "end"
STEP_OK = "ok"


class _Stream:
    def __init__(self) -> None:
        self.steps: Dict[int, StepMetadata] = {}
        self.finished = False
        self._waiters: List[Tuple[int, Event]] = []

    def publish(self, step: int, metadata: StepMetadata) -> None:
        self.steps[step] = metadata
        self._fire(step)

    def finish(self) -> None:
        self.finished = True
        self._fire(None)

    def _fire(self, step: Optional[int]) -> None:
        remaining = []
        for wanted, ev in self._waiters:
            if ev.fired:
                continue
            if self.finished or (step is not None and wanted == step):
                ev.succeed(END_OF_STREAM if wanted not in self.steps else STEP_OK)
            else:
                remaining.append((wanted, ev))
        self._waiters = remaining

    def wait(self, sim, step: int) -> Event:
        ev = Event(sim, name=f"sst-step-{step}")
        if step in self.steps:
            ev.succeed(STEP_OK)
        elif self.finished:
            ev.succeed(END_OF_STREAM)
        else:
            self._waiters.append((step, ev))
        return ev


class StreamRegistry:
    """Rendezvous shared by all engines (SST's contact-file role)."""

    def __init__(self) -> None:
        self._streams: Dict[str, _Stream] = {}

    def stream(self, name: str) -> _Stream:
        stream = self._streams.get(name)
        if stream is None:
            stream = _Stream()
            self._streams[name] = stream
        return stream


class SSTWriter:
    """Producer side of one stream, per writer rank."""

    def __init__(self, io: IO, stream_name: str, comm: AdiosComm, margo, registry: StreamRegistry):
        self.io = io
        self.stream_name = stream_name
        self.comm = comm
        self.margo = margo
        self.registry = registry
        self.current_step = -1
        self._pending: Dict[str, Tuple[int, Any]] = {}
        self._in_step = False
        self._closed = False

    # ------------------------------------------------------------------
    def begin_step(self) -> Generator:
        if self._closed:
            raise RuntimeError("begin_step on a closed writer")
        if self._in_step:
            raise RuntimeError("begin_step without end_step")
        self.current_step += 1
        self._in_step = True
        self._pending.clear()
        yield self.margo.sim.timeout(0)
        return STEP_OK

    def put(self, var: Variable, data: Any, start: int) -> None:
        """Contribute this rank's block [start, start+len) of ``var``."""
        if not self._in_step:
            raise RuntimeError("put outside begin_step/end_step")
        if self.io.inquire_variable(var.name) is None:
            raise KeyError(f"variable {var.name!r} not defined in IO {self.io.name!r}")
        count = data.size if isinstance(data, VirtualPayload) else int(np.asarray(data).size)
        if start < 0 or start + count > var.shape:
            raise ValueError(
                f"block [{start}, {start + count}) outside {var.name!r}'s shape {var.shape}"
            )
        self._pending[var.name] = (start, data)

    def end_step(self) -> Generator:
        """Expose buffers, aggregate metadata, publish the step."""
        if not self._in_step:
            raise RuntimeError("end_step without begin_step")
        self._in_step = False
        local_meta: Dict[str, Block] = {}
        for name, (start, data) in self._pending.items():
            if isinstance(data, VirtualPayload):
                payload: Any = data
                count = data.size
            else:
                payload = np.ascontiguousarray(data)
                count = int(payload.size)
            handle = self.margo.expose(payload)
            local_meta[name] = (start, count, handle)
        # Metadata aggregation over the injected Comm (gather at rank 0).
        gathered = yield from self.comm.gather(local_meta, root=0)
        if self.comm.rank == 0:
            step_meta: StepMetadata = {}
            for rank_meta in gathered:
                for name, block in rank_meta.items():
                    step_meta.setdefault(name, []).append(block)
            for blocks in step_meta.values():
                blocks.sort(key=lambda b: b[0])
            self.registry.stream(self.stream_name).publish(self.current_step, step_meta)
        return None

    def close(self) -> Generator:
        """Flush and mark the stream finished (readers see end-of-stream)."""
        if self._in_step:
            raise RuntimeError("close inside an open step")
        self._closed = True
        yield from self.comm.barrier()
        if self.comm.rank == 0:
            self.registry.stream(self.stream_name).finish()
        return None


class SSTReader:
    """Consumer side of one stream, per reader rank."""

    def __init__(self, io: IO, stream_name: str, comm: AdiosComm, margo, registry: StreamRegistry):
        self.io = io
        self.stream_name = stream_name
        self.comm = comm
        self.margo = margo
        self.registry = registry
        self.current_step = -1
        self._in_step = False

    # ------------------------------------------------------------------
    def begin_step(self) -> Generator:
        """Wait for the next step; returns 'ok' or 'end'."""
        if self._in_step:
            raise RuntimeError("begin_step without end_step")
        wanted = self.current_step + 1
        stream = self.registry.stream(self.stream_name)
        status = yield stream.wait(self.margo.sim, wanted)
        if status == END_OF_STREAM and wanted not in stream.steps:
            return END_OF_STREAM
        self.current_step = wanted
        self._in_step = True
        return STEP_OK

    def get(self, var: Variable, start: int, count: int) -> Generator:
        """Fetch the slab [start, start+count) of ``var`` for this step.

        Pulls exactly the overlapping byte ranges from each contributing
        writer block via RDMA sub-handles.
        """
        if not self._in_step:
            raise RuntimeError("get outside begin_step/end_step")
        if start < 0 or count < 1 or start + count > var.shape:
            raise ValueError(f"slab [{start}, {start + count}) outside shape {var.shape}")
        metadata = self.registry.stream(self.stream_name).steps[self.current_step]
        blocks = metadata.get(var.name)
        if blocks is None:
            raise KeyError(f"variable {var.name!r} absent from step {self.current_step}")
        out = np.empty(count, dtype=var.dtype)
        filled = np.zeros(count, dtype=bool)
        itemsize = var.itemsize
        for b_start, b_count, handle in blocks:
            lo = max(start, b_start)
            hi = min(start + count, b_start + b_count)
            if hi <= lo:
                continue
            sub = handle.slice((lo - b_start) * itemsize, (hi - lo) * itemsize)
            piece = yield self.margo.bulk_pull(sub)
            if isinstance(piece, VirtualPayload):
                out[lo - start : hi - start] = 0  # virtual mode: no data
            else:
                out[lo - start : hi - start] = np.asarray(piece).ravel()[: hi - lo]
            filled[lo - start : hi - start] = True
        if not filled.all():
            raise ValueError(
                f"writers did not cover slab [{start}, {start + count}) of {var.name!r}"
            )
        return out

    def end_step(self) -> Generator:
        if not self._in_step:
            raise RuntimeError("end_step without begin_step")
        self._in_step = False
        yield self.margo.sim.timeout(0)
        return None

    def close(self) -> Generator:
        yield self.margo.sim.timeout(0)
        return None
