"""ADIOS2's abstract ``Comm`` class, with injectable implementations.

The real ADIOS2 has ``adios2::helper::Comm`` with an MPI
implementation; the paper's point is that the abstraction makes a MoNA
implementation a drop-in. Both adapters below delegate to the common
generator protocol our transport communicators share.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.mona.ops import MAX, MIN, ReduceOp, SUM

__all__ = ["AdiosComm", "MPIAdiosComm", "MonaAdiosComm"]


class AdiosComm:
    """The subset of adios2's Comm that SST uses."""

    comm: Any = None

    @property
    def rank(self) -> int:
        return self.comm.rank

    @property
    def size(self) -> int:
        return self.comm.size

    def barrier(self) -> Generator:
        return (yield from self.comm.barrier())

    def gather(self, payload: Any, root: int = 0) -> Generator:
        return (yield from self.comm.gather(payload, root=root))

    def bcast(self, payload: Any, root: int = 0) -> Generator:
        return (yield from self.comm.bcast(payload, root=root))

    def allreduce(self, payload: Any, op: ReduceOp = SUM) -> Generator:
        return (yield from self.comm.allreduce(payload, op=op))

    @property
    def kind(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


class MPIAdiosComm(AdiosComm):
    """Upstream ADIOS2: Comm over MPI."""

    def __init__(self, mpi_comm):
        self.comm = mpi_comm

    @property
    def kind(self) -> str:
        return "mpi"


class MonaAdiosComm(AdiosComm):
    """The paper's §V suggestion: Comm over MoNA (elastic-capable)."""

    def __init__(self, mona_comm):
        self.comm = mona_comm

    @property
    def kind(self) -> str:
        return "mona"
