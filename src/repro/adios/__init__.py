"""ADIOS2-sim: the SST streaming-coupling engine with injectable comms.

§V of the paper observes that ADIOS2's SST engine "depends on a Comm
communicator class [which] is abstract, with a concrete implementation
relying on MPI. Hence by injecting MoNA into ADIOS2, the work presented
in this paper could be adapted to work within the ADIOS2 interface as
well." This package demonstrates exactly that adaptation:

- :class:`AdiosComm` — ADIOS2's abstract ``Comm``, with MoNA- and
  MPI-backed implementations (the injection point);
- :class:`Adios` / :class:`IO` — the familiar declare-io front door;
- :class:`SSTWriter` / :class:`SSTReader` — the SST engine:
  step-oriented publish/subscribe of global arrays, with N-to-M data
  redistribution performed by RDMA pulls from the writers' exposed
  buffers (ADIOS "taking care of data redistribution via RDMA").
"""

from repro.adios.comm import AdiosComm, MonaAdiosComm, MPIAdiosComm
from repro.adios.core import Adios, IO, Variable
from repro.adios.sst import SSTReader, SSTWriter, StreamRegistry

__all__ = [
    "Adios",
    "AdiosComm",
    "IO",
    "MPIAdiosComm",
    "MonaAdiosComm",
    "SSTReader",
    "SSTWriter",
    "StreamRegistry",
    "Variable",
]
