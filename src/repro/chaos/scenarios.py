"""The chaos scenario fleet: seeded end-to-end fault-injection runs.

Each scenario builds a *fresh* full stack (simulation, staging area,
client, pipeline), arms a :class:`FaultPlan`, drives a workload of
resilient iterations through it, lets the group settle, and returns a
:class:`ScenarioResult` carrying the invariant violations (must be
empty) and the trace digest (must be identical across runs with the
same seed — the determinism oracle).

Scenario style guide, for adding new ones:

- register with :func:`@scenario <scenario>`; the function takes a seed
  and returns ``_finish(ctx, info)``;
- fault windows are *relative to the time the stack finished booting*
  (``ctx.t0``), since bring-up length varies with seed;
- link mischief (drop/dup/delay) stays on client<->server links unless
  the scenario deliberately torments SWIM, so gossip-side effects are
  opt-in rather than accidental;
- drop/duplication scenarios use the statistics backend (local-only
  execute): dropping messages *inside* a MoNA collective desyncs the
  communicator sequence and models a fault Colza's transport does not
  actually present. Crash/hang scenarios use the Catalyst/iso backend,
  whose collectives are exactly what the abort-on-death path protects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.chaos.engine import ChaosEngine
from repro.chaos.faults import (
    CrashFault,
    FaultPlan,
    GossipSuppression,
    HangFault,
    LinkFault,
    Partition,
    RdmaFault,
    SlowFault,
    name_of,
)
from repro.chaos.invariants import InvariantMonitor
import repro.core.pipelines  # noqa: F401  (registers the pipeline libraries)
from repro.bench.loadtraces import bursty
from repro.core import Deployment, TenancyConfig
from repro.core.admin import ColzaAdmin
from repro.core.autoscale import SloAutoscaler, SloConfig, TenantSlo
from repro.na import VirtualPayload
from repro.sim import Simulation
from repro.ssg import SwimConfig
from repro.testing import drive, run_until

__all__ = [
    "ChaosContext",
    "SCENARIOS",
    "ScenarioResult",
    "TenantSession",
    "build_multi_tenant_stack",
    "build_stack",
    "run_scenario",
    "scenario",
    "scenario_names",
]

CLIENT = "client"
STATS = "libcolza-stats.so"
ISO = "libcolza-iso.so"

#: 64 KiB per block: enough to exercise RDMA without dominating runtime.
LIGHT_BLOCK = VirtualPayload((8192,), "float64")


def _fast_swim(**overrides) -> SwimConfig:
    kwargs = dict(period=0.2, suspect_timeout=1.5)
    kwargs.update(overrides)
    return SwimConfig(**kwargs)


@dataclass
class ScenarioResult:
    """What a scenario run produced (for asserting and for replaying)."""

    name: str
    seed: int
    digest: str
    violations: List[str]
    info: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations


class ChaosContext:
    """Everything a scenario body needs, in one bag."""

    def __init__(self, sim, deployment, margo, client, handle, monitor, library, config):
        self.sim = sim
        self.deployment = deployment
        self.margo = margo
        self.client = client
        self.handle = handle
        self.monitor = monitor
        self.library = library
        self.config = config
        #: Simulated time when the stack finished booting; fault windows
        #: are offsets from here.
        self.t0 = sim.now
        self.plan: Optional[FaultPlan] = None
        self.engine: Optional[ChaosEngine] = None

    @property
    def servers(self) -> List[str]:
        return [d.name for d in self.deployment.daemons]

    def arm(self, plan: FaultPlan) -> ChaosEngine:
        """Install a fault plan (at most one per context)."""
        if self.engine is not None:
            raise RuntimeError("context already armed")
        self.plan = plan
        self.engine = ChaosEngine(
            self.sim, plan, deployment=self.deployment, monitor=self.monitor
        ).install()
        return self.engine

    def admin(self) -> ColzaAdmin:
        return ColzaAdmin(self.margo)


def build_stack(
    seed: int = 0,
    n_servers: int = 4,
    library: str = STATS,
    config: Optional[dict] = None,
    swim: Optional[SwimConfig] = None,
    stage_timeout: Optional[float] = 2.0,
    data_timeout: Optional[float] = 6.0,
    control_timeout: float = 2.0,
    perturb_seed: Optional[int] = None,
    procs_per_node: int = 1,
) -> ChaosContext:
    """A booted, converged Colza stack with an invariant monitor attached.

    ``perturb_seed`` turns on the kernel's seeded permutation of
    same-timestamp tie-breaking (see :mod:`repro.analysis.fuzz`); it
    defaults to whatever :class:`repro.sim.perturbed_ties` context is
    in force, so fuzzed re-runs need no parameter threading.

    ``procs_per_node`` co-locates daemons on nodes (failure domains) —
    node-failure scenarios crash all daemons of one node and rely on
    replica placement having avoided it.
    """
    sim = Simulation(seed=seed, perturb_seed=perturb_seed)
    deployment = Deployment(sim, swim_config=swim or _fast_swim())
    drive(
        sim,
        deployment.start_servers(n_servers, procs_per_node=procs_per_node),
        max_time=300,
    )
    run_until(sim, deployment.converged, max_time=300)
    margo, client = deployment.make_client(node_index=40, name=CLIENT)
    client.CONTROL_TIMEOUT = control_timeout
    drive(sim, client.connect())
    config = dict(config or {})
    if library != STATS and "script" not in config:
        from repro.core.pipelines import IsoSurfaceScript

        config["script"] = IsoSurfaceScript(field="dist", isovalues=[1.0])
        config.setdefault("width", 32)
        config.setdefault("height", 32)
    drive(sim, deployment.deploy_pipeline(margo, "pipe", library, config), max_time=300)
    handle = client.distributed_pipeline_handle("pipe")
    handle.stage_timeout = stage_timeout
    handle.data_timeout = data_timeout
    handle.CONTROL_TIMEOUT = control_timeout
    monitor = InvariantMonitor(sim, deployment).attach()
    return ChaosContext(sim, deployment, margo, client, handle, monitor, library, config)


@dataclass
class TenantSession:
    """One tenant's client-side view of a shared staging area."""

    tenant: str
    margo: Any
    client: Any
    handle: Any


def build_multi_tenant_stack(
    seed: int = 0,
    n_servers: int = 4,
    tenants=("alpha", "beta"),
    library: str = STATS,
    config: Optional[dict] = None,
    tenancy: Optional[TenancyConfig] = None,
    swim: Optional[SwimConfig] = None,
    stage_timeout: Optional[float] = 2.0,
    data_timeout: Optional[float] = 6.0,
    control_timeout: float = 2.0,
) -> ChaosContext:
    """A booted stack shared by several tenants (DESIGN §13).

    Every tenant gets its own client Margo instance, attaches under its
    own namespace, and deploys a pipeline named ``pipe`` — the *same*
    base name for everyone, because namespacing (not naming discipline)
    is what keeps tenants apart. The returned context carries
    ``ctx.sessions[tenant]`` per-tenant bags; the context's primary
    client/handle are the first tenant's.
    """
    sim = Simulation(seed=seed)
    deployment = Deployment(
        sim,
        swim_config=swim or _fast_swim(),
        tenancy=tenancy if tenancy is not None else TenancyConfig(),
    )
    drive(sim, deployment.start_servers(n_servers), max_time=300)
    run_until(sim, deployment.converged, max_time=300)
    config = dict(config or {})
    sessions: Dict[str, TenantSession] = {}
    for i, tenant in enumerate(tenants):
        margo, client = deployment.make_client(
            node_index=40 + i, name=f"{CLIENT}-{tenant}", tenant=tenant
        )
        client.CONTROL_TIMEOUT = control_timeout
        drive(sim, client.connect())
        drive(sim, client.attach())
        drive(
            sim,
            deployment.deploy_pipeline(margo, "pipe", library, config, tenant=tenant),
            max_time=300,
        )
        handle = client.distributed_pipeline_handle("pipe")
        handle.stage_timeout = stage_timeout
        handle.data_timeout = data_timeout
        handle.CONTROL_TIMEOUT = control_timeout
        sessions[tenant] = TenantSession(tenant, margo, client, handle)
    monitor = InvariantMonitor(sim, deployment).attach()
    first = sessions[tenants[0]]
    ctx = ChaosContext(
        sim, deployment, first.margo, first.client, first.handle,
        monitor, library, config,
    )
    ctx.sessions = sessions
    return ctx


def _workload(ctx, iterations=3, blocks=4, payload=None, attempts=5, first=1,
              gap=0.0, handle=None):
    """N resilient iterations; returns the per-iteration view sizes.

    ``gap`` seconds of simulated compute separate iterations (the
    simulation timestep between in situ calls) — that's what spreads
    the workload across a fault window. ``handle`` defaults to the
    context's primary handle; multi-tenant scenarios pass a specific
    session's handle instead.
    """
    payload = payload or LIGHT_BLOCK
    handle = handle or ctx.handle
    sizes = []
    for it in range(first, first + iterations):
        if gap > 0:
            yield ctx.sim.timeout(gap)
        blks = [(b, payload) for b in range(blocks)]
        view = yield from handle.run_resilient_iteration(
            it, blks, max_attempts=attempts
        )
        sizes.append(len(view))
    return sizes


def _controller_workload(ctx, controller, loads, base_elements=1 << 14, blocks=8,
                         gap=0.5, attempts=8, handle=None, first=1,
                         hooks=None):
    """Drive one resilient iteration per trace point, scaling the block
    size by the load multiplier and stepping the controller after each
    iteration (the closed loop's natural cadence).

    ``hooks`` maps iteration numbers to zero-argument callables run
    just before that iteration — scenarios use them to flip faults or
    telemetry at deterministic points in the workload.
    """
    handle = handle or ctx.handle
    hooks = hooks or {}
    for it, load in enumerate(loads, start=first):
        if it in hooks:
            hooks[it]()
        yield ctx.sim.timeout(gap)
        payload = VirtualPayload((max(1, int(base_elements * load)),), "float64")
        blks = [(b, payload) for b in range(blocks)]
        yield from handle.run_resilient_iteration(it, blks, max_attempts=attempts)
        yield from controller.step_from_trace()
    return controller


def _finish(ctx, info: Optional[dict] = None, settle: float = 6.0) -> ScenarioResult:
    """Run out the fault horizon, verify convergence, collect the result."""
    sim = ctx.sim
    horizon = ctx.plan.horizon() if ctx.plan is not None else 0.0
    sim.run(until=max(sim.now, horizon) + settle)
    try:
        run_until(sim, ctx.deployment.converged, max_time=60)
    except TimeoutError:
        pass  # recorded as a violation by final_check below
    ctx.monitor.final_check()
    if ctx.engine is not None:
        ctx.engine.uninstall()
    ctx.monitor.detach()
    return ScenarioResult(
        name="",  # filled by run_scenario
        seed=-1,
        digest=sim.trace.digest(),
        violations=list(ctx.monitor.violations),
        info=dict(info or {}),
    )


# ---------------------------------------------------------------------------
# registry
SCENARIOS: Dict[str, Callable[[int], ScenarioResult]] = {}


def scenario(fn: Callable[[int], ScenarioResult]) -> Callable[[int], ScenarioResult]:
    SCENARIOS[fn.__name__.replace("scenario_", "", 1)] = fn
    return fn


def scenario_names() -> List[str]:
    return sorted(SCENARIOS)


def run_scenario(name: str, seed: int = 0) -> ScenarioResult:
    result = SCENARIOS[name](seed)
    result.name = name
    result.seed = seed
    return result


# ---------------------------------------------------------------------------
# baselines
@scenario
def scenario_baseline_no_faults(seed: int = 0) -> ScenarioResult:
    ctx = build_stack(seed)
    sizes = drive(ctx.sim, _workload(ctx), max_time=600)
    return _finish(ctx, {"view_sizes": sizes})


@scenario
def scenario_baseline_catalyst(seed: int = 0) -> ScenarioResult:
    ctx = build_stack(seed, n_servers=3, library=ISO, data_timeout=None)
    sizes = drive(ctx.sim, _workload(ctx, iterations=2, blocks=3), max_time=600)
    return _finish(ctx, {"view_sizes": sizes})


# ---------------------------------------------------------------------------
# link faults (stats backend: drops must not land inside collectives)
@scenario
def scenario_drop_client_links(seed: int = 0) -> ScenarioResult:
    ctx = build_stack(seed)
    t = ctx.t0
    ctx.arm(FaultPlan((
        LinkFault(t, t + 20, src=CLIENT, drop_p=0.06),
        LinkFault(t, t + 20, dst=CLIENT, drop_p=0.06),
    )))
    sizes = drive(ctx.sim, _workload(ctx, iterations=4, attempts=8, gap=0.8), max_time=600)
    return _finish(ctx, {"view_sizes": sizes})


@scenario
def scenario_drop_storm(seed: int = 0) -> ScenarioResult:
    ctx = build_stack(seed, stage_timeout=1.0, data_timeout=3.0, control_timeout=1.0)
    t = ctx.t0
    ctx.arm(FaultPlan((
        LinkFault(t, t + 10, src=CLIENT, drop_p=0.2),
        LinkFault(t, t + 10, dst=CLIENT, drop_p=0.2),
    )))
    sizes = drive(ctx.sim, _workload(ctx, iterations=3, attempts=10, gap=0.6), max_time=900)
    return _finish(ctx, {"view_sizes": sizes})


@scenario
def scenario_dup_storm(seed: int = 0) -> ScenarioResult:
    """Heavy duplication everywhere: at-most-once dispatch and single
    block ownership are the invariants under test."""
    ctx = build_stack(seed)
    t = ctx.t0
    ctx.arm(FaultPlan((LinkFault(t, t + 8, dup_p=0.4),)))
    sizes = drive(ctx.sim, _workload(ctx, iterations=4, gap=0.5), max_time=600)
    return _finish(ctx, {"view_sizes": sizes})


@scenario
def scenario_delay_jitter(seed: int = 0) -> ScenarioResult:
    ctx = build_stack(seed, swim=_fast_swim(suspect_timeout=2.5))
    t = ctx.t0
    ctx.arm(FaultPlan((LinkFault(t, t + 8, delay=0.04),)))
    sizes = drive(ctx.sim, _workload(ctx, iterations=4, gap=0.5), max_time=600)
    return _finish(ctx, {"view_sizes": sizes})


@scenario
def scenario_drop_during_2pc(seed: int = 0) -> ScenarioResult:
    """Half the client's control messages vanish exactly while the first
    activate runs its 2PC; the retry loop must still reach agreement."""
    ctx = build_stack(seed, control_timeout=0.5)
    t = ctx.t0
    ctx.arm(FaultPlan((
        LinkFault(t, t + 2.0, src=CLIENT, drop_p=0.5),
        LinkFault(t, t + 2.0, dst=CLIENT, drop_p=0.5),
    )))
    sizes = drive(ctx.sim, _workload(ctx, iterations=2, attempts=10), max_time=900)
    return _finish(ctx, {"view_sizes": sizes})


@scenario
def scenario_rdma_slowdown(seed: int = 0) -> ScenarioResult:
    ctx = build_stack(seed, stage_timeout=30.0)
    t = ctx.t0
    ctx.arm(FaultPlan((RdmaFault(t, t + 12, factor=50.0),)))
    sizes = drive(
        ctx.sim,
        _workload(ctx, payload=VirtualPayload((1 << 18,), "float64"), gap=0.5),
        max_time=600,
    )
    stage = ctx.sim.trace.durations("colza.stage")
    return _finish(ctx, {"view_sizes": sizes, "max_stage_s": max(stage)})


# ---------------------------------------------------------------------------
# partitions
@scenario
def scenario_partition_brief_heal(seed: int = 0) -> ScenarioResult:
    """A 1 s partition, shorter than the suspicion timeout: suspicion
    must end in refutation, never death, and the views re-agree."""
    ctx = build_stack(seed, swim=_fast_swim(suspect_timeout=3.0))
    t = ctx.t0
    victim = ctx.servers[-1]
    plan = FaultPlan((Partition(t + 1.0, t + 2.0, side_a=(victim,)),))
    # The window is sized for refutation: a death would be a protocol
    # bug, so do NOT exempt the partitioned member.
    ctx.arm(plan)
    ctx.monitor.exempt.clear()
    sizes = drive(ctx.sim, _workload(ctx, iterations=4, attempts=8, gap=0.6), max_time=600)
    return _finish(ctx, {"view_sizes": sizes}, settle=8.0)


@scenario
def scenario_partition_during_activate(seed: int = 0) -> ScenarioResult:
    ctx = build_stack(seed, control_timeout=1.0, swim=_fast_swim(suspect_timeout=3.0))
    t = ctx.t0
    victim = ctx.servers[0]
    ctx.arm(FaultPlan((Partition(t, t + 1.2, side_a=(victim,)),)))
    sizes = drive(ctx.sim, _workload(ctx, iterations=3, attempts=8, gap=0.5), max_time=600)
    return _finish(ctx, {"view_sizes": sizes}, settle=8.0)


@scenario
def scenario_partition_ejects_minority(seed: int = 0) -> ScenarioResult:
    """A long partition: the group (correctly) ejects the unreachable
    minority; since DEAD is terminal the scenario kills the stranded
    daemon at heal time, and the survivors converge without it."""
    ctx = build_stack(seed, n_servers=4)
    t = ctx.t0
    victim = ctx.servers[-1]
    ctx.arm(FaultPlan((
        Partition(t, t + 8.0, side_a=(victim,)),
        CrashFault(at=t + 8.0, server=victim),
    )))
    sizes = drive(ctx.sim, _workload(ctx, iterations=4, attempts=8, gap=1.0), max_time=600)
    return _finish(ctx, {"view_sizes": sizes})


# ---------------------------------------------------------------------------
# crashes (Catalyst backend: collective execute + abort-on-death)
@scenario
def scenario_crash_mid_execute(seed: int = 0) -> ScenarioResult:
    """Kill a member mid-collective. Recovery depends entirely on the
    provider's abort-on-death path (no data-plane timeouts armed): this
    is the canary scenario the broken-invariant test relies on."""
    ctx = build_stack(
        seed, n_servers=3, library=ISO,
        stage_timeout=None, data_timeout=None,
        swim=_fast_swim(suspect_timeout=1.0),
    )
    sim = ctx.sim
    # A clean first iteration, then heavy blocks (~2 s of collective
    # compute per server) with a crash landing inside the execute.
    drive(sim, _workload(ctx, iterations=1, blocks=3), max_time=600)
    heavy = VirtualPayload((256, 256, 256), "int32")
    victim = ctx.servers[-1]
    ctx.arm(FaultPlan((CrashFault(at=sim.now + 1.0, server=victim),)))
    sizes = drive(
        sim, _workload(ctx, iterations=1, blocks=3, payload=heavy, first=2),
        max_time=600,
    )
    aborts = sim.trace.counters.get("colza.abort_on_death", 0)
    if aborts < 1:
        ctx.monitor.violations.append(
            "crash did not land mid-execute (no abort-on-death fired); "
            "re-tune the crash offset"
        )
    return _finish(ctx, {"view_sizes": sizes, "aborts": aborts})


@scenario
def scenario_crash_mid_stage(seed: int = 0) -> ScenarioResult:
    ctx = build_stack(seed)
    t = ctx.t0
    victim = ctx.servers[1]
    ctx.arm(FaultPlan((
        RdmaFault(t, t + 3.0, factor=300.0),
        CrashFault(at=t + 0.3, server=victim),
    )))
    sizes = drive(
        ctx.sim,
        _workload(ctx, blocks=8, payload=VirtualPayload((1 << 21,), "float64"),
                  attempts=8),
        max_time=600,
    )
    return _finish(ctx, {"view_sizes": sizes})


@scenario
def scenario_crash_between_iterations(seed: int = 0) -> ScenarioResult:
    ctx = build_stack(seed, n_servers=3, library=ISO, data_timeout=None)
    sim = ctx.sim
    drive(sim, _workload(ctx, iterations=1, blocks=3), max_time=600)
    victim = ctx.servers[-1]
    ctx.arm(FaultPlan((CrashFault(at=sim.now + 0.05, server=victim),)))
    sim.run(until=sim.now + 0.1)
    sizes = drive(sim, _workload(ctx, iterations=2, blocks=3, first=2), max_time=600)
    return _finish(ctx, {"view_sizes": sizes})


@scenario
def scenario_double_crash(seed: int = 0) -> ScenarioResult:
    ctx = build_stack(seed, n_servers=5)
    t = ctx.t0
    ctx.arm(FaultPlan((
        CrashFault(at=t + 1.0, server=ctx.servers[4]),
        CrashFault(at=t + 4.0, server=ctx.servers[3]),
    )))
    sizes = drive(ctx.sim, _workload(ctx, iterations=4, attempts=8, gap=1.5), max_time=600)
    return _finish(ctx, {"view_sizes": sizes})


@scenario
def scenario_crash_then_join(seed: int = 0) -> ScenarioResult:
    """A member dies; a replacement is srun'd in mid-run and must be a
    first-class member (pipeline deployed, part of the frozen view)."""
    ctx = build_stack(seed, n_servers=3)
    sim = ctx.sim
    victim = ctx.servers[-1]
    ctx.arm(FaultPlan((CrashFault(at=ctx.t0 + 0.5, server=victim),)))
    sizes = drive(sim, _workload(ctx, iterations=2, attempts=8, gap=0.4), max_time=600)

    def add_replacement():
        daemon = yield from ctx.deployment.add_server(node_index=8)
        yield from ctx.admin().create_pipeline(
            daemon.address, "pipe", ctx.library, ctx.config
        )
        return daemon

    drive(sim, add_replacement(), max_time=300)
    run_until(sim, ctx.deployment.converged, max_time=60)
    sizes += drive(sim, _workload(ctx, iterations=1, first=3), max_time=600)
    return _finish(ctx, {"view_sizes": sizes, "final_members": len(ctx.deployment.addresses())})


# ---------------------------------------------------------------------------
# replication & recovery (DESIGN §11; stats backend tuned so one
# 64 KiB block takes ~1.6 s of execute — crashes at +1.0 land after
# staging completed and inside the execute, yet a survivor that
# adopted orphans still finishes 2-3 blocks within data_timeout)
REPLICATED = {"replication_factor": 2, "bytes_per_second": 4e4}


def _core_counters(ctx) -> Dict[str, int]:
    core = ctx.sim.metrics.scope("core")
    return {
        name: core.counter(name).value
        for name in (
            "blocks_staged",
            "blocks_replicated",
            "blocks_recovered",
            "restage_fallbacks",
        )
    }


@scenario
def scenario_replicated_crash_owner_mid_iteration(seed: int = 0) -> ScenarioResult:
    """K=2, one owner dies mid-iteration: the retry must rebuild the
    block distribution from replicas with ZERO client re-stages."""
    ctx = build_stack(seed, n_servers=4, config=dict(REPLICATED))
    sim = ctx.sim
    drive(sim, _workload(ctx, iterations=1, blocks=4), max_time=600)
    before = _core_counters(ctx)
    victim = ctx.servers[-1]
    ctx.arm(FaultPlan((CrashFault(at=sim.now + 1.0, server=victim),)))
    sizes = drive(
        sim, _workload(ctx, iterations=1, blocks=4, first=2, attempts=8),
        max_time=600,
    )
    after = _core_counters(ctx)
    staged_delta = after["blocks_staged"] - before["blocks_staged"]
    recovered = after["blocks_recovered"] - before["blocks_recovered"]
    fallbacks = after["restage_fallbacks"] - before["restage_fallbacks"]
    if staged_delta != 4:
        ctx.monitor.violations.append(
            f"client re-staged during recovery: blocks_staged delta "
            f"{staged_delta} != 4"
        )
    if recovered < 1:
        ctx.monitor.violations.append(
            "no blocks recovered from replicas (crash offset mistimed?)"
        )
    if fallbacks != 0:
        ctx.monitor.violations.append(
            f"unexpected restage fallback with f=1 < K=2 ({fallbacks})"
        )
    return _finish(ctx, {"view_sizes": sizes, "staged_delta": staged_delta,
                         "recovered": recovered, "fallbacks": fallbacks})


@scenario
def scenario_replicated_crash_during_recovery(seed: int = 0) -> ScenarioResult:
    """A second member dies while the first crash's recovery is still
    in flight. The epoch guard and the span-end semantics of the
    NoBlockLoss audit must keep every invariant green; whether the
    outcome is a second recovery or a legitimate fallback depends on
    how far re-replication got (both are recorded in info)."""
    ctx = build_stack(seed, n_servers=4, config=dict(REPLICATED))
    sim = ctx.sim
    drive(sim, _workload(ctx, iterations=1, blocks=4), max_time=600)
    before = _core_counters(ctx)
    first_victim = ctx.servers[-1]
    ctx.arm(FaultPlan((CrashFault(at=sim.now + 1.0, server=first_victim),)))
    second_victim = ctx.servers[-2]
    armed = []

    def second_crash():
        deadline = sim.now + 120.0
        while sim.trace.counters.get("colza.block_recovered", 0) < 1:
            if sim.now >= deadline:
                return
            yield sim.timeout(0.05)
        ctx.monitor.note_failure(second_victim)
        daemon = next(d for d in ctx.deployment.daemons if d.name == second_victim)
        if daemon.running:
            daemon.crash()
            armed.append(sim.now)

    sim.spawn(second_crash(), name="chaos-crash-during-recovery")
    sizes = drive(
        sim, _workload(ctx, iterations=1, blocks=4, first=2, attempts=10),
        max_time=900,
    )
    after = _core_counters(ctx)
    recovered = after["blocks_recovered"] - before["blocks_recovered"]
    if not armed:
        ctx.monitor.violations.append(
            "second crash never fired: recovery never adopted a block"
        )
    if recovered < 1:
        ctx.monitor.violations.append("no blocks recovered from replicas")
    return _finish(ctx, {
        "view_sizes": sizes, "second_crash_at": armed,
        "recovered": recovered,
        "fallbacks": after["restage_fallbacks"] - before["restage_fallbacks"],
    })


@scenario
def scenario_replicated_owner_and_buddy_crash(seed: int = 0) -> ScenarioResult:
    """Both copies of block 0 die (f = K = 2): recovery must report the
    block missing and the client must provably fall back to one full
    re-stage — not hang, and not execute on a partial block set."""
    from repro.core.replication import replica_buddies

    ctx = build_stack(seed, n_servers=4, config=dict(REPLICATED))
    sim = ctx.sim
    drive(sim, _workload(ctx, iterations=1, blocks=4), max_time=600)
    before = _core_counters(ctx)
    view = sorted(ctx.deployment.addresses())
    owner = view[0]  # block_id_mod: block 0 -> first member of the view
    buddy = replica_buddies("pipe", 2, 0, owner, view, 2)[0]
    ctx.arm(FaultPlan(tuple(
        CrashFault(at=sim.now + 1.0, server=name_of(v)) for v in (owner, buddy)
    )))
    sizes = drive(
        sim, _workload(ctx, iterations=1, blocks=4, first=2, attempts=10),
        max_time=900,
    )
    after = _core_counters(ctx)
    staged_delta = after["blocks_staged"] - before["blocks_staged"]
    fallbacks = after["restage_fallbacks"] - before["restage_fallbacks"]
    if fallbacks != 1:
        ctx.monitor.violations.append(
            f"owner+buddy double crash must force exactly one restage "
            f"fallback, got {fallbacks}"
        )
    if staged_delta != 8:
        ctx.monitor.violations.append(
            f"full re-stage expected (4 original + 4 fallback), "
            f"blocks_staged delta was {staged_delta}"
        )
    return _finish(ctx, {"view_sizes": sizes, "staged_delta": staged_delta,
                         "fallbacks": fallbacks})


@scenario
def scenario_replicated_node_failure(seed: int = 0) -> ScenarioResult:
    """Two daemons share each node; node 0 dies whole. Failure-domain-
    aware placement must have pushed every replica off-node, so both
    orphaned blocks recover without any client re-stage."""
    ctx = build_stack(
        seed, n_servers=4, procs_per_node=2, config=dict(REPLICATED)
    )
    sim = ctx.sim
    drive(sim, _workload(ctx, iterations=1, blocks=4), max_time=600)
    before = _core_counters(ctx)
    node0 = [d.name for d in ctx.deployment.daemons[:2]]
    ctx.arm(FaultPlan(tuple(
        CrashFault(at=sim.now + 1.0, server=v) for v in node0
    )))
    sizes = drive(
        sim, _workload(ctx, iterations=1, blocks=4, first=2, attempts=10),
        max_time=900,
    )
    after = _core_counters(ctx)
    staged_delta = after["blocks_staged"] - before["blocks_staged"]
    recovered = after["blocks_recovered"] - before["blocks_recovered"]
    fallbacks = after["restage_fallbacks"] - before["restage_fallbacks"]
    if staged_delta != 4:
        ctx.monitor.violations.append(
            f"client re-staged after node failure: delta {staged_delta} != 4"
        )
    if recovered < 2:
        ctx.monitor.violations.append(
            f"both node-0 blocks must come back from off-node replicas, "
            f"recovered only {recovered}"
        )
    if fallbacks != 0:
        ctx.monitor.violations.append(
            f"node failure with off-node replicas must not fall back "
            f"({fallbacks})"
        )
    return _finish(ctx, {"view_sizes": sizes, "staged_delta": staged_delta,
                         "recovered": recovered, "fallbacks": fallbacks})


# ---------------------------------------------------------------------------
# elastic churn
@scenario
def scenario_churn_stress(seed: int = 0) -> ScenarioResult:
    """Join/leave churn concurrent with the iteration loop."""
    ctx = build_stack(seed, n_servers=4)
    sim = ctx.sim
    rng = sim.rng.stream("chaos.churn")

    def churn():
        admin = ctx.admin()
        for i in range(3):
            yield sim.timeout(1.0 + float(rng.uniform(0.0, 2.0)))
            live = ctx.deployment.live_daemons()
            if rng.random() < 0.5 and len(live) > 3:
                victim = max(live, key=lambda d: d.address)
                yield from admin.request_leave(victim.address)
            else:
                daemon = yield from ctx.deployment.add_server(node_index=10 + i)
                yield from admin.create_pipeline(
                    daemon.address, "pipe", ctx.library, ctx.config
                )

    churn_task = sim.spawn(churn(), name="chaos-churn")
    sizes = drive(sim, _workload(ctx, iterations=5, attempts=10, gap=1.2), max_time=900)
    run_until(sim, lambda: churn_task.finished, max_time=300)
    return _finish(ctx, {"view_sizes": sizes}, settle=10.0)


@scenario
def scenario_deferred_leave_while_frozen(seed: int = 0) -> ScenarioResult:
    """A leave requested mid-iteration must be deferred until the
    deactivate, then honored (frozen views stay frozen)."""
    ctx = build_stack(seed, n_servers=3)
    sim = ctx.sim
    handle = ctx.handle

    def body():
        yield from handle.activate(1)
        for b in range(3):
            yield from handle.stage(1, b, LIGHT_BLOCK)
        victim = max(ctx.deployment.live_daemons(), key=lambda d: d.address)
        verdict = yield from ctx.admin().request_leave(victim.address)
        frozen_len = len(handle.frozen_view)
        yield from handle.execute(1)
        yield from handle.deactivate(1)
        return verdict, frozen_len, victim

    verdict, frozen_len, victim = drive(sim, body(), max_time=600)
    info = {"leave_verdict": verdict, "frozen_len": frozen_len}
    if verdict != "deferred":
        ctx.monitor.violations.append(
            f"leave during frozen view was not deferred (got {verdict!r})"
        )
    run_until(sim, lambda: not victim.running, max_time=60)
    sizes = drive(sim, _workload(ctx, iterations=1, first=2), max_time=600)
    info["view_sizes"] = sizes
    if len(ctx.deployment.addresses()) != 2:
        ctx.monitor.violations.append("deferred leave never happened")
    return _finish(ctx, info)


# ---------------------------------------------------------------------------
# multi-tenant fabric (DESIGN §13)
def _tenant_counters(ctx, tenant: str) -> Dict[str, int]:
    scope = ctx.sim.metrics.scope(f"tenant.{tenant}")
    return {
        name: scope.counter(name).value
        for name in (
            "iterations_completed",
            "iteration_retries",
            "restage_fallbacks",
            "blocks_staged",
        )
    }


@scenario
def scenario_tenant_churn_storm(seed: int = 0) -> ScenarioResult:
    """Two stable tenants iterate while ephemeral tenants attach, run
    one iteration each, and detach — under an admission cap with room
    for exactly one ephemeral at a time. Tenant churn (attach, deploy,
    stage, detach-with-teardown) must never perturb the stable tenants:
    zero retries, every iteration on the first attempt."""
    ctx = build_multi_tenant_stack(
        seed, tenants=("alpha", "beta"), tenancy=TenancyConfig(max_tenants=3)
    )
    sim = ctx.sim
    sizes: Dict[str, List[int]] = {}

    def stable(tenant):
        sizes[tenant] = yield from _workload(
            ctx, iterations=4, blocks=3, gap=0.8,
            handle=ctx.sessions[tenant].handle,
        )

    tasks = [
        sim.spawn(stable(t), name=f"workload-{t}") for t in ("alpha", "beta")
    ]

    def ephemeral_churn():
        for i in range(3):
            tenant = f"eph{i}"
            margo, client = ctx.deployment.make_client(
                node_index=50 + i, name=f"{CLIENT}-{tenant}", tenant=tenant
            )
            yield from client.connect()
            # The previous ephemeral already detached (this loop is
            # sequential), so the cap has room — attach must succeed.
            yield from client.attach()
            yield from ctx.deployment.deploy_pipeline(
                margo, "pipe", ctx.library, ctx.config, tenant=tenant
            )
            handle = client.distributed_pipeline_handle("pipe")
            yield from handle.run_resilient_iteration(
                1, [(b, LIGHT_BLOCK) for b in range(2)]
            )
            # Detach tears the namespace down everywhere: pipelines,
            # staged data, quota charges, the admission slot.
            yield from client.detach()

    drive(sim, ephemeral_churn(), max_time=900)
    run_until(sim, lambda: all(t.finished for t in tasks), max_time=900)
    info = {"view_sizes": sizes}
    for tenant in ("alpha", "beta"):
        counters = _tenant_counters(ctx, tenant)
        if sizes.get(tenant) is None or len(sizes[tenant]) != 4:
            ctx.monitor.violations.append(
                f"stable tenant {tenant!r} did not finish its 4 iterations"
            )
        if counters["iteration_retries"] != 0:
            ctx.monitor.violations.append(
                f"tenant churn caused {counters['iteration_retries']} "
                f"retries for stable tenant {tenant!r}"
            )
    rosters = {
        tuple(d.provider.tenants.tenants())
        for d in ctx.deployment.live_daemons()
    }
    if rosters != {("alpha", "beta")}:
        ctx.monitor.violations.append(
            f"ephemeral tenants left admission state behind: {rosters}"
        )
    return _finish(ctx, info)


@scenario
def scenario_tenant_owner_crash_recovery_isolated(seed: int = 0) -> ScenarioResult:
    """K=2 for both tenants; a shared server dies mid-iteration for
    tenant alpha. Alpha must recover its orphans from replicas (the
    DESIGN §11 path, zero client re-stages) while beta — which waits
    out SWIM convergence and then runs a full iteration — must see NO
    interference: first-attempt activate, zero retries, zero
    fallbacks, exactly one stage per block."""
    ctx = build_multi_tenant_stack(seed, n_servers=4, config=dict(REPLICATED))
    sim = ctx.sim
    alpha = ctx.sessions["alpha"]
    beta = ctx.sessions["beta"]
    drive(sim, _workload(ctx, iterations=1, blocks=4, handle=alpha.handle),
          max_time=600)
    drive(sim, _workload(ctx, iterations=1, blocks=4, handle=beta.handle),
          max_time=600)
    before_core = _core_counters(ctx)
    before_beta = _tenant_counters(ctx, "beta")
    before_alpha = _tenant_counters(ctx, "alpha")
    victim = ctx.servers[-1]
    ctx.arm(FaultPlan((CrashFault(at=sim.now + 1.0, server=victim),)))
    alpha_sizes: List[int] = []

    def alpha_body():
        alpha_sizes.extend((yield from _workload(
            ctx, iterations=1, blocks=4, first=2, attempts=8,
            handle=alpha.handle,
        )))

    alpha_task = sim.spawn(alpha_body(), name="workload-alpha")
    victim_daemon = next(d for d in ctx.deployment.daemons if d.name == victim)
    run_until(sim, lambda: not victim_daemon.running, max_time=120)
    run_until(sim, ctx.deployment.converged, max_time=120)
    beta_sizes = drive(
        sim, _workload(ctx, iterations=1, blocks=4, first=2, handle=beta.handle),
        max_time=600,
    )
    run_until(sim, lambda: alpha_task.finished, max_time=600)
    after_core = _core_counters(ctx)
    after_beta = _tenant_counters(ctx, "beta")
    after_alpha = _tenant_counters(ctx, "alpha")
    recovered = after_core["blocks_recovered"] - before_core["blocks_recovered"]
    if not alpha_sizes:
        ctx.monitor.violations.append("alpha's crashed iteration never completed")
    if recovered < 1:
        ctx.monitor.violations.append(
            "alpha recovered no blocks from replicas (crash offset mistimed?)"
        )
    if after_alpha["restage_fallbacks"] - before_alpha["restage_fallbacks"] != 0:
        ctx.monitor.violations.append(
            "alpha fell back to re-staging although f=1 < K=2"
        )
    beta_retries = after_beta["iteration_retries"] - before_beta["iteration_retries"]
    beta_staged = after_beta["blocks_staged"] - before_beta["blocks_staged"]
    beta_fallbacks = after_beta["restage_fallbacks"] - before_beta["restage_fallbacks"]
    if beta_retries != 0:
        ctx.monitor.violations.append(
            f"alpha's crash recovery stalled beta: {beta_retries} retries"
        )
    if beta_staged != 4:
        ctx.monitor.violations.append(
            f"beta staged {beta_staged} blocks instead of exactly 4 "
            f"(stage retries leaked across tenants)"
        )
    if beta_fallbacks != 0:
        ctx.monitor.violations.append(
            f"beta hit {beta_fallbacks} restage fallbacks for a crash "
            f"that predated its activate"
        )
    return _finish(ctx, {
        "alpha_sizes": alpha_sizes, "beta_sizes": beta_sizes,
        "recovered": recovered, "beta_retries": beta_retries,
        "beta_staged": beta_staged,
    })


@scenario
def scenario_tenant_recovery_race(seed: int = 0) -> ScenarioResult:
    """Both tenants are mid-iteration when a shared server dies. Both
    recoveries then run concurrently on the same survivors; each must
    adopt its own tenant's orphans from replicas — zero restage
    fallbacks for either, no cross-tenant adoption (the charge-coverage
    and containment audits run on every stage/activate)."""
    ctx = build_multi_tenant_stack(seed, n_servers=4, config=dict(REPLICATED))
    sim = ctx.sim
    for tenant in ("alpha", "beta"):
        drive(
            sim,
            _workload(ctx, iterations=1, blocks=4,
                      handle=ctx.sessions[tenant].handle),
            max_time=600,
        )
    before_core = _core_counters(ctx)
    before = {t: _tenant_counters(ctx, t) for t in ("alpha", "beta")}
    victim = ctx.servers[-1]
    ctx.arm(FaultPlan((CrashFault(at=sim.now + 1.0, server=victim),)))
    tasks = [
        sim.spawn(
            _workload(ctx, iterations=1, blocks=4, first=2, attempts=8,
                      handle=ctx.sessions[t].handle),
            name=f"workload-{t}",
        )
        for t in ("alpha", "beta")
    ]
    run_until(sim, lambda: all(t.finished for t in tasks), max_time=900)
    after_core = _core_counters(ctx)
    recovered = after_core["blocks_recovered"] - before_core["blocks_recovered"]
    if recovered < 2:
        ctx.monitor.violations.append(
            f"each tenant should adopt at least one orphan from replicas, "
            f"recovered only {recovered} in total"
        )
    deltas = {}
    for tenant in ("alpha", "beta"):
        counters = _tenant_counters(ctx, tenant)
        fallbacks = counters["restage_fallbacks"] - before[tenant]["restage_fallbacks"]
        staged = counters["blocks_staged"] - before[tenant]["blocks_staged"]
        deltas[tenant] = {"fallbacks": fallbacks, "staged": staged}
        if fallbacks != 0:
            ctx.monitor.violations.append(
                f"tenant {tenant!r} fell back to re-staging although "
                f"f=1 < K=2 ({fallbacks})"
            )
        if staged != 4:
            ctx.monitor.violations.append(
                f"tenant {tenant!r} staged {staged} blocks instead of "
                f"exactly 4 (recovery raced into a re-stage)"
            )
    return _finish(ctx, {"recovered": recovered, "deltas": deltas})


# ---------------------------------------------------------------------------
# hangs and slowness
@scenario
def scenario_hang_blip(seed: int = 0) -> ScenarioResult:
    """A 0.6 s hang, shorter than the suspicion timeout: the group may
    suspect the frozen process but must refute, not eject."""
    ctx = build_stack(seed, swim=_fast_swim(suspect_timeout=3.0))
    t = ctx.t0
    victim = ctx.servers[2]
    plan = FaultPlan((HangFault(t + 0.5, t + 1.1, server=victim),))
    ctx.arm(plan)
    ctx.monitor.exempt.clear()  # refutation expected: death = violation
    sizes = drive(ctx.sim, _workload(ctx, iterations=4, attempts=8, gap=0.4), max_time=600)
    return _finish(ctx, {"view_sizes": sizes}, settle=8.0)


@scenario
def scenario_hang_eject(seed: int = 0) -> ScenarioResult:
    """A hang much longer than the suspicion timeout: SWIM must eject
    the hung process (DEAD is terminal, so the engine kills it at the
    window's end) and the workload must route around it."""
    ctx = build_stack(seed, swim=_fast_swim(suspect_timeout=1.0))
    t = ctx.t0
    victim = ctx.servers[-1]
    ctx.arm(FaultPlan((
        HangFault(t + 0.5, t + 8.0, server=victim, kill_at_end=True),
    )))
    sizes = drive(ctx.sim, _workload(ctx, iterations=4, attempts=8, gap=1.0), max_time=600)
    return _finish(ctx, {"view_sizes": sizes})


@scenario
def scenario_slow_node(seed: int = 0) -> ScenarioResult:
    ctx = build_stack(seed, config={"bytes_per_second": 2e7})
    t = ctx.t0
    ctx.arm(FaultPlan((SlowFault(t, t + 30, server=ctx.servers[0], factor=6.0),)))
    payload = VirtualPayload((1 << 17,), "float64")  # 1 MiB
    sizes = drive(ctx.sim, _workload(ctx, payload=payload, gap=0.3), max_time=600)
    execs = ctx.sim.trace.durations("colza.execute")
    return _finish(ctx, {"view_sizes": sizes, "max_execute_s": max(execs)})


@scenario
def scenario_slow_straggler_autoscale(seed: int = 0) -> ScenarioResult:
    """A straggler pushes execute time over the elasticity policy's
    band; the autoscaler (reading the tracer) must grow the area."""
    from repro.bench.harness import ColzaExperiment
    from repro.core.elasticity import AutoScaler, ElasticityPolicy
    from repro.core.pipelines import IsoSurfaceScript

    experiment = ColzaExperiment(
        n_servers=2, n_clients=1, script=IsoSurfaceScript(field="d", isovalues=[0.5]),
        library=STATS, seed=seed, pipeline_name="pipe",
        extra_config={"bytes_per_second": 2e7},
    ).setup()
    sim = experiment.sim
    monitor = InvariantMonitor(sim, experiment.deployment).attach()
    # ``extra_config`` reaches the stats backend, so the fault can slow
    # the straggler's actual compute by a plausible throttle factor
    # instead of an artificial x2000 against a near-free default.
    plan = FaultPlan((
        SlowFault(sim.now, sim.now + 200.0, server=experiment.deployment.daemons[0].name,
                  factor=8.0),
    ))
    engine = ChaosEngine(sim, plan, experiment.deployment, monitor).install()
    policy = ElasticityPolicy(target_high=0.5, target_low=1e-4,
                              cooldown_iterations=0, max_servers=4)
    scaler = AutoScaler(experiment, policy, next_node=8)
    payload = VirtualPayload((1 << 21,), "float64")  # 16 MiB
    decisions = []
    for it in range(1, 4):
        experiment.run_iteration(it, [[(b, payload) for b in range(4)]])
        decision = drive(sim, scaler.step_from_trace(), max_time=300)
        decisions.append(decision.action)
    if "grow" not in decisions:
        monitor.violations.append(f"straggler never triggered growth: {decisions}")
    try:
        run_until(sim, experiment.deployment.converged, max_time=60)
    except TimeoutError:
        pass
    monitor.final_check()
    engine.uninstall()
    monitor.detach()
    return ScenarioResult(
        name="", seed=-1, digest=sim.trace.digest(),
        violations=list(monitor.violations),
        info={"decisions": decisions, "servers": len(experiment.deployment.addresses())},
    )


# ---------------------------------------------------------------------------
# the closed-loop SLO controller under attack (DESIGN §16)
#
# These scenarios fault the *controller's own actuation and inputs*,
# not just the protocol under it: the product being tested is that the
# control loop survives its own failure modes. Every scenario watches
# the controller with the ControllerSafety invariant — bounds, single
# resize in flight, cooldown, degraded-instead-of-raise.

#: One staging server's share of a 1 MiB iteration at this rate takes
#: ~0.26 s on two servers — big enough that a burst crosses a ~1 s SLO,
#: small enough that scenarios stay fast.
AUTOSCALE_BPS = 2e6
AUTOSCALE_SLO = dict(
    deadline=1.2, min_servers=1, max_servers=4, cooldown_iterations=1,
    shrink_patience=6, join_deadline=8.0, leave_deadline=8.0,
    initial_resize_cost=4.0,
)


@scenario
def scenario_autoscale_join_target_crash(seed: int = 0) -> ScenarioResult:
    """The controller's scale-up target crashes mid-join: the attempt
    must be abandoned, the node quarantined, and the retry on a
    different node must restore the grow — with the safety audit clean
    and ``resize_failures`` recording the casualty."""
    ctx = build_stack(seed, n_servers=2, config={"bytes_per_second": AUTOSCALE_BPS})
    controller = SloAutoscaler(
        ctx.deployment, ctx.margo, ctx.library, ctx.config,
        slo=SloConfig(**AUTOSCALE_SLO), first_node=8,
    )
    ctx.monitor.watch_controller(controller)
    initial = {d.name for d in ctx.deployment.daemons}
    crashed: List[str] = []

    def saboteur():
        # Crash the first elastically joining daemon the moment it
        # appears — mid-srun/mid-join, before its pipeline deploys.
        while not crashed and ctx.sim.now < ctx.t0 + 300:
            for d in ctx.deployment.daemons:
                if d.name not in initial:
                    ctx.monitor.note_failure(d.name)
                    d.crash()
                    crashed.append(d.name)
                    return
            yield ctx.sim.timeout(0.05)

    ctx.sim.spawn(saboteur(), name="join-saboteur")
    loads = bursty(8, seed=seed, base=1.0, burst=6.0, ramp=2, hold=3,
                   min_gap=2, max_gap=3)
    drive(ctx.sim, _controller_workload(ctx, controller, loads), max_time=1200)
    result = _finish(ctx, {
        "resize_failures": controller.resize_failures,
        "quarantined": sorted(controller.quarantined),
        "servers": len(ctx.deployment.live_daemons()),
        "decisions": [d.action for d in controller.decisions],
    })
    if not crashed:
        result.violations.append("saboteur never caught a joining daemon")
    if controller.resize_failures < 1:
        result.violations.append("the mid-join crash never registered as a resize failure")
    if not controller.quarantined:
        result.violations.append("the crash site was never quarantined")
    if len(ctx.deployment.live_daemons()) <= 2:
        result.violations.append("controller never recovered the grow on another node")
    return result


@scenario
def scenario_autoscale_telemetry_blackout(seed: int = 0) -> ScenarioResult:
    """Tracing goes dark mid-run: the controller must enter degraded
    hold (gauge up, decisions hold, no exception) and recover when
    telemetry returns — never actuating blind."""
    ctx = build_stack(seed, n_servers=2, config={"bytes_per_second": AUTOSCALE_BPS})
    slo = SloConfig(**{**AUTOSCALE_SLO, "stale_after_steps": 2, "min_servers": 2})
    controller = SloAutoscaler(
        ctx.deployment, ctx.margo, ctx.library, ctx.config, slo=slo, first_node=8,
    )
    ctx.monitor.watch_controller(controller)
    window: Dict[str, float] = {}

    def lights_off():
        window["off"] = ctx.sim.now
        ctx.sim.trace.enabled = False

    def lights_on():
        window["on"] = ctx.sim.now
        ctx.sim.trace.enabled = True

    loads = [1.0] * 12
    drive(
        ctx.sim,
        _controller_workload(ctx, controller, loads,
                             hooks={5: lights_off, 9: lights_on}),
        max_time=1200,
    )
    kinds = [e.kind for e in controller.events]
    result = _finish(ctx, {
        "kinds": kinds,
        "degraded_steps": sum(1 for d in controller.decisions if d.degraded),
    })
    if "degraded" not in kinds:
        result.violations.append("blackout never pushed the controller into degraded mode")
    if "recovered" not in kinds:
        result.violations.append("controller never recovered after telemetry returned")
    resized_blind = any(
        e.kind == "resize_start" and window["off"] <= e.t < window["on"]
        for e in controller.events
    )
    if resized_blind:
        result.violations.append("controller actuated during the blackout")
    return result


@scenario
def scenario_autoscale_flapping_straggler(seed: int = 0) -> ScenarioResult:
    """One server flaps between throttled and healthy in short windows:
    cooldown + shrink patience + resize-cost amortization must keep the
    controller from breathing with the flaps."""
    ctx = build_stack(seed, n_servers=2, config={"bytes_per_second": AUTOSCALE_BPS})
    controller = SloAutoscaler(
        ctx.deployment, ctx.margo, ctx.library, ctx.config,
        slo=SloConfig(**{**AUTOSCALE_SLO, "min_servers": 2, "shrink_patience": 3}),
        first_node=8,
    )
    ctx.monitor.watch_controller(controller)
    t = ctx.t0
    straggler = ctx.servers[0]
    ctx.arm(FaultPlan(tuple(
        SlowFault(t + start, t + start + 4.0, server=straggler, factor=6.0)
        for start in (1.0, 9.0, 17.0)
    )))
    loads = [1.0] * 14
    drive(ctx.sim, _controller_workload(ctx, controller, loads, gap=0.6), max_time=1200)
    result = _finish(ctx, {
        "resizes": controller.resizes,
        "decisions": [d.action for d in controller.decisions],
        "servers": len(ctx.deployment.live_daemons()),
    })
    # Two full grow/shrink cycles for three flap windows is the
    # amortized optimum here (the third flap lands inside the second
    # cycle's patience window); breathing once per flap would be 6.
    if controller.resizes > 4:
        result.violations.append(
            f"controller thrashed: {controller.resizes} resizes across 3 flap windows"
        )
    return result


@scenario
def scenario_autoscale_tenant_burst(seed: int = 0) -> ScenarioResult:
    """Two tenants burst on the shared fabric: the noisy tenant's grow
    demands stop at its resize budget (with explicit budget_exhausted
    events) while the other tenant's budget still buys its resize."""
    ctx = build_multi_tenant_stack(
        seed, n_servers=2, config={"bytes_per_second": AUTOSCALE_BPS},
    )
    tenants = {
        "alpha": TenantSlo("pipe", deadline=1.2, resize_budget=1, budget_window=100),
        "beta": TenantSlo("pipe", deadline=1.2, resize_budget=2, budget_window=100),
    }
    controller = SloAutoscaler(
        ctx.deployment, ctx.margo, ctx.library, ctx.config,
        slo=SloConfig(**{**AUTOSCALE_SLO, "min_servers": 2, "max_servers": 6}),
        tenants=tenants, first_node=8,
    )
    ctx.monitor.watch_controller(controller)
    # alpha bursts early and keeps escalating; beta bursts later.
    alpha_loads = [1.0, 1.0, 4.0, 4.0, 8.0, 10.0, 10.0, 10.0]
    beta_loads = [1.0, 1.0, 1.0, 1.0, 1.0, 8.0, 8.0, 8.0]

    def tenant_rounds():
        for it in range(1, len(alpha_loads) + 1):
            yield ctx.sim.timeout(0.4)
            for tenant, load in (("alpha", alpha_loads[it - 1]),
                                 ("beta", beta_loads[it - 1])):
                payload = VirtualPayload((max(1, int((1 << 14) * load)),), "float64")
                blks = [(b, payload) for b in range(8)]
                yield from ctx.sessions[tenant].handle.run_resilient_iteration(
                    it, blks, max_attempts=8
                )
            yield from controller.step_from_trace()

    drive(ctx.sim, tenant_rounds(), max_time=1200)
    kinds = [e.kind for e in controller.events]
    result = _finish(ctx, {
        "alpha_charges": controller.charged_resizes("alpha"),
        "beta_charges": controller.charged_resizes("beta"),
        "servers": len(ctx.deployment.live_daemons()),
        "kinds": kinds,
    })
    if controller.charged_resizes("alpha") > tenants["alpha"].resize_budget:
        result.violations.append("alpha was charged past its resize budget")
    if "budget_exhausted" not in kinds:
        result.violations.append("alpha's escalation never hit its budget fuse")
    if controller.charged_resizes("beta") < 1:
        result.violations.append(
            "beta's burst never bought a resize (starved by alpha's)"
        )
    return result


# ---------------------------------------------------------------------------
# SSG-targeted faults
@scenario
def scenario_gossip_false_suspicion(seed: int = 0) -> ScenarioResult:
    """Suppress all probes of one healthy member long enough to form a
    suspicion, then stop: refutation (incarnation bump) must win."""
    ctx = build_stack(seed, swim=_fast_swim(suspect_timeout=3.0))
    t = ctx.t0
    victim_name = ctx.servers[1]
    ctx.arm(FaultPlan((
        GossipSuppression(t + 1.0, t + 2.2, target=victim_name),
    )))
    sizes = drive(ctx.sim, _workload(ctx, iterations=4, gap=0.7), max_time=600)
    victim = next(d for d in ctx.deployment.daemons if d.name == victim_name)
    result = _finish(ctx, {"view_sizes": sizes,
                           "victim_incarnation": victim.agent.incarnation},
                     settle=8.0)
    if victim.agent.incarnation < 1:
        result.violations.append(
            "suppression never forced a suspicion (victim never refuted); "
            "widen the window"
        )
    return result


# ---------------------------------------------------------------------------
# the kitchen sink
@scenario
def scenario_combo_random(seed: int = 0) -> ScenarioResult:
    """A fully random plan drawn from the seeded stream: the scenario
    that keeps growing the regression corpus — every seed is a new
    schedule, and any seed that ever fails gets pinned in the tests."""
    ctx = build_stack(seed, n_servers=4, stage_timeout=1.5, data_timeout=4.0,
                      control_timeout=1.0)
    rng = ctx.sim.rng.stream("chaos.plan")
    plan = FaultPlan.random(rng, ctx.servers, horizon=15.0, client=CLIENT)
    offset = tuple(
        type(f)(**{**{fld: getattr(f, fld) for fld in f.__dataclass_fields__},
                   **({"at": f.at + ctx.t0} if hasattr(f, "at")
                      else {"start": f.start + ctx.t0, "end": f.end + ctx.t0})})
        for f in plan
    )
    ctx.arm(FaultPlan(offset, note=plan.note))
    sizes = drive(ctx.sim, _workload(ctx, iterations=5, attempts=10, gap=1.0), max_time=900)
    return _finish(ctx, {"view_sizes": sizes, "plan": ctx.plan.describe()})
