"""Invariant checking for chaos runs (DESIGN §6 made executable).

The :class:`InvariantMonitor` passively observes a deployment — it
subscribes to tracer span completions and to every SSG agent's
membership callbacks — and records violations of the protocol's safety
properties:

1. **Frozen-view agreement** — when a client's 2PC activate succeeds,
   every live member of the committed view must hold exactly that view
   frozen for the (pipeline, iteration).
2. **No false deaths** — SWIM must never permanently declare a live,
   reachable member dead. Members the fault plan crashed, hung, or
   partitioned are exempt (their death verdicts reflect real failures);
   a gossip-suppression target is *not* exempt, because suppression
   windows are sized to end in refutation.
3. **Single block ownership** — after a successful execute, every
   staged block of that iteration lives on exactly one server of the
   agreed view (duplicated RPC delivery or stage retries must never
   double-stage).
4. **Convergence** — once faults stop, the membership views of all
   running daemons agree again (checked by :meth:`final_check`).
5. **No block loss** — when an iteration re-activates with recovery
   (DESIGN §11), every block the client successfully staged is either
   held by a live server or explicitly reported ``missing``; and with
   fewer failures than the replication factor (``f < K``), nothing may
   be reported missing at all.

Violations accumulate as human-readable strings; :meth:`assert_ok`
turns them into one test failure.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.simtsan import untracked
from repro.chaos.faults import name_of

__all__ = ["InvariantMonitor"]


class InvariantMonitor:
    """Attachable invariant checker for one deployment."""

    def __init__(self, sim, deployment):
        self.sim = sim
        self.deployment = deployment
        self.violations: List[str] = []
        #: Names whose death verdicts are legitimate (crashed / hung /
        #: partitioned by the plan, or failed by the scenario itself).
        self.exempt: Set[str] = set()
        self.deaths_seen: List[Tuple[float, str, str]] = []
        self._watched: Set[str] = set()
        self._attached = False
        #: Blocks the client successfully staged, per (pipeline, iter).
        self._staged: Dict[Tuple[str, int], Set[int]] = {}
        #: Frozen view of the last committed activate per (pipeline, iter).
        self._views: Dict[Tuple[str, int], Tuple[str, ...]] = {}

    # ------------------------------------------------------------------
    def attach(self) -> "InvariantMonitor":
        if self._attached:
            return self
        self._attached = True
        self.sim.trace.on_end.append(self._on_span)
        self.watch_all()
        return self

    def detach(self) -> None:
        if not self._attached:
            return
        self._attached = False
        try:
            self.sim.trace.on_end.remove(self._on_span)
        except ValueError:
            pass

    def watch_all(self) -> None:
        """Subscribe to every daemon's membership callbacks (including
        ones added elastically after :meth:`attach`)."""
        for daemon in self.deployment.daemons:
            if daemon.name in self._watched:
                continue
            self._watched.add(daemon.name)
            daemon.agent.add_observer(self._observer_for(daemon))

    def note_failure(self, server: str) -> None:
        """Exempt ``server`` from the no-false-death invariant (the
        fault plan really did crash/hang/partition it)."""
        self.exempt.add(server)

    # ------------------------------------------------------------------
    # membership: invariant 2
    def _observer_for(self, daemon):
        def observe(event: str, member) -> None:
            if event != "died":
                return
            name = name_of(member)
            self.deaths_seen.append((self.sim.now, daemon.name, name))
            if name in self.exempt or daemon.name in self.exempt:
                # Either the victim really failed, or the *observer* is
                # the faulted one (a hung/partitioned daemon correctly
                # sees everyone else as unreachable).
                return
            victim = self._daemon_by_name(name)
            if victim is not None and victim.running:
                self.violations.append(
                    f"t={self.sim.now:.2f}: {daemon.name} declared live member "
                    f"{name} dead (no injected failure)"
                )

        return observe

    def _daemon_by_name(self, name: str):
        for daemon in self.deployment.daemons:
            if daemon.name == name:
                return daemon
        return None

    def _daemon_by_address(self, addr_str: str):
        return self._daemon_by_name(name_of(addr_str))

    # ------------------------------------------------------------------
    # spans: invariants 1 and 3
    def _on_span(self, span) -> None:
        self.watch_all()
        # The monitor audits protocol state without being part of the
        # protocol: its reads must not register as SimTSan accesses.
        with untracked(self.sim):
            if span.name == "colza.activate" and "view" in span.tags:
                if "recovered" in span.tags:
                    # The NoBlockLoss audit compares against the view
                    # of the *failed* activation, so it runs before
                    # this activate's view replaces it.
                    self._check_no_block_loss(span)
                self._check_frozen_agreement(span)
                self._views[(span.tags["pipeline"], span.tags["iteration"])] = tuple(
                    span.tags["view"].split(";")
                )
            elif span.name == "colza.stage":
                key = (span.tags.get("pipeline"), span.tags.get("iteration"))
                block_id = span.tags.get("block")
                if key[0] is not None and block_id is not None:
                    self._staged.setdefault(key, set()).add(block_id)
            elif span.name == "colza.deactivate":
                key = (span.tags.get("pipeline"), span.tags.get("iteration"))
                self._staged.pop(key, None)
                self._views.pop(key, None)
            elif span.name == "colza.execute":
                self._check_block_ownership(
                    span.tags.get("pipeline"), span.tags.get("iteration")
                )

    def _check_frozen_agreement(self, span) -> None:
        view: Tuple[str, ...] = tuple(span.tags["view"].split(";"))
        pipeline = span.tags["pipeline"]
        iteration = span.tags["iteration"]
        for addr_str in view:
            daemon = self._daemon_by_address(addr_str)
            if daemon is None or not daemon.running:
                # Crashed between its commit and the span end: the next
                # activate/retry deals with it, nothing to agree on.
                continue
            provider = daemon.provider
            backend = provider.pipelines.get(pipeline)
            if backend is None or (pipeline, iteration) not in provider._active:
                self.violations.append(
                    f"t={self.sim.now:.2f}: activate({pipeline}#{iteration}) "
                    f"committed but {daemon.name} is not frozen for it"
                )
                continue
            theirs = tuple(str(a) for a in backend.current_view)
            if theirs != view:
                self.violations.append(
                    f"t={self.sim.now:.2f}: frozen-view disagreement at "
                    f"{daemon.name} for {pipeline}#{iteration}: "
                    f"{theirs} != {view}"
                )

    def _check_block_ownership(self, pipeline: Optional[str], iteration) -> None:
        if pipeline is None or iteration is None:
            return
        # Group by the frozen view each server holds: a stale server
        # stranded with an old activation (e.g. it missed an abort while
        # partitioned) is its own group, not a double-owner.
        groups: Dict[Tuple[str, ...], Dict[int, int]] = {}
        for daemon in self.deployment.live_daemons():
            provider = daemon.provider
            if (pipeline, iteration) not in provider._active:
                continue
            backend = provider.pipelines.get(pipeline)
            if backend is None:
                continue
            counts = groups.setdefault(
                tuple(str(a) for a in backend.current_view), {}
            )
            for block in backend.staged.get(iteration, []):
                counts[block.block_id] = counts.get(block.block_id, 0) + 1
        for view, counts in groups.items():
            for block_id, owners in counts.items():
                if owners != 1:
                    self.violations.append(
                        f"t={self.sim.now:.2f}: block {block_id} of "
                        f"{pipeline}#{iteration} owned by {owners} servers "
                        f"in view {view}"
                    )

    def _check_no_block_loss(self, span) -> None:
        """Invariant 5: recovery accounts for every staged block."""
        pipeline = span.tags["pipeline"]
        iteration = span.tags["iteration"]
        key = (pipeline, iteration)
        expected = set(self._staged.get(key, ()))
        if not expected:
            return
        missing = set(span.tags.get("missing_blocks") or ())
        present: Set[int] = set()
        factor = 1
        for daemon in self.deployment.live_daemons():
            backend = daemon.provider.pipelines.get(pipeline)
            if backend is None:
                continue
            factor = max(factor, backend.replication_factor)
            for block in backend.staged.get(iteration, []):
                present.add(block.block_id)
        lost = sorted(expected - present - missing)
        if lost:
            self.violations.append(
                f"t={self.sim.now:.2f}: blocks {lost} of {pipeline}#{iteration} "
                f"lost after recovery (neither held by a live server nor "
                f"reported missing)"
            )
        if missing:
            prev_view = self._views.get(key)
            if prev_view is None:
                return
            failed = [
                addr
                for addr in prev_view
                if (d := self._daemon_by_address(addr)) is None or not d.running
            ]
            if len(failed) < factor:
                self.violations.append(
                    f"t={self.sim.now:.2f}: recovery of {pipeline}#{iteration} "
                    f"reported blocks {sorted(missing)} missing although only "
                    f"f={len(failed)} of the view failed with K={factor} "
                    f"(replicas should have covered it)"
                )

    # ------------------------------------------------------------------
    def final_check(self) -> List[str]:
        """Invariant 4, run once the scenario has settled: all running
        daemons' membership views must agree."""
        if not self.deployment.converged():
            views = {
                d.name: [str(a) for a in d.agent.members()]
                for d in self.deployment.live_daemons()
            }
            self.violations.append(
                f"t={self.sim.now:.2f}: membership not converged after "
                f"faults ended: {views}"
            )
        return self.violations

    def assert_ok(self) -> None:
        if self.violations:
            raise AssertionError(
                "invariant violations:\n" + "\n".join(self.violations)
            )
