"""Invariant checking for chaos runs (DESIGN §6 made executable).

The :class:`InvariantMonitor` passively observes a deployment — it
subscribes to tracer span completions and to every SSG agent's
membership callbacks — and records violations of the protocol's safety
properties:

1. **Frozen-view agreement** — when a client's 2PC activate succeeds,
   every live member of the committed view must hold exactly that view
   frozen for the (pipeline, iteration).
2. **No false deaths** — SWIM must never permanently declare a live,
   reachable member dead. Members the fault plan crashed, hung, or
   partitioned are exempt (their death verdicts reflect real failures);
   a gossip-suppression target is *not* exempt, because suppression
   windows are sized to end in refutation.
3. **Single block ownership** — after a successful execute, every
   staged block of that iteration lives on exactly one server of the
   agreed view (duplicated RPC delivery or stage retries must never
   double-stage).
4. **Convergence** — once faults stop, the membership views of all
   running daemons agree again (checked by :meth:`final_check`).
5. **No block loss** — when an iteration re-activates with recovery
   (DESIGN §11), every block the client successfully staged is either
   held by a live server or explicitly reported ``missing``; and with
   fewer failures than the replication factor (``f < K``), nothing may
   be reported missing at all.
6. **Tenant isolation** (DESIGN §13, :class:`TenantIsolation`) — on a
   multi-tenant fabric, per-tenant quotas are never exceeded on any
   daemon, every staged block is covered by a charge in its owning
   tenant's accounting, and no state (pipelines, activation epochs,
   prepared votes, replicas) ever exists under a tenant the daemon has
   not admitted — so a detach, abort, or crash recovery in one tenant
   can never strand or consume another tenant's data.
7. **Controller safety** (DESIGN §16, :class:`ControllerSafety`) — a
   watched SLO autoscaler never steers the group outside
   ``[min_servers, max_servers]``, never overlaps resizes, respects
   its cooldown, and degrades instead of raising.

Violations accumulate as human-readable strings; :meth:`assert_ok`
turns them into one test failure.

The span names and metric counters this monitor consumes
(``colza.activate``/``colza.stage``/``colza.deactivate``/
``colza.execute``, the per-tenant quota gauges) are part of the
statically checked metric contract: flowcheck's FC010 pass (DESIGN
§14) verifies at review time that every span/metric name read here is
actually produced somewhere in the tree, so a renamed producer breaks
``make check`` instead of silently turning a chaos invariant into a
no-op.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.simtsan import untracked
from repro.chaos.faults import name_of
from repro.core.tenancy import tenant_of

__all__ = ["ControllerSafety", "InvariantMonitor", "TenantIsolation"]


class ControllerSafety:
    """Invariant 7: the SLO autoscaler never makes things worse.

    Audits a :class:`repro.core.autoscale.SloAutoscaler`'s replayable
    event log (DESIGN §16) *independently* of the controller's own
    bookkeeping — the log records what happened, this class re-derives
    what was allowed:

    - **Bounds**: every decision/resize target lies in
      ``[min_servers, max_servers]``, and the live server count never
      exceeds ``max_servers`` at any event (external crashes may dip
      the count below ``min_servers``; the controller may never *steer*
      outside the band).
    - **Single resize in flight**: ``resize_start`` events strictly
      alternate with their ``resize_done``/``resize_failed`` terminals.
    - **Cooldown respected**: between a resize terminal and the next
      ``resize_start``, at least ``cooldown_iterations`` control steps
      with fresh telemetry must pass (the event log's ``tick`` clock).
    - **Degraded instead of exception**: the event log contains no
      ``error`` events — a controller-internal exception is caught and
      recorded, and this audit turns it into a scenario failure; and a
      controller currently degraded says so on its
      ``autoscale.controller_degraded`` gauge.
    """

    def __init__(self, monitor: "InvariantMonitor", controller):
        self.monitor = monitor
        self.controller = controller

    def _flag(self, message: str) -> None:
        self.monitor.violations.append(
            f"t={self.monitor.sim.now:.2f}: [controller-safety] {message}"
        )

    def check(self) -> None:
        ctl = self.controller
        slo = ctl.slo
        in_flight = 0
        last_terminal_tick: Optional[int] = None
        for ev in ctl.events:
            if ev.kind == "error":
                self._flag(f"controller hit an internal error: {ev.detail}")
            if ev.servers > slo.max_servers:
                self._flag(
                    f"{ev.servers} live servers at {ev.kind!r} exceeds "
                    f"max_servers={slo.max_servers}"
                )
            if ev.target and not (
                slo.min_servers <= ev.target <= slo.max_servers
            ):
                self._flag(
                    f"{ev.kind} targeted {ev.target} servers, outside "
                    f"[{slo.min_servers}, {slo.max_servers}]"
                )
            if ev.kind == "resize_start":
                in_flight += 1
                if in_flight > 1:
                    self._flag("a resize started while one was in flight")
                if (
                    last_terminal_tick is not None
                    and ev.tick - last_terminal_tick < slo.cooldown_iterations
                ):
                    self._flag(
                        f"resize at tick {ev.tick} only "
                        f"{ev.tick - last_terminal_tick} fresh steps after "
                        f"the previous one (cooldown is "
                        f"{slo.cooldown_iterations})"
                    )
            elif ev.kind in ("resize_done", "resize_failed"):
                in_flight -= 1
                if in_flight < 0:
                    self._flag(f"{ev.kind} without a matching resize_start")
                last_terminal_tick = ev.tick
        if in_flight > 0:
            self._flag("a resize was left in flight at scenario end")
        gauge_value = (
            self.monitor.sim.metrics.scope("autoscale")
            .gauge("controller_degraded")
            .value
        )
        if bool(gauge_value) != bool(ctl.degraded):
            self._flag(
                f"controller_degraded gauge ({gauge_value}) disagrees with "
                f"the controller's state ({ctl.degraded})"
            )


class TenantIsolation:
    """Invariant 6: multi-tenant isolation audits (DESIGN §13).

    Every check is *instantaneously* valid — it holds at any event
    boundary, not just at quiescence — so the monitor can run them on
    arbitrary span completions without racing in-flight protocol
    operations of other tenants:

    - **Quota ceilings**: a tenant's charged blocks/bytes on a daemon
      never exceed its quota (the provider reserves before it pulls,
      so even concurrent stages cannot jointly overshoot).
    - **Charge coverage**: every primary staged block is charged to
      the tenant owning its pipeline (charges precede staging; they
      are only released when the data is actually dropped).
    - **Namespace containment**: every pipeline, activation epoch,
      prepared vote and quota charge on a daemon belongs to an
      admitted tenant, and every replica is held for a pipeline that
      exists locally — state outliving a detach (or appearing under a
      foreign namespace) is a hard failure.
    """

    def __init__(self, monitor: "InvariantMonitor"):
        self.monitor = monitor

    def _flag(self, message: str) -> None:
        self.monitor.violations.append(
            f"t={self.monitor.sim.now:.2f}: [tenant-isolation] {message}"
        )

    def check_quotas(self) -> None:
        for daemon in self.monitor.deployment.live_daemons():
            registry = daemon.provider.tenants
            for tenant in registry.tenants():
                blocks, nbytes = registry.usage(tenant)
                quota = registry.quota_for(tenant)
                if quota.max_blocks is not None and blocks > quota.max_blocks:
                    self._flag(
                        f"{daemon.name} holds {blocks} blocks for tenant "
                        f"{tenant!r}, quota is {quota.max_blocks}"
                    )
                if quota.max_bytes is not None and nbytes > quota.max_bytes:
                    self._flag(
                        f"{daemon.name} holds {nbytes} bytes for tenant "
                        f"{tenant!r}, quota is {quota.max_bytes}"
                    )

    def check_charge_coverage(self) -> None:
        for daemon in self.monitor.deployment.live_daemons():
            registry = daemon.provider.tenants
            for name, backend in sorted(daemon.provider.pipelines.items()):
                tenant = tenant_of(name)
                state = registry._states.get(tenant)
                for iteration, blocks in sorted(backend.staged.items()):
                    charged = (
                        state.charges.get((name, iteration), {})
                        if state is not None
                        else {}
                    )
                    for block in blocks:
                        if block.block_id not in charged:
                            self._flag(
                                f"{daemon.name} stages block {block.block_id} "
                                f"of {name}#{iteration} without a charge to "
                                f"tenant {tenant!r}"
                            )

    def check_containment(self) -> None:
        for daemon in self.monitor.deployment.live_daemons():
            provider = daemon.provider
            registry = provider.tenants
            if registry.configured:
                admitted = set(registry.tenants())
                for name in sorted(provider.pipelines):
                    if tenant_of(name) not in admitted:
                        self._flag(
                            f"{daemon.name} hosts pipeline {name!r} of "
                            f"unadmitted tenant {tenant_of(name)!r}"
                        )
                for key in sorted(provider._active) + sorted(provider._prepared):
                    if tenant_of(key[0]) not in admitted:
                        self._flag(
                            f"{daemon.name} holds 2PC state for {key} of "
                            f"unadmitted tenant {tenant_of(key[0])!r}"
                        )
            for key in sorted(provider.replicas._blocks):
                if key[0] not in provider.pipelines:
                    self._flag(
                        f"{daemon.name} holds replicas for {key[0]}#{key[1]} "
                        f"but no such pipeline exists there (leak past a "
                        f"destroy/detach)"
                    )

    def check_all(self) -> None:
        self.check_quotas()
        self.check_charge_coverage()
        self.check_containment()


class InvariantMonitor:
    """Attachable invariant checker for one deployment."""

    def __init__(self, sim, deployment):
        self.sim = sim
        self.deployment = deployment
        self.violations: List[str] = []
        #: Names whose death verdicts are legitimate (crashed / hung /
        #: partitioned by the plan, or failed by the scenario itself).
        self.exempt: Set[str] = set()
        self.deaths_seen: List[Tuple[float, str, str]] = []
        self._watched: Set[str] = set()
        self._attached = False
        #: Blocks the client successfully staged, per (pipeline, iter).
        self._staged: Dict[Tuple[str, int], Set[int]] = {}
        #: Frozen view of the last committed activate per (pipeline, iter).
        self._views: Dict[Tuple[str, int], Tuple[str, ...]] = {}
        #: Invariant 6: multi-tenant isolation audits (DESIGN §13).
        self.tenancy = TenantIsolation(self)
        #: Invariant 7: controller-safety audits, one per watched
        #: :class:`~repro.core.autoscale.SloAutoscaler` (DESIGN §16).
        self.controllers: List[ControllerSafety] = []

    # ------------------------------------------------------------------
    def attach(self) -> "InvariantMonitor":
        if self._attached:
            return self
        self._attached = True
        self.sim.trace.on_end.append(self._on_span)
        self.watch_all()
        return self

    def detach(self) -> None:
        if not self._attached:
            return
        self._attached = False
        try:
            self.sim.trace.on_end.remove(self._on_span)
        except ValueError:
            pass

    def watch_all(self) -> None:
        """Subscribe to every daemon's membership callbacks (including
        ones added elastically after :meth:`attach`)."""
        for daemon in self.deployment.daemons:
            if daemon.name in self._watched:
                continue
            self._watched.add(daemon.name)
            daemon.agent.add_observer(self._observer_for(daemon))

    def watch_controller(self, controller) -> "ControllerSafety":
        """Audit an autoscaler's event log at :meth:`final_check`."""
        safety = ControllerSafety(self, controller)
        self.controllers.append(safety)
        return safety

    def note_failure(self, server: str) -> None:
        """Exempt ``server`` from the no-false-death invariant (the
        fault plan really did crash/hang/partition it)."""
        self.exempt.add(server)

    # ------------------------------------------------------------------
    # membership: invariant 2
    def _observer_for(self, daemon):
        def observe(event: str, member) -> None:
            if event != "died":
                return
            name = name_of(member)
            self.deaths_seen.append((self.sim.now, daemon.name, name))
            if name in self.exempt or daemon.name in self.exempt:
                # Either the victim really failed, or the *observer* is
                # the faulted one (a hung/partitioned daemon correctly
                # sees everyone else as unreachable).
                return
            victim = self._daemon_by_name(name)
            if victim is not None and victim.running:
                self.violations.append(
                    f"t={self.sim.now:.2f}: {daemon.name} declared live member "
                    f"{name} dead (no injected failure)"
                )

        return observe

    def _daemon_by_name(self, name: str):
        for daemon in self.deployment.daemons:
            if daemon.name == name:
                return daemon
        return None

    def _daemon_by_address(self, addr_str: str):
        return self._daemon_by_name(name_of(addr_str))

    # ------------------------------------------------------------------
    # spans: invariants 1 and 3
    def _on_span(self, span) -> None:
        self.watch_all()
        # The monitor audits protocol state without being part of the
        # protocol: its reads must not register as SimTSan accesses.
        with untracked(self.sim):
            if span.name == "colza.activate" and "view" in span.tags:
                if "recovered" in span.tags:
                    # The NoBlockLoss audit compares against the view
                    # of the *failed* activation, so it runs before
                    # this activate's view replaces it.
                    self._check_no_block_loss(span)
                self._check_frozen_agreement(span)
                self._views[(span.tags["pipeline"], span.tags["iteration"])] = tuple(
                    span.tags["view"].split(";")
                )
                self.tenancy.check_containment()
            elif span.name == "colza.stage":
                key = (span.tags.get("pipeline"), span.tags.get("iteration"))
                block_id = span.tags.get("block")
                if key[0] is not None and block_id is not None:
                    self._staged.setdefault(key, set()).add(block_id)
                self.tenancy.check_quotas()
                self.tenancy.check_charge_coverage()
            elif span.name == "colza.deactivate":
                key = (span.tags.get("pipeline"), span.tags.get("iteration"))
                self._staged.pop(key, None)
                self._views.pop(key, None)
                self.tenancy.check_containment()
            elif span.name == "colza.execute":
                self._check_block_ownership(
                    span.tags.get("pipeline"), span.tags.get("iteration")
                )

    def _check_frozen_agreement(self, span) -> None:
        view: Tuple[str, ...] = tuple(span.tags["view"].split(";"))
        pipeline = span.tags["pipeline"]
        iteration = span.tags["iteration"]
        for addr_str in view:
            daemon = self._daemon_by_address(addr_str)
            if daemon is None or not daemon.running:
                # Crashed between its commit and the span end: the next
                # activate/retry deals with it, nothing to agree on.
                continue
            provider = daemon.provider
            backend = provider.pipelines.get(pipeline)
            if backend is None or (pipeline, iteration) not in provider._active:
                self.violations.append(
                    f"t={self.sim.now:.2f}: activate({pipeline}#{iteration}) "
                    f"committed but {daemon.name} is not frozen for it"
                )
                continue
            theirs = tuple(str(a) for a in backend.current_view)
            if theirs != view:
                self.violations.append(
                    f"t={self.sim.now:.2f}: frozen-view disagreement at "
                    f"{daemon.name} for {pipeline}#{iteration}: "
                    f"{theirs} != {view}"
                )

    def _check_block_ownership(self, pipeline: Optional[str], iteration) -> None:
        if pipeline is None or iteration is None:
            return
        # Group by the frozen view each server holds: a stale server
        # stranded with an old activation (e.g. it missed an abort while
        # partitioned) is its own group, not a double-owner.
        groups: Dict[Tuple[str, ...], Dict[int, int]] = {}
        for daemon in self.deployment.live_daemons():
            provider = daemon.provider
            if (pipeline, iteration) not in provider._active:
                continue
            backend = provider.pipelines.get(pipeline)
            if backend is None:
                continue
            counts = groups.setdefault(
                tuple(str(a) for a in backend.current_view), {}
            )
            for block in backend.staged.get(iteration, []):
                counts[block.block_id] = counts.get(block.block_id, 0) + 1
        for view, counts in groups.items():
            for block_id, owners in counts.items():
                if owners != 1:
                    self.violations.append(
                        f"t={self.sim.now:.2f}: block {block_id} of "
                        f"{pipeline}#{iteration} owned by {owners} servers "
                        f"in view {view}"
                    )

    def _check_no_block_loss(self, span) -> None:
        """Invariant 5: recovery accounts for every staged block."""
        pipeline = span.tags["pipeline"]
        iteration = span.tags["iteration"]
        key = (pipeline, iteration)
        expected = set(self._staged.get(key, ()))
        if not expected:
            return
        missing = set(span.tags.get("missing_blocks") or ())
        present: Set[int] = set()
        factor = 1
        for daemon in self.deployment.live_daemons():
            backend = daemon.provider.pipelines.get(pipeline)
            if backend is None:
                continue
            factor = max(factor, backend.replication_factor)
            for block in backend.staged.get(iteration, []):
                present.add(block.block_id)
        lost = sorted(expected - present - missing)
        if lost:
            self.violations.append(
                f"t={self.sim.now:.2f}: blocks {lost} of {pipeline}#{iteration} "
                f"lost after recovery (neither held by a live server nor "
                f"reported missing)"
            )
        if missing:
            prev_view = self._views.get(key)
            if prev_view is None:
                return
            failed = [
                addr
                for addr in prev_view
                if (d := self._daemon_by_address(addr)) is None or not d.running
            ]
            if len(failed) < factor:
                self.violations.append(
                    f"t={self.sim.now:.2f}: recovery of {pipeline}#{iteration} "
                    f"reported blocks {sorted(missing)} missing although only "
                    f"f={len(failed)} of the view failed with K={factor} "
                    f"(replicas should have covered it)"
                )

    # ------------------------------------------------------------------
    def final_check(self) -> List[str]:
        """Invariants 4 and 6, run once the scenario has settled: all
        running daemons' membership views must agree, and tenant
        isolation must hold at quiescence."""
        with untracked(self.sim):
            self.tenancy.check_all()
            for safety in self.controllers:
                safety.check()
        if not self.deployment.converged():
            views = {
                d.name: [str(a) for a in d.agent.members()]
                for d in self.deployment.live_daemons()
            }
            self.violations.append(
                f"t={self.sim.now:.2f}: membership not converged after "
                f"faults ended: {views}"
            )
        return self.violations

    def assert_ok(self) -> None:
        if self.violations:
            raise AssertionError(
                "invariant violations:\n" + "\n".join(self.violations)
            )
