"""The chaos engine: installs a :class:`FaultPlan` into a simulation.

The engine is a thin adapter between pure-data fault specs and the
kernel's interceptor points:

- ``"na.send"``     -> :class:`LinkFault` / :class:`Partition`
- ``"na.rdma"``     -> :class:`RdmaFault`
- ``"hg.handler"``  -> :class:`HangFault` (inbound freeze)
- ``"margo.compute"`` -> :class:`SlowFault`
- ``"ssg.gossip"``  -> :class:`GossipSuppression` + :class:`HangFault`
  (outbound probe suppression)

Crashes (and hang ``kill_at_end``) are scheduled as kernel tasks that
call ``daemon.crash()`` at the planned time. Every injected verdict
bumps a ``chaos.*`` tracer counter, so the trace digest covers not just
what the system did but what was done *to* it.

Probabilistic faults draw from one named rng stream
(``"chaos.engine"``); interceptors fire in deterministic simulation
order, so the draw sequence — and therefore the whole run — replays
bit-for-bit under the same seed.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.chaos.faults import (
    CrashFault,
    FaultPlan,
    GossipSuppression,
    HangFault,
    LinkFault,
    Partition,
    RdmaFault,
    SlowFault,
    name_of,
)
from repro.na.fabric import LinkAction

__all__ = ["ChaosEngine"]


class ChaosEngine:
    """Installs/uninstalls one plan's interceptors and crash tasks."""

    def __init__(self, sim, plan: FaultPlan, deployment=None, monitor=None):
        self.sim = sim
        self.plan = plan
        self.deployment = deployment
        self.monitor = monitor
        self.rng = sim.rng.stream("chaos.engine")
        self.installed = False
        self._points: List[Tuple[str, object]] = []
        self._crash_tasks: List = []

        self._link_faults = plan.of_type(LinkFault)
        self._partitions = plan.of_type(Partition)
        self._hangs = plan.of_type(HangFault)
        self._slows = plan.of_type(SlowFault)
        self._rdma_faults = plan.of_type(RdmaFault)
        self._suppressions = plan.of_type(GossipSuppression)

    # ------------------------------------------------------------------
    def install(self) -> "ChaosEngine":
        if self.installed:
            raise RuntimeError("chaos engine already installed")
        self.installed = True
        if self.monitor is not None:
            for name in self.plan.exempt_names():
                self.monitor.note_failure(name)
        if self._link_faults or self._partitions:
            self._register("na.send", self._on_send)
        if self._rdma_faults:
            self._register("na.rdma", self._on_rdma)
        if self._hangs:
            self._register("hg.handler", self._on_handler)
        if self._slows:
            self._register("margo.compute", self._on_compute)
        if self._suppressions or self._hangs:
            self._register("ssg.gossip", self._on_gossip)
        for fault in self.plan.of_type(CrashFault):
            self._schedule_kill(fault.at, fault.server)
        for fault in self._hangs:
            if fault.kill_at_end:
                self._schedule_kill(fault.end, fault.server)
        return self

    def uninstall(self) -> None:
        for point, fn in self._points:
            self.sim.remove_interceptor(point, fn)
        self._points.clear()
        for task in self._crash_tasks:
            if not task.finished:
                task.kill()
        self._crash_tasks.clear()
        self.installed = False

    def _register(self, point: str, fn) -> None:
        self.sim.add_interceptor(point, fn)
        self._points.append((point, fn))

    # ------------------------------------------------------------------
    def _active(self, fault) -> bool:
        return fault.start <= self.sim.now < fault.end

    def _schedule_kill(self, at: float, server: str) -> None:
        self._crash_tasks.append(
            self.sim.spawn_at(at, self._kill(server), name=f"chaos.crash.{server}")
        )

    def _kill(self, server: str):
        yield self.sim.timeout(0)
        daemon = self._daemon(server)
        if daemon is None or not daemon.running:
            return
        if self.monitor is not None:
            self.monitor.note_failure(server)
        self.sim.trace.add("chaos.crash")
        daemon.crash()

    def _daemon(self, server: str):
        if self.deployment is None:
            return None
        for daemon in self.deployment.daemons:
            if daemon.name == server:
                return daemon
        return None

    # ------------------------------------------------------------------
    # interceptor callbacks
    def _on_send(self, src, dest, size, tag) -> Optional[LinkAction]:
        src_name, dst_name = name_of(src), name_of(dest)
        now = self.sim.now
        for part in self._partitions:
            if part.start <= now < part.end and part.severs(src_name, dst_name):
                self.sim.trace.add("chaos.partition_drop")
                return LinkAction(drop=True)
        drop = duplicate = False
        delay = 0.0
        matched = False
        for fault in self._link_faults:
            if not (fault.start <= now < fault.end) or not fault.matches(src_name, dst_name):
                continue
            matched = True
            if fault.drop_p > 0 and self.rng.random() < fault.drop_p:
                drop = True
            if fault.dup_p > 0 and self.rng.random() < fault.dup_p:
                duplicate = True
            if fault.delay > 0:
                delay += float(self.rng.uniform(0.0, fault.delay))
        if not matched:
            return None
        if drop:
            self.sim.trace.add("chaos.drop")
        if duplicate:
            self.sim.trace.add("chaos.dup")
        if delay > 0:
            self.sim.trace.add("chaos.delay")
        if drop or duplicate or delay > 0:
            return LinkAction(drop=drop, delay=delay, duplicate=duplicate)
        return None

    def _on_rdma(self, initiator, owner, nbytes) -> Optional[float]:
        factor = 1.0
        names = (name_of(initiator), name_of(owner))
        for fault in self._rdma_faults:
            if self._active(fault) and (
                fault.initiator is None or fault.initiator in names
            ):
                factor *= fault.factor
        if factor != 1.0:
            self.sim.trace.add("chaos.rdma_slow")
            return factor
        return None

    def _on_handler(self, instance_name: str, rpc_name: str) -> Optional[str]:
        name = name_of(instance_name)
        for fault in self._hangs:
            if self._active(fault) and fault.server == name:
                self.sim.trace.add("chaos.hang")
                return "hang"
        return None

    def _on_compute(self, instance_name: str) -> Optional[float]:
        name = name_of(instance_name)
        factor = 1.0
        for fault in self._slows:
            if self._active(fault) and fault.server == name:
                factor *= fault.factor
        if factor != 1.0:
            self.sim.trace.add("chaos.slow")
            return factor
        return None

    def _on_gossip(self, prober, target) -> Optional[bool]:
        prober_name, target_name = name_of(prober), name_of(target)
        for fault in self._hangs:
            # A hung process cannot probe out either.
            if self._active(fault) and fault.server == prober_name:
                self.sim.trace.add("chaos.gossip_suppressed")
                return True
        for fault in self._suppressions:
            if (
                self._active(fault)
                and fault.target == target_name
                and (fault.prober is None or fault.prober == prober_name)
            ):
                self.sim.trace.add("chaos.gossip_suppressed")
                return True
        return None
