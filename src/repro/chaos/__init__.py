"""Deterministic chaos engineering for the Colza reproduction.

Seeded fault injection (:mod:`repro.chaos.faults`,
:mod:`repro.chaos.engine`), invariant monitoring
(:mod:`repro.chaos.invariants`), and an end-to-end scenario fleet
(:mod:`repro.chaos.scenarios`). See DESIGN.md §7 for the taxonomy and
the determinism guarantee.
"""

from repro.chaos.engine import ChaosEngine
from repro.chaos.faults import (
    CrashFault,
    FaultPlan,
    GossipSuppression,
    HangFault,
    LinkFault,
    Partition,
    RdmaFault,
    SlowFault,
    name_of,
)
from repro.chaos.invariants import InvariantMonitor
from repro.chaos.scenarios import (
    SCENARIOS,
    ChaosContext,
    ScenarioResult,
    build_stack,
    run_scenario,
    scenario,
    scenario_names,
)

__all__ = [
    "SCENARIOS",
    "ChaosContext",
    "ChaosEngine",
    "CrashFault",
    "FaultPlan",
    "GossipSuppression",
    "HangFault",
    "InvariantMonitor",
    "LinkFault",
    "Partition",
    "RdmaFault",
    "ScenarioResult",
    "SlowFault",
    "build_stack",
    "name_of",
    "run_scenario",
    "scenario",
    "scenario_names",
]
