"""Fault taxonomy and deterministic fault plans.

A :class:`FaultPlan` is a pure-data description of *what goes wrong
when*: link-level drops/delays/duplications, bidirectional partitions,
process crashes, hangs, slow nodes, RDMA slowdowns, and targeted SSG
gossip suppression. Plans are either hand-written by a scenario or
drawn from a named :mod:`repro.sim.rng` stream via
:meth:`FaultPlan.random` — the same seed always yields a byte-identical
schedule, which is what makes chaos runs replayable.

All process-level faults reference endpoints by *instance name* (the
``colza-3`` part of ``na+sim://nid00003/colza-3``), never by address
object, so a plan can be built before the stack it will torment.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Optional, Sequence, Tuple

__all__ = [
    "CrashFault",
    "FaultPlan",
    "GossipSuppression",
    "HangFault",
    "LinkFault",
    "Partition",
    "RdmaFault",
    "SlowFault",
    "name_of",
]


def name_of(address) -> str:
    """Instance name behind an address (``mona-`` prefix stripped, so a
    daemon's Margo and MoNA endpoints match the same fault specs)."""
    name = str(address).rsplit("/", 1)[-1]
    if name.startswith("mona-"):
        name = name[5:]
    return name


@dataclass(frozen=True)
class LinkFault:
    """Probabilistic per-message mischief on matching links.

    ``src``/``dst`` are instance names; ``None`` is a wildcard. Each
    matching message during [start, end) independently draws drop /
    duplicate verdicts and a uniform extra delay in [0, ``delay``].
    """

    start: float
    end: float
    src: Optional[str] = None
    dst: Optional[str] = None
    drop_p: float = 0.0
    dup_p: float = 0.0
    delay: float = 0.0

    def matches(self, src_name: str, dst_name: str) -> bool:
        return (self.src is None or self.src == src_name) and (
            self.dst is None or self.dst == dst_name
        )


@dataclass(frozen=True)
class Partition:
    """Bidirectional partition: every message crossing between
    ``side_a`` and ``side_b`` is dropped during [start, end).

    An empty ``side_b`` means "everyone not in side_a" — the common
    isolate-one-node case without enumerating the rest of the machine.
    """

    start: float
    end: float
    side_a: Tuple[str, ...]
    side_b: Tuple[str, ...] = ()

    def severs(self, src_name: str, dst_name: str) -> bool:
        in_a_src, in_a_dst = src_name in self.side_a, dst_name in self.side_a
        if self.side_b:
            in_b_src, in_b_dst = src_name in self.side_b, dst_name in self.side_b
            return (in_a_src and in_b_dst) or (in_b_src and in_a_dst)
        return in_a_src != in_a_dst


@dataclass(frozen=True)
class CrashFault:
    """Kill the named daemon at ``at`` (no announcement; SWIM detects)."""

    at: float
    server: str


@dataclass(frozen=True)
class HangFault:
    """The named daemon stops responding during [start, end): every
    inbound RPC handler freezes (the ULT never yields back) and its
    outbound SWIM probes are suppressed. Indistinguishable from a crash
    to the rest of the group. With ``kill_at_end`` the process really
    dies at ``end`` — the clean way to model a hang long enough that
    SWIM (correctly, and terminally) declares it dead.
    """

    start: float
    end: float
    server: str
    kill_at_end: bool = False


@dataclass(frozen=True)
class SlowFault:
    """Multiply the named daemon's compute costs by ``factor`` during
    [start, end) — thermal throttling, a noisy neighbor."""

    start: float
    end: float
    server: str
    factor: float = 4.0


@dataclass(frozen=True)
class RdmaFault:
    """Multiply RDMA transfer costs by ``factor`` during [start, end);
    ``initiator`` (instance name) narrows it to one puller/pusher."""

    start: float
    end: float
    factor: float = 8.0
    initiator: Optional[str] = None


@dataclass(frozen=True)
class GossipSuppression:
    """Suppress SWIM probes *of* ``target`` during [start, end): direct
    pings and indirect ping-reqs about it time out, forcing false
    suspicion. ``prober`` narrows suppression to one prober; ``None``
    suppresses everyone's probes of the target."""

    start: float
    end: float
    target: str
    prober: Optional[str] = None


#: Fault types whose victims may legitimately be declared dead by SWIM
#: (the declaration reflects a real failure or unreachability, not a
#: protocol bug). Gossip suppression is deliberately absent: a
#: suppression window is expected to end in refutation, so a death of
#: its target is still an invariant violation.
_EXEMPTING = (CrashFault, HangFault, Partition)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of faults, plus derived conveniences."""

    faults: Tuple[object, ...] = ()
    note: str = ""

    def __iter__(self):
        return iter(self.faults)

    def of_type(self, kind) -> Tuple[object, ...]:
        return tuple(f for f in self.faults if isinstance(f, kind))

    def horizon(self) -> float:
        """Simulated time after which no fault is active any more."""
        ends = [getattr(f, "end", None) or getattr(f, "at", 0.0) for f in self.faults]
        return max(ends) if ends else 0.0

    def exempt_names(self) -> Tuple[str, ...]:
        """Instance names a monitor must allow to be declared dead."""
        names = []
        for f in self.faults:
            if not isinstance(f, _EXEMPTING):
                continue
            if isinstance(f, Partition):
                names.extend(f.side_a)
                names.extend(f.side_b)
            else:
                names.append(f.server)
        return tuple(dict.fromkeys(names))

    def describe(self) -> str:
        """Canonical multi-line rendering (stable across runs — part of
        what a determinism test can compare)."""
        lines = []
        for f in self.faults:
            parts = [type(f).__name__]
            for fld in fields(f):
                parts.append(f"{fld.name}={getattr(f, fld.name)!r}")
            lines.append(" ".join(parts))
        header = f"FaultPlan({self.note})" if self.note else "FaultPlan"
        return "\n".join([header] + sorted(lines))

    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        rng,
        servers: Sequence[str],
        horizon: float,
        client: Optional[str] = None,
        max_faults: int = 6,
        crash_budget: int = 1,
        note: str = "random",
    ) -> "FaultPlan":
        """Draw a plan from an rng stream (numpy Generator).

        Link mischief is confined to client<->server links so SWIM's
        server-to-server gossip stays clean (a random plan must not be
        able to fabricate a false death on its own); process faults
        (crash, slow) hit random servers. Same stream state, same
        arguments -> identical plan.
        """
        servers = list(servers)
        faults: list = []
        crashes_left = crash_budget if len(servers) > 2 else 0
        n = int(rng.integers(2, max_faults + 1))
        for _ in range(n):
            start = float(rng.uniform(0.0, horizon * 0.6))
            length = float(rng.uniform(0.5, max(0.6, horizon * 0.3)))
            end = min(start + length, horizon)
            kind = int(rng.integers(0, 4))
            if kind == 0 and client is not None:
                to_server = bool(rng.integers(0, 2))
                src, dst = (client, None) if to_server else (None, client)
                faults.append(
                    LinkFault(
                        start, end, src=src, dst=dst,
                        drop_p=float(rng.uniform(0.02, 0.15)),
                        dup_p=float(rng.uniform(0.0, 0.2)),
                    )
                )
            elif kind == 1 and client is not None:
                faults.append(
                    LinkFault(start, end, src=client, delay=float(rng.uniform(0.01, 0.1)))
                )
            elif kind == 2:
                victim = servers[int(rng.integers(0, len(servers)))]
                faults.append(SlowFault(start, end, server=victim,
                                        factor=float(rng.uniform(2.0, 6.0))))
            elif kind == 3 and crashes_left > 0:
                crashes_left -= 1
                victim = servers[int(rng.integers(0, len(servers)))]
                faults.append(CrashFault(at=start, server=victim))
            else:
                faults.append(RdmaFault(start, end, factor=float(rng.uniform(2.0, 8.0))))
        # At most one crash victim: a random plan must leave a quorum.
        return cls(faults=tuple(faults), note=note)
