"""Payload helpers: size accounting, virtual payloads, RDMA memory handles.

The simulator moves payloads by reference (zero-copy, RDMA-style): a
sender must not mutate a buffer until the matching receive/pull has
completed, exactly as with real RDMA registration. Two payload kinds
flow through the stack:

- real data: NumPy arrays (or any object with ``nbytes``), used by the
  examples and tests so pipelines do genuine computation;
- :class:`VirtualPayload`: shape/dtype metadata only, used by the
  paper-scale benchmarks so a 2 GB domain does not need 2 GB of RAM —
  the DES charges transfer and compute time from the declared size.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Optional, Tuple

import numpy as np

from repro.na.address import Address

__all__ = ["MemoryHandle", "VirtualPayload", "payload_nbytes"]


@dataclass(frozen=True)
class VirtualPayload:
    """A stand-in for an array: carries shape/dtype, no storage.

    ``virtual`` payloads traverse the exact same code paths as real
    arrays (staging, RDMA, compositing input sizes) so benchmark
    timing exercises identical control flow.
    """

    shape: Tuple[int, ...]
    dtype: str = "float64"

    @property
    def nbytes(self) -> int:
        n = int(np.prod(self.shape)) if self.shape else 1
        return n * np.dtype(self.dtype).itemsize

    @property
    def size(self) -> int:
        return int(np.prod(self.shape)) if self.shape else 1

    def like(self) -> "VirtualPayload":
        return self


def payload_nbytes(payload: Any) -> int:
    """Wire size of a payload in bytes.

    NumPy arrays and :class:`VirtualPayload` report exactly; ``bytes``
    and ``bytearray`` report their length; anything else is priced at
    its pickled size (the simulator's stand-in for serialization).
    """
    if payload is None:
        return 0
    nbytes = getattr(payload, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    # Containers are priced recursively (8-byte framing per element)
    # rather than pickled, so collectives shipping dicts of big arrays
    # don't pay real serialization cost inside the simulator.
    if isinstance(payload, (list, tuple, set)):
        return sum(payload_nbytes(p) + 8 for p in payload)
    if isinstance(payload, dict):
        return sum(payload_nbytes(k) + payload_nbytes(v) + 8 for k, v in payload.items())
    if isinstance(payload, (int, float, complex, bool)):
        return 8
    if isinstance(payload, str):
        return len(payload.encode())
    return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))


@dataclass
class MemoryHandle:
    """An RDMA-exposed region of a process's memory.

    Created by the owner (``expose``), shipped inside RPC arguments (a
    handle is tiny on the wire), and consumed by the remote side via
    :meth:`repro.na.fabric.Fabric.rdma_pull` — the Colza ``stage`` data
    path.
    """

    owner: Address
    payload: Any
    nbytes: int

    @classmethod
    def expose(cls, owner: Address, payload: Any) -> "MemoryHandle":
        return cls(owner=owner, payload=payload, nbytes=payload_nbytes(payload))

    @property
    def is_virtual(self) -> bool:
        return isinstance(self.payload, VirtualPayload)

    def slice(self, offset_bytes: int, nbytes: int) -> "MemoryHandle":
        """A sub-handle onto [offset, offset+nbytes) of this region.

        RDMA can address any part of a registered region; consumers use
        this to pull exactly the byte range they need (e.g. the SST
        engine's slab redistribution). NumPy payloads are sliced as
        views (zero-copy); virtual payloads shrink their declared size.
        """
        if offset_bytes < 0 or nbytes < 0 or offset_bytes + nbytes > self.nbytes:
            raise ValueError(
                f"slice [{offset_bytes}, {offset_bytes + nbytes}) outside "
                f"region of {self.nbytes} bytes"
            )
        if isinstance(self.payload, VirtualPayload):
            return MemoryHandle(self.owner, VirtualPayload((nbytes,), "uint8"), nbytes)
        if isinstance(self.payload, np.ndarray):
            flat = self.payload.reshape(-1).view(np.uint8)
            view = flat[offset_bytes : offset_bytes + nbytes]
            itemsize = self.payload.dtype.itemsize
            if offset_bytes % itemsize == 0 and nbytes % itemsize == 0:
                view = view.view(self.payload.dtype)
            return MemoryHandle(self.owner, view, nbytes)
        raise TypeError(f"cannot slice payload of type {type(self.payload)}")
