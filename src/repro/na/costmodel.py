"""Transport cost models calibrated against the paper's measurements.

Table I of the paper reports the time for 1000 send/recv operations on
Cori (Aries network) for four libraries; we read it as a per-message
one-way latency curve and interpolate piecewise-linearly in
``log2(size)`` between the measured anchors. Beyond the last anchor we
extrapolate with the bandwidth implied by the final segment, which is
the physically sensible large-message regime.

Two calibration regimes coexist (see DESIGN.md §5):

- **MoNA / NA are white boxes** — we implement their collectives, so
  only their *p2p* model is calibrated; collective times emerge from
  the tree algorithms in :mod:`repro.mona`.
- **Cray-mpich / OpenMPI are black boxes** — the paper measures them as
  opaque vendor libraries, so their collectives are calibrated directly
  from Table II (reduce at 512 processes) and scaled by tree depth for
  other process counts. :data:`REDUCE_CALIBRATION_512` holds those
  anchors; :mod:`repro.mpi` consumes them.

All anchor values are microseconds per operation, converted to seconds
here. Intra-node traffic uses a shared-memory profile (footnote 12 of
the paper credits MoNA's shmem path for its small-scale wins, so MoNA's
shmem profile is slightly better than the MPI ones).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

__all__ = [
    "CostModel",
    "P2P_CALIBRATION",
    "REDUCE_CALIBRATION_512",
    "get_cost_model",
    "interp_log_size",
]

_US = 1e-6  # microsecond, in seconds

# --- Table I anchors: (message bytes, per-op time in µs), internode. ----
P2P_CALIBRATION: Dict[str, List[Tuple[int, float]]] = {
    "craympich": [
        (8, 1.163),
        (128, 1.215),
        (2048, 1.709),
        (16384, 5.247),
        (32768, 6.773),
        (524288, 56.371),
    ],
    "openmpi": [
        (8, 1.527),
        (128, 1.608),
        (2048, 2.12),
        (16384, 61.451),  # rendezvous-protocol cliff the paper highlights
        (32768, 59.279),
        (524288, 109.472),
    ],
    "mona": [
        (8, 1.924),
        (128, 1.985),
        (2048, 2.714),
        (16384, 14.087),
        (32768, 15.305),
        (524288, 72.69),
    ],
    # Raw NA was only measured for small messages (Table I shows "-"
    # above 2 KiB). Larger sizes inherit MoNA's curve plus the
    # per-operation allocation overhead MoNA's request/buffer caching
    # removes (the paper's stated reason MoNA beats NA).
    "na": [
        (8, 2.103),
        (128, 2.122),
        (2048, 2.766),
        (16384, 14.087 + 0.35),
        (32768, 15.305 + 0.35),
        (524288, 72.69 + 0.35),
    ],
}

# --- Table II anchors: 512-process bxor reduce, per-op time in µs. ------
REDUCE_CALIBRATION_512: Dict[str, List[Tuple[int, float]]] = {
    "craympich": [
        (8, 93.7),
        (128, 90.7),
        (2048, 92.3),
        (16384, 79.2),
        (32768, 122.8),
    ],
    "openmpi": [
        (8, 204.8),
        (128, 229.9),
        (2048, 816.3),
        (16384, 54253.9),
        (32768, 219104.5),
    ],
}

# Shared-memory (intra-node) profiles: (latency µs, bandwidth GB/s).
_SHMEM_PROFILES: Dict[str, Tuple[float, float]] = {
    "craympich": (0.60, 12.0),
    "openmpi": (0.70, 10.0),
    "mona": (0.50, 15.0),  # footnote 12: MoNA's shmem path is strong
    "na": (0.85, 15.0),
}


def interp_log_size(anchors: Sequence[Tuple[int, float]], nbytes: int) -> float:
    """Piecewise-linear interpolation in log2(size) over ``anchors``.

    Below the first anchor: constant (latency floor). Beyond the last:
    linear in bytes with the bandwidth implied by the last segment.
    Returns microseconds.
    """
    if nbytes <= anchors[0][0]:
        return anchors[0][1]
    last_size, last_t = anchors[-1]
    if nbytes >= last_size:
        prev_size, prev_t = anchors[-2]
        bw_bytes_per_us = (last_size - prev_size) / max(last_t - prev_t, 1e-9)
        return last_t + (nbytes - last_size) / bw_bytes_per_us
    x = math.log2(nbytes)
    for (s0, t0), (s1, t1) in zip(anchors, anchors[1:]):
        if nbytes <= s1:
            x0, x1 = math.log2(s0), math.log2(s1)
            frac = (x - x0) / (x1 - x0)
            return t0 + frac * (t1 - t0)
    raise AssertionError("unreachable")  # pragma: no cover


@dataclass(frozen=True)
class CostModel:
    """Per-library message cost model.

    Parameters
    ----------
    name:
        Library name (``craympich`` / ``openmpi`` / ``mona`` / ``na``).
    p2p_anchors:
        Internode per-message (bytes, µs) calibration points.
    shmem_latency_us / shmem_bandwidth_gbps:
        Intra-node profile.
    rdma_setup_us / rdma_bandwidth_gbps:
        Bulk-transfer (RDMA get/put) profile used by Mercury bulk and
        the Colza ``stage`` pull path.
    hop_overhead_us:
        Per-hop software overhead charged by *our* collective
        implementations on this transport (progress-loop dispatch,
        request setup). Calibrated so MoNA's emergent Table II values
        land near the paper's (see tests/test_mona_calibration.py).
    """

    name: str
    p2p_anchors: Tuple[Tuple[int, float], ...]
    shmem_latency_us: float
    shmem_bandwidth_gbps: float
    rdma_setup_us: float = 2.0
    rdma_bandwidth_gbps: float = 8.5
    hop_overhead_us: float = 10.0

    # ------------------------------------------------------------------
    def p2p_time(self, nbytes: int, same_node: bool = False) -> float:
        """One-way message time in **seconds**."""
        if nbytes < 0:
            raise ValueError("negative message size")
        if same_node:
            return (
                self.shmem_latency_us * _US
                + nbytes / (self.shmem_bandwidth_gbps * 1e9)
            )
        return interp_log_size(self.p2p_anchors, max(nbytes, 1)) * _US

    def rdma_time(self, nbytes: int, same_node: bool = False) -> float:
        """Bulk get/put time in **seconds** (registration + stream)."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        if same_node:
            # Same-node bulk = memcpy through shmem.
            return self.shmem_latency_us * _US + nbytes / (
                self.shmem_bandwidth_gbps * 1e9
            )
        return self.rdma_setup_us * _US + nbytes / (self.rdma_bandwidth_gbps * 1e9)

    def hop_overhead(self) -> float:
        """Per-hop software overhead in **seconds**."""
        return self.hop_overhead_us * _US


_MODELS: Dict[str, CostModel] = {}


def get_cost_model(name: str) -> CostModel:
    """The calibrated cost model for a library (cached singleton)."""
    model = _MODELS.get(name)
    if model is None:
        try:
            anchors = tuple(P2P_CALIBRATION[name])
        except KeyError:
            raise KeyError(
                f"unknown transport {name!r}; known: {sorted(P2P_CALIBRATION)}"
            ) from None
        lat, bw = _SHMEM_PROFILES[name]
        # 12 µs/hop lands MoNA's emergent 512-process bxor reduce within
        # ~25% of every Table II anchor (see tests/test_mona_calibration.py).
        hop = 12.0 if name in ("mona", "na") else 10.0
        model = CostModel(
            name=name,
            p2p_anchors=anchors,
            shmem_latency_us=lat,
            shmem_bandwidth_gbps=bw,
            hop_overhead_us=hop,
        )
        _MODELS[name] = model
    return model
