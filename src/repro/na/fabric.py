"""The fabric: endpoint registry, message delivery, RDMA transfers.

One :class:`Fabric` instance models the whole machine's interconnect
(plus node-local shared memory). Every communicating library instance
registers an :class:`Endpoint` with its own cost model; transit times
then depend on (library, size, same-node?).

Semantics:

- ``send`` completes when the message lands in the destination mailbox
  (one-way latency) — this matches how Table I counts a send/recv op.
- Per (source, destination) delivery is FIFO: a later message never
  overtakes an earlier one, the non-overtaking guarantee collective
  algorithms rely on.
- Sends to unknown/deregistered endpoints are silently dropped after
  the transit time (datagram semantics); detecting peer death is the
  SWIM layer's job, via timeouts.
- ``rdma_pull`` fetches the payload behind a
  :class:`~repro.na.payload.MemoryHandle` at bulk bandwidth — the
  Colza ``stage`` data path.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Hashable, List, Optional, Tuple

from repro.na.address import Address
from repro.na.costmodel import CostModel
from repro.na.payload import MemoryHandle, payload_nbytes
from repro.sim.kernel import Event, Simulation

__all__ = ["Endpoint", "Fabric", "LinkAction", "Message", "NAError", "ANY"]

#: Wildcard for tag/source matching in ``recv``.
ANY = None


class NAError(RuntimeError):
    """Network-abstraction protocol violation (bad registration etc.)."""


@dataclass(frozen=True)
class LinkAction:
    """Verdict returned by a ``"na.send"`` interceptor for one message.

    ``drop``      — the message never reaches the destination mailbox
                    (datagram semantics: the sender's completion event
                    still fires after the transit time);
    ``delay``     — extra seconds added to the transit time;
    ``duplicate`` — a second copy is delivered alongside the original.
    """

    drop: bool = False
    delay: float = 0.0
    duplicate: bool = False


@dataclass
class Message:
    """A delivered message."""

    source: Address
    dest: Address
    tag: Hashable
    payload: Any
    nbytes: int
    sent_at: float
    arrived_at: float


class _Mailbox:
    """Pending messages + pending receivers with (tag, source) matching."""

    __slots__ = ("messages", "receivers")

    def __init__(self) -> None:
        self.messages: Deque[Message] = deque()
        # Each receiver: (tag_filter, source_filter, event)
        self.receivers: Deque[Tuple[Hashable, Optional[Address], Event]] = deque()

    @staticmethod
    def _matches(msg: Message, tag: Hashable, source: Optional[Address]) -> bool:
        return (tag is ANY or msg.tag == tag) and (source is ANY or msg.source == source)

    def deliver(self, msg: Message) -> None:
        for i, (tag, source, ev) in enumerate(self.receivers):
            if ev.fired:
                continue
            if self._matches(msg, tag, source):
                del self.receivers[i]
                ev.succeed(msg)
                return
        self.messages.append(msg)

    def receive(self, tag: Hashable, source: Optional[Address], ev: Event) -> None:
        for i, msg in enumerate(self.messages):
            if self._matches(msg, tag, source):
                del self.messages[i]
                ev.succeed(msg)
                return
        self.receivers.append((tag, source, ev))

    def cancel(self, ev: Event) -> None:
        self.receivers = deque(r for r in self.receivers if r[2] is not ev)


class Endpoint:
    """A registered network endpoint owned by one library instance."""

    def __init__(self, fabric: "Fabric", address: Address, node_index: int, model: CostModel):
        self.fabric = fabric
        self.address = address
        self.node_index = node_index
        self.model = model
        self.alive = True
        #: True after a *crash* teardown: the owner process is gone, so
        #: any still-scheduled operation silently never completes
        #: (instead of erroring, which is reserved for API misuse).
        self.quiesced = False
        self._mailbox = _Mailbox()
        # Bulk transfers serialize on the initiator's NIC: N concurrent
        # RDMA pulls by one process queue behind each other (this is
        # what makes Colza's `stage` cost ~100 ms when hundreds of
        # clients hit a few servers at once — Fig. 9).
        from repro.sim.resources import Resource

        self._nic = Resource(fabric.sim, capacity=1, name=f"{address}.nic")

    # Convenience pass-throughs -----------------------------------------
    def send(self, dest: Address, payload: Any, tag: Hashable = 0, nbytes: Optional[int] = None) -> Event:
        return self.fabric.send(self, dest, payload, tag=tag, nbytes=nbytes)

    def recv(self, tag: Hashable = ANY, source: Optional[Address] = ANY) -> Event:
        return self.fabric.recv(self, tag=tag, source=source)

    def cancel_recv(self, ev: Event) -> None:
        self._mailbox.cancel(ev)

    def expose(self, payload: Any) -> MemoryHandle:
        """RDMA-expose a local buffer."""
        return MemoryHandle.expose(self.address, payload)

    def pending_messages(self) -> int:
        return len(self._mailbox.messages)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Endpoint {self.address} model={self.model.name}>"


class Fabric:
    """The machine-wide interconnect."""

    def __init__(self, sim: Simulation):
        self.sim = sim
        self._endpoints: Dict[Address, Endpoint] = {}
        # Per-(src, dst) FIFO horizon enforcing non-overtaking delivery.
        self._fifo_horizon: Dict[Tuple[Address, Address], float] = {}
        #: Counters: total messages / bytes moved (for reports).
        self.messages_sent = 0
        self.bytes_sent = 0
        self._metrics = sim.metrics.scope("na")
        self._m_messages = self._metrics.counter("messages_sent")
        self._m_bytes = self._metrics.counter("bytes_sent")
        self._m_dropped = self._metrics.counter("messages_dropped")
        self._m_transit = self._metrics.histogram("send_transit_seconds")
        self._m_rdma = self._metrics.histogram("rdma_seconds")

    # ------------------------------------------------------------------
    # registration
    def register(self, name: str, node_index: int, model: CostModel) -> Endpoint:
        """Create an endpoint ``na+sim://nid<idx>/<name>``."""
        address = Address.make(f"nid{node_index:05d}", name)
        if address in self._endpoints:
            raise NAError(f"address {address} already registered")
        ep = Endpoint(self, address, node_index, model)
        self._endpoints[address] = ep
        return ep

    def deregister(self, endpoint: Endpoint) -> None:
        """Remove an endpoint; in-flight messages to it are dropped."""
        endpoint.alive = False
        self._endpoints.pop(endpoint.address, None)

    def quiesce(self, endpoint: Endpoint) -> None:
        """Crash teardown: deregister, and let any operation the dead
        process's zombie tasks still issue hang forever silently."""
        self.deregister(endpoint)
        endpoint.quiesced = True

    def lookup(self, address: Address) -> Optional[Endpoint]:
        return self._endpoints.get(address)

    def is_alive(self, address: Address) -> bool:
        return address in self._endpoints

    # ------------------------------------------------------------------
    # messaging
    def send(
        self,
        src: Endpoint,
        dest: Address,
        payload: Any,
        tag: Hashable = 0,
        nbytes: Optional[int] = None,
    ) -> Event:
        """Send; the returned event fires at delivery time.

        ``nbytes`` overrides the computed payload size (used when a
        small Python object stands in for a larger wire format).
        """
        if not src.alive:
            if src.quiesced:
                return Event(self.sim, name="send-from-dead")  # never fires
            raise NAError(f"send from deregistered endpoint {src.address}")
        size = payload_nbytes(payload) if nbytes is None else int(nbytes)
        # Fault injection point: consulted before transit-cost charging
        # so injected delays shift the arrival (and the FIFO horizon)
        # exactly as slow links would.
        action: Optional[LinkAction] = self.sim.intercept(
            "na.send", src.address, dest, size, tag
        )
        dest_ep = self._endpoints.get(dest)
        same_node = dest_ep is not None and dest_ep.node_index == src.node_index
        transit = src.model.p2p_time(size, same_node=same_node)
        if action is not None and action.delay > 0:
            transit += action.delay

        key = (src.address, dest)
        arrive = max(self.sim.now + transit, self._fifo_horizon.get(key, 0.0))
        self._fifo_horizon[key] = arrive

        self.messages_sent += 1
        self.bytes_sent += size
        self._m_messages.inc()
        self._m_bytes.inc(size)
        self._m_transit.observe(arrive - self.sim.now)

        done = Event(self.sim, name=f"send->{dest}")
        msg = Message(
            source=src.address,
            dest=dest,
            tag=tag,
            payload=payload,
            nbytes=size,
            sent_at=self.sim.now,
            arrived_at=arrive,
        )

        dropped = action is not None and action.drop
        # Async span: begin here in the sender's context (so it nests
        # under the collective/RPC driving it), end at delivery time.
        span = self.sim.trace.begin_async(
            "na.send", src=src.address, dest=dest, nbytes=size
        )

        def arrive_cb() -> None:
            target = self._endpoints.get(dest)
            delivered = not dropped and target is not None and target.alive
            if delivered:
                target._mailbox.deliver(msg)
            else:
                self._m_dropped.inc()
            # Dropped silently if the endpoint died in flight.
            self.sim.trace.end(span, dropped=not delivered)
            done.succeed(msg)

        self.sim._schedule_at(arrive, arrive_cb)
        if action is not None and action.duplicate and not dropped:

            def duplicate_cb() -> None:
                target = self._endpoints.get(dest)
                if target is not None and target.alive:
                    target._mailbox.deliver(msg)

            self.sim._schedule_at(arrive, duplicate_cb)
        return done

    def recv(self, ep: Endpoint, tag: Hashable = ANY, source: Optional[Address] = ANY) -> Event:
        """Receive the next matching message (fires with a Message)."""
        if not ep.alive:
            if ep.quiesced:
                return Event(self.sim, name="recv-on-dead")  # never fires
            raise NAError(f"recv on deregistered endpoint {ep.address}")
        ev = Event(self.sim, name=f"recv@{ep.address}")
        ep._mailbox.receive(tag, source, ev)
        return ev

    # ------------------------------------------------------------------
    # bulk (RDMA)
    def rdma_pull(self, puller: Endpoint, handle: MemoryHandle) -> Event:
        """Fetch the remote buffer behind ``handle`` (fires with payload).

        Serialized on the puller's NIC: concurrent pulls queue.
        """
        owner_ep = self._endpoints.get(handle.owner)
        same_node = owner_ep is not None and owner_ep.node_index == puller.node_index
        cost = puller.model.rdma_time(handle.nbytes, same_node=same_node)
        factor = self.sim.intercept("na.rdma", puller.address, handle.owner, handle.nbytes)
        if factor is not None:
            cost *= float(factor)
        self.bytes_sent += handle.nbytes
        self._m_bytes.inc(handle.nbytes)
        return self._bulk_transfer(puller, cost, lambda: handle.payload, "rdma_pull", handle.nbytes)

    def rdma_push(self, pusher: Endpoint, handle: MemoryHandle, payload: Any) -> Event:
        """Write ``payload`` into the remote buffer behind ``handle``."""
        owner_ep = self._endpoints.get(handle.owner)
        same_node = owner_ep is not None and owner_ep.node_index == pusher.node_index
        size = payload_nbytes(payload)
        cost = pusher.model.rdma_time(size, same_node=same_node)
        factor = self.sim.intercept("na.rdma", pusher.address, handle.owner, size)
        if factor is not None:
            cost *= float(factor)
        self.bytes_sent += size
        self._m_bytes.inc(size)

        def apply() -> Any:
            handle.payload = payload
            return payload

        return self._bulk_transfer(pusher, cost, apply, "rdma_push", size)

    def _bulk_transfer(self, initiator: Endpoint, cost: float, finish, name: str, nbytes: int) -> Event:
        done = Event(self.sim, name=name)
        if initiator.quiesced:
            return done  # dead initiator: transfer never completes

        def body():
            # Span covers NIC queueing + the transfer itself; the body
            # task inherits the caller's span (e.g. colza.stage) as its
            # ambient parent at spawn time.
            span = self.sim.trace.begin(
                "na.rdma", op=name, initiator=initiator.address, nbytes=nbytes
            )
            yield from initiator._nic.use(cost)
            self.sim.trace.end(span)
            self._m_rdma.observe(span.end - span.start if span.recorded else cost)
            done.succeed(finish())

        self.sim.spawn(body(), name=name)
        return done
