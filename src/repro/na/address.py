"""Endpoint addresses.

An :class:`Address` is an opaque, immutable endpoint name, in the
spirit of Mercury's ``na+ofi://...`` strings. Addresses are hashable
and totally ordered so that membership lists can be sorted into a
canonical order — MoNA communicators rely on this to agree on ranks
without communication.
"""

from __future__ import annotations

import zlib
from functools import total_ordering

__all__ = ["Address"]


@total_ordering
class Address:
    """An immutable endpoint name, e.g. ``na+sim://nid00003/colza-7``."""

    __slots__ = ("uri",)

    def __init__(self, uri: str):
        if not uri:
            raise ValueError("empty address")
        object.__setattr__(self, "uri", uri)

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("Address is immutable")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Address) and self.uri == other.uri

    def __lt__(self, other: "Address") -> bool:
        if not isinstance(other, Address):
            return NotImplemented
        return self.uri < other.uri

    def __hash__(self) -> int:
        # Stable across processes (str hash is PYTHONHASHSEED-salted),
        # so set/dict iteration over addresses orders identically in
        # every run.
        return zlib.crc32(self.uri.encode())

    def __str__(self) -> str:
        return self.uri

    def __repr__(self) -> str:
        return f"Address({self.uri!r})"

    @classmethod
    def make(cls, node_name: str, endpoint_name: str) -> "Address":
        """Canonical URI for an endpoint on a node."""
        return cls(f"na+sim://{node_name}/{endpoint_name}")
