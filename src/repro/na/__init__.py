"""NA — the network abstraction layer (Mercury's messaging substrate).

Everything that crosses the simulated network goes through this
package: Mercury RPCs, MoNA collectives, and the MPI simulator all
register :class:`Endpoint` objects on one shared :class:`Fabric` and
exchange :class:`Message` objects whose transit time comes from a
per-library :class:`CostModel` calibrated against the paper's Table I.

Highlights:

- :class:`Address` — opaque, hashable endpoint names (sortable, so
  deterministic collectives can order members).
- :class:`Fabric` — delivery, tag/source matching, RDMA pull/push on
  registered memory, endpoint registration/deregistration (messages to
  dead endpoints are dropped; failure detection is the job of SWIM).
- :class:`CostModel` + :func:`get_cost_model` — piecewise-log-linear
  interpolation of measured per-message latencies for the four
  libraries the paper benchmarks (``craympich``, ``openmpi``, ``mona``,
  ``na``), with shared-memory profiles for intra-node traffic.
- :class:`MemoryHandle` / payload helpers — RDMA-exposable buffers,
  either real NumPy arrays or :class:`VirtualPayload` (shape/dtype
  only) for paper-scale benchmark runs.
"""

from repro.na.address import Address
from repro.na.costmodel import (
    CostModel,
    P2P_CALIBRATION,
    REDUCE_CALIBRATION_512,
    get_cost_model,
)
from repro.na.fabric import Endpoint, Fabric, Message, NAError
from repro.na.payload import MemoryHandle, VirtualPayload, payload_nbytes

__all__ = [
    "Address",
    "CostModel",
    "Endpoint",
    "Fabric",
    "MemoryHandle",
    "Message",
    "NAError",
    "P2P_CALIBRATION",
    "REDUCE_CALIBRATION_512",
    "VirtualPayload",
    "get_cost_model",
    "payload_nbytes",
]
