"""Execution streams and user-level threads.

An :class:`Xstream` models one core running an Argobots scheduler. ULTs
on the same xstream share it cooperatively: explicit compute intervals
(:meth:`Xstream.compute`) serialize, while blocking waits release the
core. :meth:`Xstream.spin_wait` models the MPI alternative the paper
criticizes — holding the core while blocked.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional

from repro.sim.kernel import Coroutine, Event, Simulation, Task
from repro.sim.resources import Resource

__all__ = ["Ult", "Xstream"]


class Xstream:
    """An execution stream: a serial compute resource plus a ULT registry."""

    def __init__(self, sim: Simulation, name: str = "xstream"):
        self.sim = sim
        self.name = name
        self.core = Resource(sim, capacity=1, name=f"{name}.core")
        self.ults: list["Ult"] = []
        # Monotone spawn counter: default ULT names must not depend on
        # how many finished ULTs pruning has dropped (names flow into
        # span/task identities, hence into determinism digests).
        self._ult_seq = 0
        self._ult_prune_at = 1024
        # Fair-share accounting (DESIGN §13): grants and compute-seconds
        # per tenant, populated once fair-share is enabled.
        self.tenant_grants: Dict[str, int] = {}
        self.tenant_compute: Dict[str, float] = {}

    # ------------------------------------------------------------------
    def spawn(self, gen: Coroutine, name: str = "") -> "Ult":
        """Create and schedule a ULT running ``gen`` on this xstream."""
        if len(self.ults) >= self._ult_prune_at:
            self._prune_ults()
        ult = Ult(self, gen, name or f"{self.name}.ult{self._ult_seq}")
        self._ult_seq += 1
        self.ults.append(ult)
        return ult

    def _prune_ults(self) -> None:
        """Drop finished ULTs (amortized; long-running servers spawn one
        ULT per RPC and would otherwise retain them all)."""
        self.ults = [u for u in self.ults if not u.finished]
        self._ult_prune_at = max(1024, 2 * len(self.ults))

    @property
    def fair_share(self) -> bool:
        """Whether compute grants round-robin across tenants."""
        return self.core.fair_share

    def enable_fair_share(self) -> None:
        """Round-robin runnable compute requests by tenant (DESIGN §13).

        In the default FIFO mode a noisy tenant that enqueues a burst of
        execute work monopolizes the core until its queue drains; in
        fair-share mode the core rotates across the tenants that have
        runnable work, so each attached simulation makes progress at
        1/Nth of the core regardless of queue depth. Work from tasks
        with no tenant attribution shares one round-robin slot.
        """
        self.core.enable_fair_share()

    def compute(self, seconds: float) -> Generator[Event, Any, None]:
        """Charge ``seconds`` of compute, serialized with other ULTs here.

        ``yield from`` this from ULT code. Zero-cost compute returns
        without touching the core.

        In fair-share mode the request is grouped by the current task's
        tenant attribution (``Task.tenant``, stamped by RPC handlers)
        and the per-tenant grant counters are updated.
        """
        if seconds < 0:
            raise ValueError(f"negative compute time {seconds!r}")
        if seconds == 0:
            return
        if not self.core.fair_share:
            yield from self.core.use(seconds)
            return
        task = self.sim.current_task
        tenant = (task.tenant if task is not None else None) or ""
        yield from self.core.use(seconds, group=tenant)
        self.tenant_grants[tenant] = self.tenant_grants.get(tenant, 0) + 1
        self.tenant_compute[tenant] = self.tenant_compute.get(tenant, 0.0) + seconds

    def spin_wait(self, event: Event) -> Generator[Event, Any, Any]:
        """Wait for ``event`` while *holding* the core (MPI-style block).

        Returns the event's value. Contrast with a bare ``yield event``,
        which is the Argobots-style yielding wait.
        """
        yield self.core.acquire()
        with self.core.held():
            value = yield event
        return value

    def utilization(self) -> float:
        """Fraction of elapsed simulated time the core was busy."""
        if self.sim.now == 0:
            return 0.0
        return self.core.busy_time() / self.sim.now

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Xstream {self.name!r} ults={len(self.ults)}>"


class Ult:
    """A user-level thread bound to an xstream.

    Thin wrapper over a kernel :class:`Task` that remembers its home
    xstream so library code can charge compute against the right core.
    """

    def __init__(self, xstream: Xstream, gen: Coroutine, name: str):
        self.xstream = xstream
        self.name = name
        self.task: Task = xstream.sim.spawn(gen, name=name)

    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.task.finished

    def join(self) -> Event:
        """Event firing with the ULT's return value."""
        return self.task.join()

    def cancel(self, cause: Any = None) -> None:
        """Interrupt the ULT (it may catch :class:`~repro.sim.Interrupt`)."""
        self.task.interrupt(cause)

    def kill(self) -> None:
        """Forcibly terminate the ULT."""
        self.task.kill()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Ult {self.name!r} on {self.xstream.name!r}>"
