"""ABT-style synchronization objects: Eventual, Mutex, Condition, Barrier.

These mirror the Argobots primitives Margo/MoNA code uses. They are all
cooperative (DES events underneath); none of them consumes core time.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional

from repro.sim.kernel import Event, Simulation
from repro.sim.resources import HeldGuard, Resource

__all__ = ["Barrier", "Condition", "Eventual", "Mutex"]


class Eventual:
    """ABT_eventual: a resettable one-shot value cell.

    ``wait()`` blocks until ``set(value)``; once set, waits complete
    immediately until ``reset()``.
    """

    def __init__(self, sim: Simulation, name: str = "eventual"):
        self.sim = sim
        self.name = name
        self._event = Event(sim, name=name)

    def set(self, value: Any = None) -> None:
        """Publish the value, waking all waiters. Error if already set."""
        self._event.succeed(value)

    def fail(self, exc: BaseException) -> None:
        """Publish a failure, thrown into all waiters."""
        self._event.fail(exc)

    def wait(self) -> Event:
        """Event to ``yield`` on; fires with the published value."""
        return self._event

    @property
    def is_set(self) -> bool:
        return self._event.fired

    def value(self) -> Any:
        """The published value (raises if unset or failed)."""
        return self._event.value

    def reset(self) -> None:
        """Return to the unset state (fresh underlying event)."""
        self._event = Event(self.sim, name=self.name)


class Mutex:
    """A cooperative FIFO mutex.

    Use acquire plus the :meth:`held` guard::

        yield mutex.acquire()
        with mutex.held():
            ...          # released on exit, exception, or task kill

    bare acquire/release, or the generator helper
    ``yield from mutex.locked(body_gen)``.
    """

    def __init__(self, sim: Simulation, name: str = "mutex"):
        self.sim = sim
        self._res = Resource(sim, capacity=1, name=name)

    def acquire(self) -> Event:
        return self._res.acquire()

    def release(self) -> None:
        self._res.release()

    @property
    def is_held(self) -> bool:
        return self._res.in_use > 0

    def held(self) -> "HeldGuard":
        """Guard releasing this (already acquired) mutex on scope exit.

        A task kill closes the owning generator, which raises
        GeneratorExit at the current yield; the ``with`` block's exit
        still runs, so the mutex cannot leak across yields inside the
        block — the structural guarantee flowcheck's FC003 checks for.
        """
        return HeldGuard(self._res)

    def locked(self, body: Generator[Event, Any, Any]) -> Generator[Event, Any, Any]:
        """Run a sub-generator while holding the mutex."""
        yield self.acquire()
        with self.held():
            result = yield from body
        return result


class Condition:
    """A condition variable paired with an external :class:`Mutex`.

    ``wait(mutex)`` atomically releases the mutex, blocks until
    signal/broadcast, then re-acquires the mutex before returning.
    """

    def __init__(self, sim: Simulation, name: str = "cond"):
        self.sim = sim
        self.name = name
        self._waiters: Deque[Event] = deque()

    def wait(self, mutex: Mutex) -> Generator[Event, Any, None]:
        if not mutex.is_held:
            raise RuntimeError("Condition.wait requires the mutex held")
        ev = Event(self.sim, name=f"{self.name}.wait")
        self._waiters.append(ev)
        mutex.release()
        yield ev
        yield mutex.acquire()

    def signal(self) -> None:
        """Wake one waiter (no-op when none)."""
        while self._waiters:
            ev = self._waiters.popleft()
            if not ev.fired:
                ev.succeed()
                return

    def broadcast(self) -> None:
        """Wake all current waiters."""
        waiters, self._waiters = self._waiters, deque()
        for ev in waiters:
            if not ev.fired:
                ev.succeed()


class Barrier:
    """An N-party reusable barrier.

    Each participant does ``yield barrier.arrive()``; the N-th arrival
    releases everyone and the barrier resets for the next round.
    """

    def __init__(self, sim: Simulation, parties: int, name: str = "barrier"):
        if parties < 1:
            raise ValueError("barrier needs at least one party")
        self.sim = sim
        self.parties = parties
        self.name = name
        self._count = 0
        self._generation = 0
        self._event = Event(sim, name=f"{name}.gen0")

    def arrive(self) -> Event:
        """Event firing (with the generation number) when all have arrived."""
        self._count += 1
        current = self._event
        if self._count >= self.parties:
            generation = self._generation
            self._count = 0
            self._generation += 1
            self._event = Event(self.sim, name=f"{self.name}.gen{self._generation}")
            current.succeed(generation)
        return current

    @property
    def waiting(self) -> int:
        return self._count
