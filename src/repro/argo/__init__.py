"""Argobots-sim: user-level threads, execution streams, and sync objects.

Mochi builds on `Argobots <https://www.argobots.org>`_ for lightweight
cooperative threading. This package reproduces the subset Colza relies
on, mapped onto the DES kernel:

- :class:`Xstream` — an execution stream bound to one core. Compute is
  charged explicitly (``yield from xs.compute(seconds)``) and
  serializes per xstream; *blocking waits do not hold the core*. This
  is the paper's key scheduling point: a ULT blocking on MoNA
  communication yields its core to other tasks, whereas a blocking MPI
  call spins (modeled by :meth:`Xstream.spin_wait`).
- :class:`Ult` — a user-level thread spawned on an xstream.
- :class:`Eventual`, :class:`Mutex`, :class:`Condition`,
  :class:`Barrier` — the ABT synchronization objects used by Margo,
  MoNA and the Colza provider.
"""

from repro.argo.sync import Barrier, Condition, Eventual, Mutex
from repro.argo.xstream import Ult, Xstream

__all__ = ["Barrier", "Condition", "Eventual", "Mutex", "Ult", "Xstream"]
