"""Cell thresholding of unstructured grids (vtkThreshold).

Keeps cells whose field values fall within [lo, hi]. For point fields,
VTK's default "all points must pass" criterion is used (``mode="all"``;
``"any"`` also supported). Output points are compacted.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.vtk.dataset import UnstructuredGrid

__all__ = ["threshold"]


def threshold(
    grid: UnstructuredGrid,
    field: str,
    lo: float,
    hi: float,
    mode: str = "all",
) -> UnstructuredGrid:
    """Extract the cells of ``grid`` whose ``field`` lies in [lo, hi]."""
    if mode not in ("all", "any"):
        raise ValueError(f"mode must be 'all' or 'any', got {mode!r}")
    if field in grid.cell_data:
        values = np.asarray(grid.cell_data[field], dtype=np.float64)
        keep = (values >= lo) & (values <= hi)
    elif field in grid.point_data:
        values = np.asarray(grid.point_data[field], dtype=np.float64)
        per_corner = (values[grid.cells] >= lo) & (values[grid.cells] <= hi)
        keep = per_corner.all(axis=1) if mode == "all" else per_corner.any(axis=1)
    else:
        raise KeyError(f"field {field!r} not found in point or cell data")

    cells = grid.cells[keep]
    used, inverse = np.unique(cells.ravel(), return_inverse=True) if cells.size else (
        np.zeros(0, dtype=np.int64),
        np.zeros(0, dtype=np.int64),
    )
    return UnstructuredGrid(
        grid.points[used],
        inverse.reshape(-1, 4) if cells.size else np.zeros((0, 4), dtype=np.int64),
        {name: vals[used] for name, vals in grid.point_data.items()},
        {name: vals[keep] for name, vals in grid.cell_data.items()},
    )
