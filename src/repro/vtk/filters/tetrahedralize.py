"""Tetrahedralization of regular grids (vtkDataSetTriangleFilter).

Converts an :class:`~repro.vtk.dataset.ImageData` into an
:class:`~repro.vtk.dataset.UnstructuredGrid` by splitting every
hexahedral cell into the same six tetrahedra the contour filter
marches over (all sharing the 0-6 diagonal). Point fields carry over
unchanged; the decomposition exactly preserves total volume.

This is the bridge that lets unstructured-grid filters (threshold,
volume pipelines) run on regular-grid sources like Gray-Scott blocks.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.vtk.dataset import ImageData, UnstructuredGrid
from repro.vtk.filters.contour import _CORNERS, _TETS

__all__ = ["tetrahedralize"]


def tetrahedralize(image: ImageData, fields: Optional[Sequence[str]] = None) -> UnstructuredGrid:
    """Split each grid cell into 6 tets; copy the requested point fields."""
    nx, ny, nz = image.dims
    if min(nx, ny, nz) < 2:
        raise ValueError(f"tetrahedralize needs at least 2 points per axis, got {image.dims}")
    names = list(fields) if fields is not None else list(image.point_data)
    for name in names:
        if name not in image.point_data:
            raise KeyError(f"point field {name!r} not in image")

    points = image.point_coords()
    idx = np.arange(nx * ny * nz).reshape(nx, ny, nz)
    corners = []
    for dx, dy, dz in _CORNERS:
        corners.append(idx[dx : nx - 1 + dx, dy : ny - 1 + dy, dz : nz - 1 + dz].ravel())
    corner_mat = np.column_stack(corners)  # (cells, 8)
    cells = np.concatenate([corner_mat[:, tet] for tet in _TETS], axis=0)

    point_data = {
        name: np.asarray(image.field(name), dtype=np.float64).reshape(-1)
        for name in names
    }
    return UnstructuredGrid(points, cells, point_data=point_data)
