"""Resampling unstructured meshes onto regular grids (vtkResampleToImage).

Volume rendering operates on :class:`~repro.vtk.dataset.ImageData`, so
the DWI pipeline resamples its merged tetrahedral mesh first. We use
nearest-neighbor interpolation from mesh points via a KD-tree, with a
distance cutoff marking exterior voxels (value 0) — a faithful,
fast stand-in for VTK's cell-locator-based probe.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np
from scipy.spatial import cKDTree

from repro.vtk.dataset import ImageData, UnstructuredGrid

__all__ = ["resample_to_image"]


def resample_to_image(
    grid: UnstructuredGrid,
    dims: Tuple[int, int, int],
    fields: Optional[Sequence[str]] = None,
    bounds: Optional[Sequence[float]] = None,
    cutoff_factor: float = 2.0,
) -> ImageData:
    """Sample ``grid``'s point fields onto a ``dims`` regular grid.

    ``bounds`` default to the mesh bounds; voxels farther than
    ``cutoff_factor`` x the mean voxel spacing from any mesh point are
    set to 0 (outside the mesh).
    """
    if len(dims) != 3 or any(d < 2 for d in dims):
        raise ValueError(f"dims must be three values >= 2, got {dims}")
    names = list(fields) if fields is not None else list(grid.point_data)
    for name in names:
        if name not in grid.point_data:
            raise KeyError(f"point field {name!r} not in grid")

    b = tuple(bounds) if bounds is not None else grid.bounds
    origin = (b[0], b[2], b[4])
    spacing = tuple(
        (b[2 * i + 1] - b[2 * i]) / (dims[i] - 1) if dims[i] > 1 else 1.0
        for i in range(3)
    )
    image = ImageData(dims=tuple(dims), origin=origin, spacing=spacing)
    if grid.num_points == 0:
        for name in names:
            image.set_field(name, np.zeros(dims))
        return image

    targets = image.point_coords()
    tree = cKDTree(grid.points)
    dist, nearest = tree.query(targets, k=1)
    cutoff = cutoff_factor * float(np.mean(spacing))
    inside = dist <= cutoff
    for name in names:
        source = np.asarray(grid.point_data[name], dtype=np.float64)
        sampled = np.where(inside, source[nearest], 0.0)
        image.set_field(name, sampled.reshape(dims))
    return image
