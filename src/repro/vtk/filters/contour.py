"""Iso-surface extraction from regular grids (marching tetrahedra).

VTK's ``vtkContourFilter`` uses marching cubes; we use the marching-
tetrahedra variant (each hexahedral cell split into six tetrahedra
around the 0-6 diagonal). MT avoids the 256-case MC table, has no
ambiguous cases, and converges to the same surface; triangle counts are
~2x MC for the same grid (documented in DESIGN.md §7).

The implementation is fully vectorized: active cells (those straddling
the iso-value) are selected first, then the six tetrahedra are
processed in parallel across all active cells, emitting interpolated
triangle fans per MT case. Additional point fields are interpolated
onto the surface with the same edge weights.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.vtk.dataset import ImageData, PolyData

__all__ = ["contour"]

# Cube corner offsets (x, y, z), VTK hexahedron ordering.
_CORNERS = np.array(
    [
        (0, 0, 0), (1, 0, 0), (1, 1, 0), (0, 1, 0),
        (0, 0, 1), (1, 0, 1), (1, 1, 1), (0, 1, 1),
    ],
    dtype=np.int64,
)

# Six tetrahedra per cube, all sharing the 0-6 diagonal.
_TETS = np.array(
    [
        (0, 1, 2, 6),
        (0, 2, 3, 6),
        (0, 3, 7, 6),
        (0, 7, 4, 6),
        (0, 4, 5, 6),
        (0, 5, 1, 6),
    ],
    dtype=np.int64,
)

# Tetrahedron edges (pairs of local vertex indices 0..3).
_EDGES = np.array([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)], dtype=np.int64)
_EDGE_INDEX = {tuple(e): i for i, e in enumerate(_EDGES)}


def _edge_between(a: int, b: int) -> int:
    return _EDGE_INDEX[(a, b) if a < b else (b, a)]


def _build_case_table() -> List[List[Tuple[int, int, int]]]:
    """For each 4-bit inside-mask, the triangles as triples of edge ids."""
    table: List[List[Tuple[int, int, int]]] = []
    for mask in range(16):
        inside = [v for v in range(4) if mask & (1 << v)]
        outside = [v for v in range(4) if v not in inside]
        tris: List[Tuple[int, int, int]] = []
        if len(inside) in (1, 3):
            lone = inside[0] if len(inside) == 1 else outside[0]
            others = [v for v in range(4) if v != lone]
            e = [_edge_between(lone, o) for o in others]
            tris.append((e[0], e[1], e[2]))
        elif len(inside) == 2:
            i, j = inside
            a, b = outside
            eia, eib = _edge_between(i, a), _edge_between(i, b)
            eja, ejb = _edge_between(j, a), _edge_between(j, b)
            tris.append((eia, eib, eja))
            tris.append((eja, eib, ejb))
        table.append(tris)
    return table


_CASES = _build_case_table()


def contour(
    image: ImageData,
    values: Sequence[float],
    field: str,
    interpolate_fields: Optional[Sequence[str]] = None,
) -> PolyData:
    """Extract iso-surfaces of ``field`` at each value in ``values``.

    Returns a single :class:`PolyData`; the contoured scalar appears in
    the output ``point_data`` (constant per iso-level), along with any
    requested ``interpolate_fields``.
    """
    scalars = np.asarray(image.field(field), dtype=np.float64)
    extra_names = [n for n in (interpolate_fields or []) if n != field]
    pieces = [
        _contour_single(image, scalars, float(v), field, extra_names) for v in values
    ]
    return PolyData.concatenate(pieces)


def _cell_corner_values(volume: np.ndarray) -> np.ndarray:
    """(C, 8) corner values for all cells of a (nx,ny,nz) volume."""
    slices = []
    for dx, dy, dz in _CORNERS:
        slices.append(
            volume[
                dx : volume.shape[0] - 1 + dx,
                dy : volume.shape[1] - 1 + dy,
                dz : volume.shape[2] - 1 + dz,
            ].ravel()
        )
    return np.column_stack(slices)


def _contour_single(
    image: ImageData,
    scalars: np.ndarray,
    iso: float,
    field: str,
    extra_names: List[str],
) -> PolyData:
    nx, ny, nz = image.dims
    if min(nx, ny, nz) < 2:
        return PolyData.empty()

    corner_vals = _cell_corner_values(scalars)  # (C, 8)
    active = (corner_vals.min(axis=1) <= iso) & (corner_vals.max(axis=1) > iso)
    idx = np.nonzero(active)[0]
    if idx.size == 0:
        return PolyData.empty()
    vals = corner_vals[idx]  # (A, 8)

    # Cell origin coordinates (A, 3).
    cx, cy, cz = np.unravel_index(idx, (nx - 1, ny - 1, nz - 1))
    cell_origin = np.column_stack([cx, cy, cz]).astype(np.float64)

    extra_corner_vals = {
        name: _cell_corner_values(np.asarray(image.field(name), dtype=np.float64))[idx]
        for name in extra_names
    }

    tri_points: List[np.ndarray] = []
    tri_extra: Dict[str, List[np.ndarray]] = {name: [] for name in extra_names}

    for tet in _TETS:
        tvals = vals[:, tet]  # (A, 4)
        # Strict inequality, consistent with the active-cell test
        # (min <= iso < max): an iso-value landing exactly on grid
        # values still yields the correct surface (e.g. axis-aligned
        # plane slices through lattice points).
        inside = tvals > iso
        case_ids = (
            inside[:, 0].astype(np.int64)
            | (inside[:, 1] << 1)
            | (inside[:, 2] << 2)
            | (inside[:, 3] << 3)
        )
        # Local tet corner coordinates (4, 3) in cell units.
        tet_corners = _CORNERS[tet].astype(np.float64)
        for case in range(1, 15):
            rows = np.nonzero(case_ids == case)[0]
            if rows.size == 0:
                continue
            rvals = tvals[rows]  # (R, 4)
            origins = cell_origin[rows]  # (R, 3)
            for tri in _CASES[case]:
                # Each vertex of this triangle lies on an edge of the tet.
                verts = []
                extra_at = {name: [] for name in extra_names}
                for edge_id in tri:
                    u, v = _EDGES[edge_id]
                    fu, fv = rvals[:, u], rvals[:, v]
                    denom = fv - fu
                    t = np.where(np.abs(denom) > 1e-300, (iso - fu) / denom, 0.5)
                    t = np.clip(t, 0.0, 1.0)
                    pu, pv = tet_corners[u], tet_corners[v]
                    pts = origins + pu + t[:, None] * (pv - pu)
                    verts.append(pts)
                    for name, cv in extra_corner_vals.items():
                        gu = cv[rows][:, tet[u]]
                        gv = cv[rows][:, tet[v]]
                        extra_at[name].append(gu + t * (gv - gu))
                tri_points.append(np.stack(verts, axis=1))  # (R, 3, 3)
                for name in extra_names:
                    tri_extra[name].append(np.stack(extra_at[name], axis=1))  # (R, 3)

    if not tri_points:
        return PolyData.empty()
    all_tris = np.concatenate(tri_points, axis=0)  # (T, 3verts, 3xyz)
    npts = all_tris.shape[0] * 3
    points = all_tris.reshape(npts, 3)
    # Grid-index space -> world space.
    points = np.asarray(image.origin) + points * np.asarray(image.spacing)
    triangles = np.arange(npts, dtype=np.int64).reshape(-1, 3)
    point_data = {field: np.full(npts, iso)}
    for name in extra_names:
        point_data[name] = np.concatenate(tri_extra[name], axis=0).reshape(npts)
    return PolyData(points, triangles, point_data)
