"""Block merging (vtkMergeBlocks) — the first stage of the DWI pipeline.

Concatenates the unstructured grids of a multi-block dataset into one
grid, offsetting connectivity. Fields present in every block are
concatenated; others are dropped (with VTK's permissive semantics).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.vtk.dataset import MultiBlockDataSet, UnstructuredGrid

__all__ = ["merge_blocks"]


def merge_blocks(multiblock: MultiBlockDataSet) -> UnstructuredGrid:
    """Merge all non-empty blocks into a single UnstructuredGrid."""
    blocks: List[UnstructuredGrid] = [
        b for b in multiblock.non_empty() if isinstance(b, UnstructuredGrid)
    ]
    if not blocks:
        return UnstructuredGrid(
            np.zeros((0, 3)), np.zeros((0, 4), dtype=np.int64)
        )
    points = np.vstack([b.points for b in blocks])
    offsets = np.cumsum([0] + [b.num_points for b in blocks[:-1]])
    cells = np.vstack(
        [b.cells + off for b, off in zip(blocks, offsets) if b.num_cells]
        or [np.zeros((0, 4), dtype=np.int64)]
    )
    common_pt = set(blocks[0].point_data)
    common_cell = set(blocks[0].cell_data)
    for b in blocks[1:]:
        common_pt &= set(b.point_data)
        common_cell &= set(b.cell_data)
    point_data = {
        name: np.concatenate([b.point_data[name] for b in blocks])
        for name in sorted(common_pt)
    }
    cell_data = {
        name: np.concatenate([b.cell_data[name] for b in blocks])
        for name in sorted(common_cell)
    }
    return UnstructuredGrid(points, cells, point_data, cell_data)
