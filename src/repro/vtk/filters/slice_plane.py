"""Plane slicing of regular grids (vtkCutter with a plane function).

A slice is the zero iso-surface of the signed distance to the plane,
so the implementation reuses the marching-tetrahedra machinery:
requested point fields are interpolated onto the cut with the same
edge weights.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.vtk.dataset import ImageData, PolyData
from repro.vtk.filters.contour import contour

__all__ = ["slice_plane"]

_PLANE_FIELD = "__plane_distance__"


def slice_plane(
    image: ImageData,
    origin: Sequence[float],
    normal: Sequence[float],
    fields: Optional[Sequence[str]] = None,
) -> PolyData:
    """Cut ``image`` with the plane (origin, normal).

    Returns a triangulated cross-section carrying the interpolated
    values of ``fields`` (default: all point fields).
    """
    normal = np.asarray(normal, dtype=np.float64)
    norm = np.linalg.norm(normal)
    if norm == 0:
        raise ValueError("zero slice normal")
    normal = normal / norm
    origin = np.asarray(origin, dtype=np.float64)
    names = list(fields) if fields is not None else list(image.point_data)

    signed = ((image.point_coords() - origin) @ normal).reshape(image.dims)
    shadow = ImageData(
        dims=image.dims,
        origin=image.origin,
        spacing=image.spacing,
        point_data={_PLANE_FIELD: signed, **{n: image.field(n) for n in names}},
    )
    cut = contour(shadow, [0.0], _PLANE_FIELD, interpolate_fields=names)
    cut.point_data.pop(_PLANE_FIELD, None)
    return cut
