"""Plane clipping of triangle surfaces (vtkClipPolyData).

Keeps the half-space where ``dot(p - origin, normal) >= 0``. Crossing
triangles are split exactly: one kept vertex yields one triangle, two
kept vertices yield two. Point fields are interpolated at the cut.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.vtk.dataset import PolyData

__all__ = ["clip_polydata"]


def clip_polydata(
    poly: PolyData,
    origin: Sequence[float],
    normal: Sequence[float],
) -> PolyData:
    """Clip ``poly`` by the plane (origin, normal), keeping the positive side."""
    if poly.num_triangles == 0:
        return PolyData.empty()
    normal = np.asarray(normal, dtype=np.float64)
    norm = np.linalg.norm(normal)
    if norm == 0:
        raise ValueError("zero clip normal")
    normal = normal / norm
    origin = np.asarray(origin, dtype=np.float64)

    signed = (poly.points - origin) @ normal  # (N,)
    keep_vertex = signed >= 0.0

    tri_keep = keep_vertex[poly.triangles]  # (M, 3) bool
    count = tri_keep.sum(axis=1)

    pieces: List[PolyData] = []
    full = poly.triangles[count == 3]
    if len(full):
        pieces.append(_subset(poly, full))

    names = list(poly.point_data)
    for kept in (1, 2):
        rows = np.nonzero(count == kept)[0]
        if rows.size == 0:
            continue
        pieces.append(_split_crossing(poly, rows, tri_keep[rows], signed, kept, names))
    return PolyData.concatenate(pieces)


def _subset(poly: PolyData, triangles: np.ndarray) -> PolyData:
    """Re-index a triangle subset into a compact PolyData."""
    used, inverse = np.unique(triangles.ravel(), return_inverse=True)
    return PolyData(
        poly.points[used],
        inverse.reshape(-1, 3),
        {name: vals[used] for name, vals in poly.point_data.items()},
    )


def _split_crossing(
    poly: PolyData,
    rows: np.ndarray,
    keep_mask: np.ndarray,
    signed: np.ndarray,
    kept: int,
    names: List[str],
) -> PolyData:
    """Split triangles with ``kept`` (1 or 2) vertices on the keep side."""
    tris = poly.triangles[rows]  # (R, 3)
    # Rotate each triangle so the "special" vertex is first: for kept=1
    # the lone kept vertex, for kept=2 the lone dropped vertex.
    special = keep_mask if kept == 1 else ~keep_mask
    first = np.argmax(special, axis=1)  # index of the special vertex
    order = (first[:, None] + np.arange(3)[None, :]) % 3
    tris = np.take_along_axis(tris, order, axis=1)  # special vertex at column 0

    v0, v1, v2 = tris[:, 0], tris[:, 1], tris[:, 2]
    p0, p1, p2 = poly.points[v0], poly.points[v1], poly.points[v2]
    s0, s1, s2 = signed[v0], signed[v1], signed[v2]

    def cut(pa, pb, sa, sb):
        t = sa / (sa - sb)
        return pa + t[:, None] * (pb - pa), t

    c01, t01 = cut(p0, p1, s0, s1)
    c02, t02 = cut(p0, p2, s0, s2)

    def lerp_fields(va, vb, t):
        return {
            name: poly.point_data[name][va] + t * (poly.point_data[name][vb] - poly.point_data[name][va])
            for name in names
        }

    f0 = {name: poly.point_data[name][v0] for name in names}
    f1 = {name: poly.point_data[name][v1] for name in names}
    f2 = {name: poly.point_data[name][v2] for name in names}
    f01 = lerp_fields(v0, v1, t01)
    f02 = lerp_fields(v0, v2, t02)

    if kept == 1:
        # Keep the corner triangle (v0, c01, c02).
        pts = np.concatenate([p0, c01, c02], axis=0)
        fields = {
            name: np.concatenate([f0[name], f01[name], f02[name]]) for name in names
        }
        ntri = len(rows)
        tri = np.column_stack(
            [np.arange(ntri), np.arange(ntri) + ntri, np.arange(ntri) + 2 * ntri]
        )
        return PolyData(pts, tri, fields)

    # kept == 2: v0 dropped, quad (c01, v1, v2, c02) -> two triangles.
    pts = np.concatenate([c01, p1, p2, c02], axis=0)
    fields = {
        name: np.concatenate([f01[name], f1[name], f2[name], f02[name]])
        for name in names
    }
    ntri = len(rows)
    i0 = np.arange(ntri)
    tri_a = np.column_stack([i0, i0 + ntri, i0 + 2 * ntri])           # c01, v1, v2
    tri_b = np.column_stack([i0, i0 + 2 * ntri, i0 + 3 * ntri])       # c01, v2, c02
    return PolyData(pts, np.vstack([tri_a, tri_b]), fields)
