"""VTK-style filters: pure functions dataset -> dataset.

All filters do real, vectorized NumPy computation (no stubs); the DES
charges their simulated cost separately via the pipeline cost model in
:mod:`repro.catalyst.costs`.
"""

from repro.vtk.filters.clip import clip_polydata
from repro.vtk.filters.contour import contour
from repro.vtk.filters.merge import merge_blocks
from repro.vtk.filters.resample import resample_to_image
from repro.vtk.filters.slice_plane import slice_plane
from repro.vtk.filters.tetrahedralize import tetrahedralize
from repro.vtk.filters.threshold import threshold

__all__ = [
    "clip_polydata",
    "contour",
    "merge_blocks",
    "resample_to_image",
    "slice_plane",
    "tetrahedralize",
    "threshold",
]
