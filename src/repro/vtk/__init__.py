"""VTK-sim: the visualization data model, filters, parallelism, rendering.

A from-scratch, NumPy-native reimplementation of the slice of
VTK/ParaView that Colza's pipelines exercise:

- **data model** (:mod:`repro.vtk.dataset`): ``ImageData`` (regular
  grids), ``PolyData`` (triangle surfaces), ``UnstructuredGrid``
  (tetrahedral meshes), ``MultiBlockDataSet``;
- **filters** (:mod:`repro.vtk.filters`): iso-surface extraction
  (marching tetrahedra), plane clipping, thresholding, block merging,
  resampling to image — all real, vectorized computations;
- **parallelism** (:mod:`repro.vtk.parallel`): the
  ``Communicator`` / ``MultiProcessController`` abstraction pair with
  ``MonaController`` and ``MPIController`` implementations, plus the
  per-process ``VtkProcessModule`` whose ``set_global_controller`` is
  the paper's dependency-injection hook;
- **rendering** (:mod:`repro.vtk.render`): software rasterizer and
  volume ray-marcher producing RGBA+depth images for IceT compositing.
"""

from repro.vtk.dataset import ImageData, MultiBlockDataSet, PolyData, UnstructuredGrid
from repro.vtk.parallel import (
    Communicator,
    MonaController,
    MPIController,
    MultiProcessController,
    VtkProcessModule,
)

__all__ = [
    "Communicator",
    "ImageData",
    "MPIController",
    "MonaController",
    "MultiBlockDataSet",
    "MultiProcessController",
    "PolyData",
    "UnstructuredGrid",
    "VtkProcessModule",
]
