"""VTK's parallel abstraction: Communicator / MultiProcessController.

This is the hook that makes Colza possible (paper §II-D): VTK code
never talks to MPI directly — it goes through ``vtkCommunicator`` /
``vtkMultiProcessController``, for which we provide a
:class:`MonaController` alongside the classic :class:`MPIController`.
Filters and renderers are agnostic to which one is installed.

Because this reproduction runs many simulated processes in one Python
process, VTK's process-global controller becomes per-simulated-process
state: each staging process owns a :class:`VtkProcessModule`, and
``set_global_controller`` swaps its controller — including *re*-setting
it after a membership change, the ParaView reinitialization fix the
paper needed Kitware's help for.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Sequence

from repro.mona.ops import ReduceOp, SUM

__all__ = [
    "Communicator",
    "MPIController",
    "MonaController",
    "MultiProcessController",
    "VtkProcessModule",
]


class Communicator:
    """Abstract vtkCommunicator: rank/size + collective generators.

    Concrete subclasses adapt an underlying transport communicator
    (MoNA or simulated MPI — both expose the same generator protocol,
    which is itself the point of the abstraction).
    """

    #: The wrapped transport communicator (MonaComm or MpiComm).
    comm: Any = None

    @property
    def rank(self) -> int:
        return self.comm.rank

    @property
    def size(self) -> int:
        return self.comm.size

    # p2p ---------------------------------------------------------------
    def send(self, dest: int, payload: Any, tag: Any = 0) -> Generator:
        return (yield from self.comm.send(dest, payload, tag))

    def recv(self, source: Optional[int] = None, tag: Any = 0) -> Generator:
        return (yield from self.comm.recv(source, tag))

    def sendrecv(self, dest: int, payload: Any, source: int, tag: Any = 0) -> Generator:
        return (yield from self.comm.sendrecv(dest, payload, source, tag))

    # collectives ---------------------------------------------------------
    def barrier(self) -> Generator:
        return (yield from self.comm.barrier())

    def bcast(self, payload: Any, root: int = 0) -> Generator:
        return (yield from self.comm.bcast(payload, root=root))

    def reduce(self, payload: Any, op: ReduceOp = SUM, root: int = 0) -> Generator:
        return (yield from self.comm.reduce(payload, op=op, root=root))

    def allreduce(self, payload: Any, op: ReduceOp = SUM) -> Generator:
        return (yield from self.comm.allreduce(payload, op=op))

    def gather(self, payload: Any, root: int = 0) -> Generator:
        return (yield from self.comm.gather(payload, root=root))

    def scatter(self, payloads: Optional[Sequence[Any]], root: int = 0) -> Generator:
        return (yield from self.comm.scatter(payloads, root=root))

    def allgather(self, payload: Any) -> Generator:
        return (yield from self.comm.allgather(payload))

    def alltoall(self, payloads: Sequence[Any]) -> Generator:
        return (yield from self.comm.alltoall(payloads))

    # identity -------------------------------------------------------------
    @property
    def kind(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


class MonaCommunicator(Communicator):
    """vtkMonaCommunicator: VTK collectives over a MoNA communicator."""

    def __init__(self, mona_comm):
        self.comm = mona_comm

    @property
    def kind(self) -> str:
        return "mona"


class MPICommunicator(Communicator):
    """vtkMPICommunicator: VTK collectives over (simulated) MPI."""

    def __init__(self, mpi_comm):
        self.comm = mpi_comm

    @property
    def kind(self) -> str:
        return "mpi"


class MultiProcessController:
    """vtkMultiProcessController: the object VTK filters ask for
    parallel context. Wraps a :class:`Communicator`."""

    def __init__(self, communicator: Communicator):
        self.communicator = communicator

    @property
    def rank(self) -> int:
        return self.communicator.rank

    @property
    def size(self) -> int:
        return self.communicator.size

    @property
    def kind(self) -> str:
        return self.communicator.kind


class MonaController(MultiProcessController):
    """vtkMonaController — built directly from a MoNA communicator."""

    def __init__(self, mona_comm):
        super().__init__(MonaCommunicator(mona_comm))


class MPIController(MultiProcessController):
    """vtkMPIController — built from a (simulated) MPI communicator."""

    def __init__(self, mpi_comm):
        super().__init__(MPICommunicator(mpi_comm))


class VtkProcessModule:
    """Per-(simulated-)process VTK global state.

    Real VTK has a single process-wide global controller; in the DES,
    each staging process owns one of these. Swapping the controller at
    run time — after every membership change — is the operation
    ParaView initially could not survive and the paper fixed.
    """

    def __init__(self, name: str = "vtk"):
        self.name = name
        self._controller: Optional[MultiProcessController] = None
        #: How many times the controller was (re)set, for tests/metrics.
        self.controller_generation = 0

    def set_global_controller(self, controller: MultiProcessController) -> None:
        if not isinstance(controller, MultiProcessController):
            raise TypeError("expected a MultiProcessController")
        self._controller = controller
        self.controller_generation += 1

    def get_global_controller(self) -> MultiProcessController:
        if self._controller is None:
            raise RuntimeError(
                f"{self.name}: no global controller installed "
                "(call set_global_controller before building pipelines)"
            )
        return self._controller

    @property
    def has_controller(self) -> bool:
        return self._controller is not None
