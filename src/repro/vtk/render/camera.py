"""A minimal orthographic camera.

View space: x-right, y-up, z into the scene (depth increases away from
the camera). Projection maps a world-space window of ``view_width`` x
``view_height`` (world units) centered on the focal point to the full
image.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

__all__ = ["Camera"]


@dataclass
class Camera:
    position: Tuple[float, float, float] = (0.0, 0.0, -5.0)
    focal_point: Tuple[float, float, float] = (0.0, 0.0, 0.0)
    view_up: Tuple[float, float, float] = (0.0, 1.0, 0.0)
    view_width: float = 4.0
    view_height: float = 4.0

    def __post_init__(self):
        pos = np.asarray(self.position, dtype=np.float64)
        focal = np.asarray(self.focal_point, dtype=np.float64)
        forward = focal - pos
        norm = np.linalg.norm(forward)
        if norm == 0:
            raise ValueError("camera position equals focal point")
        self._forward = forward / norm
        up = np.asarray(self.view_up, dtype=np.float64)
        right = np.cross(self._forward, up)
        rnorm = np.linalg.norm(right)
        if rnorm == 0:
            raise ValueError("view_up parallel to view direction")
        self._right = right / rnorm
        self._up = np.cross(self._right, self._forward)
        self._pos = pos

    # ------------------------------------------------------------------
    def world_to_view(self, points: np.ndarray) -> np.ndarray:
        """(N, 3) world points -> (N, 3) view coords (x, y, depth)."""
        rel = np.atleast_2d(points) - self._pos
        return np.column_stack([rel @ self._right, rel @ self._up, rel @ self._forward])

    def view_to_pixels(
        self, view: np.ndarray, width: int, height: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """View coords -> (px, py, depth); py=0 is the image top row."""
        half_w, half_h = self.view_width / 2.0, self.view_height / 2.0
        px = (view[:, 0] + half_w) / self.view_width * (width - 1)
        py = (half_h - view[:, 1]) / self.view_height * (height - 1)
        return px, py, view[:, 2]

    @classmethod
    def fit(cls, bounds: Sequence[float], direction: str = "z", margin: float = 1.15) -> "Camera":
        """A camera looking along +``direction`` that frames ``bounds``."""
        cx = (bounds[0] + bounds[1]) / 2
        cy = (bounds[2] + bounds[3]) / 2
        cz = (bounds[4] + bounds[5]) / 2
        ex = max(bounds[1] - bounds[0], 1e-9)
        ey = max(bounds[3] - bounds[2], 1e-9)
        ez = max(bounds[5] - bounds[4], 1e-9)
        if direction == "z":
            dist = 2.0 * ez + 1.0
            return cls(
                position=(cx, cy, cz - dist),
                focal_point=(cx, cy, cz),
                view_up=(0, 1, 0),
                view_width=margin * max(ex, 1e-9),
                view_height=margin * max(ey, 1e-9),
            )
        if direction == "x":
            dist = 2.0 * ex + 1.0
            return cls(
                position=(cx - dist, cy, cz),
                focal_point=(cx, cy, cz),
                view_up=(0, 0, 1),
                view_width=margin * ey,
                view_height=margin * ez,
            )
        raise ValueError(f"unsupported fit direction {direction!r}")
