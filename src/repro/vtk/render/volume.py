"""Volume rendering by orthographic ray marching.

Rays are cast through the camera's view window; the scalar field is
sampled trilinearly (``scipy.ndimage.map_coordinates``) at ``steps``
positions along each ray and composited front-to-back with a colormap +
opacity transfer function. The output depth buffer records where each
ray first accumulated significant opacity, and ``brick_depth`` records
the volume's nearest extent — both of which IceT's ordered compositing
uses across ranks.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy.ndimage import map_coordinates

from repro.vtk.dataset import ImageData
from repro.vtk.render.camera import Camera
from repro.vtk.render.color import colormap, opacity_ramp
from repro.vtk.render.image import CompositeImage

__all__ = ["volume_render"]


def volume_render(
    image_data: ImageData,
    field: str,
    camera: Optional[Camera] = None,
    width: int = 256,
    height: int = 256,
    steps: int = 64,
    cmap: str = "coolwarm",
    value_range: Optional[Tuple[float, float]] = None,
    max_opacity: float = 0.9,
    opacity_power: float = 1.5,
) -> CompositeImage:
    """Ray-march ``field`` of ``image_data`` into an RGBA+depth image."""
    volume = np.asarray(image_data.field(field), dtype=np.float64)
    if value_range is None:
        value_range = (float(volume.min()), float(volume.max()))
    vmin, vmax = value_range
    if camera is None:
        camera = Camera.fit(image_data.bounds, direction="z")

    b = image_data.bounds
    corners = np.array(
        [(b[i], b[2 + j], b[4 + k]) for i in (0, 1) for j in (0, 1) for k in (0, 1)]
    )
    view_corners = camera.world_to_view(corners)
    z_near = float(view_corners[:, 2].min())
    z_far = float(view_corners[:, 2].max())
    if z_far <= z_near:
        return CompositeImage.blank(width, height)

    # Build the ray sample grid in view space: (H, W, steps, 3).
    half_w, half_h = camera.view_width / 2, camera.view_height / 2
    xs = np.linspace(-half_w, half_w, width)
    ys = np.linspace(half_h, -half_h, height)  # row 0 = top
    zs = np.linspace(z_near, z_far, steps)
    dz = (z_far - z_near) / max(steps - 1, 1)

    # View -> world: p = pos + x*right + y*up + z*forward.
    gx, gy = np.meshgrid(xs, ys)  # (H, W)
    rgba = np.zeros((height, width, 4), dtype=np.float64)
    depth = np.full((height, width), np.inf, dtype=np.float64)
    transmittance = np.ones((height, width), dtype=np.float64)

    origin = np.asarray(image_data.origin)
    spacing = np.asarray(image_data.spacing)

    base = (
        camera._pos[None, None, :]
        + gx[..., None] * camera._right[None, None, :]
        + gy[..., None] * camera._up[None, None, :]
    )  # (H, W, 3)

    # Opacity per step scales with step length so results are
    # resolution-independent-ish.
    alpha_scale = dz / max((z_far - z_near) / 16.0, 1e-9)

    for si, z in enumerate(zs):
        world = base + z * camera._forward[None, None, :]  # (H, W, 3)
        idx = (world - origin) / spacing  # grid-index coordinates
        sample = map_coordinates(
            volume,
            [idx[..., 0].ravel(), idx[..., 1].ravel(), idx[..., 2].ravel()],
            order=1,
            mode="constant",
            cval=np.nan,
        ).reshape(height, width)
        valid = np.isfinite(sample)
        if not valid.any():
            continue
        alpha = np.zeros_like(sample)
        alpha[valid] = opacity_ramp(sample[valid], vmin, vmax, max_opacity, opacity_power)
        alpha = np.clip(alpha * alpha_scale, 0.0, 1.0)
        active = valid & (alpha > 1e-4) & (transmittance > 1e-3)
        if not active.any():
            continue
        color = np.zeros((height, width, 3))
        color[active] = colormap(sample[active], cmap, vmin, vmax)
        contrib = (transmittance * alpha)[..., None]
        rgba[..., :3] += np.where(active[..., None], color * contrib, 0.0)
        rgba[..., 3] += np.where(active, transmittance * alpha, 0.0)
        first_hit = active & ~np.isfinite(depth)
        depth[first_hit] = z
        transmittance = np.where(active, transmittance * (1.0 - alpha), transmittance)

    out = CompositeImage(rgba.astype(np.float32), depth.astype(np.float32))
    out.brick_depth = z_near
    return out
