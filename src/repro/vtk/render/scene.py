"""Multi-representation local rendering (a minimal ParaView render view).

Real pipelines mix representations — e.g. Fig. 1b's volume rendering
plus surface geometry. :func:`render_scene` renders each item and
combines them with per-pixel depth-ordered 'over' compositing, so
translucent volumes correctly tint opaque geometry behind them and are
hidden by geometry in front.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.vtk.dataset import ImageData, PolyData
from repro.vtk.render.camera import Camera
from repro.vtk.render.image import CompositeImage
from repro.vtk.render.rasterizer import rasterize
from repro.vtk.render.volume import volume_render

__all__ = ["combine_pixelwise_over", "render_scene"]


def combine_pixelwise_over(a: CompositeImage, b: CompositeImage) -> CompositeImage:
    """'Over' compositing with per-pixel front/back ordering by depth."""
    a_front = np.where(np.isfinite(a.depth) | ~np.isfinite(b.depth), a.depth, np.inf) <= np.where(
        np.isfinite(b.depth), b.depth, np.inf
    )
    fa = a.rgba[..., 3:4]
    fb = b.rgba[..., 3:4]
    a_over_b = a.rgba + (1.0 - fa) * b.rgba
    b_over_a = b.rgba + (1.0 - fb) * a.rgba
    rgba = np.where(a_front[..., None], a_over_b, b_over_a)
    depth = np.minimum(a.depth, b.depth)
    return CompositeImage(rgba.astype(np.float32), depth, min(a.brick_depth, b.brick_depth))


def render_scene(
    items: Sequence[Tuple[str, Any, Dict[str, Any]]],
    camera: Optional[Camera] = None,
    width: int = 256,
    height: int = 256,
) -> CompositeImage:
    """Render a list of representations into one image.

    ``items`` entries are ``(kind, dataset, options)``:

    - ``("geometry", PolyData, {...rasterize kwargs})``
    - ``("volume", ImageData, {"field": name, ...volume_render kwargs})``

    When ``camera`` is None it is fitted to the union of the items'
    bounds.
    """
    if not items:
        return CompositeImage.blank(width, height)
    for kind, dataset, _ in items:
        if kind not in ("geometry", "volume"):
            raise ValueError(f"unknown representation kind {kind!r}")
        expected = PolyData if kind == "geometry" else ImageData
        if not isinstance(dataset, expected):
            raise TypeError(f"{kind} items need a {expected.__name__}")
    if camera is None:
        bounds = None
        for _, dataset, _ in items:
            b = np.asarray(dataset.bounds, dtype=np.float64)
            if bounds is None:
                bounds = b.copy()
            else:
                bounds[0::2] = np.minimum(bounds[0::2], b[0::2])
                bounds[1::2] = np.maximum(bounds[1::2], b[1::2])
        camera = Camera.fit(tuple(bounds))

    layers: List[CompositeImage] = []
    for kind, dataset, options in items:
        opts = dict(options)
        if kind == "geometry":
            if not isinstance(dataset, PolyData):
                raise TypeError("geometry items need a PolyData")
            layers.append(rasterize(dataset, camera, width, height, **opts))
        elif kind == "volume":
            if not isinstance(dataset, ImageData):
                raise TypeError("volume items need an ImageData")
            field = opts.pop("field")
            layers.append(
                volume_render(dataset, field, camera=camera, width=width, height=height, **opts)
            )
        else:
            raise ValueError(f"unknown representation kind {kind!r}")

    result = layers[0]
    for layer in layers[1:]:
        result = combine_pixelwise_over(result, layer)
    return result
