"""Triangle rasterization with a z-buffer.

Renders a :class:`~repro.vtk.dataset.PolyData` through a
:class:`~repro.vtk.render.camera.Camera` into a
:class:`~repro.vtk.render.image.CompositeImage`. Per-triangle loop with
vectorized barycentric coverage inside each bounding box; Lambertian
shading against a headlight; color from a per-point scalar field via a
colormap, interpolated across the triangle.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.vtk.dataset import PolyData
from repro.vtk.render.camera import Camera
from repro.vtk.render.color import colormap
from repro.vtk.render.image import CompositeImage

__all__ = ["rasterize"]


def rasterize(
    poly: PolyData,
    camera: Camera,
    width: int = 256,
    height: int = 256,
    color_field: Optional[str] = None,
    cmap: str = "viridis",
    value_range: Optional[Tuple[float, float]] = None,
    base_color: Tuple[float, float, float] = (0.8, 0.8, 0.85),
    opacity: float = 1.0,
) -> CompositeImage:
    """Render opaque (or uniformly translucent) triangles."""
    image = CompositeImage.blank(width, height)
    if poly.num_triangles == 0:
        return image

    view = camera.world_to_view(poly.points)
    px, py, depth = camera.view_to_pixels(view, width, height)
    image.brick_depth = float(depth.min())

    # Per-vertex colors.
    if color_field is not None:
        values = np.asarray(poly.point_data[color_field], dtype=np.float64)
        if value_range is None:
            value_range = (float(values.min()), float(values.max()))
        colors = colormap(values, cmap, *value_range)
    else:
        colors = np.broadcast_to(np.asarray(base_color), (poly.num_points, 3))

    # Lambert shading per triangle against a headlight (view direction).
    tri = poly.triangles
    p = poly.points
    normals = np.cross(p[tri[:, 1]] - p[tri[:, 0]], p[tri[:, 2]] - p[tri[:, 0]])
    norms = np.linalg.norm(normals, axis=1)
    norms[norms == 0] = 1.0
    normals /= norms[:, None]
    light = camera._forward
    shade = 0.25 + 0.75 * np.abs(normals @ light)  # two-sided

    zbuf = image.depth
    rgba = image.rgba
    for t in range(len(tri)):
        i0, i1, i2 = tri[t]
        x0, x1, x2 = px[i0], px[i1], px[i2]
        y0, y1, y2 = py[i0], py[i1], py[i2]
        lo_x = max(int(np.floor(min(x0, x1, x2))), 0)
        hi_x = min(int(np.ceil(max(x0, x1, x2))), width - 1)
        lo_y = max(int(np.floor(min(y0, y1, y2))), 0)
        hi_y = min(int(np.ceil(max(y0, y1, y2))), height - 1)
        if hi_x < lo_x or hi_y < lo_y:
            continue
        denom = (y1 - y2) * (x0 - x2) + (x2 - x1) * (y0 - y2)
        if abs(denom) < 1e-12:
            continue
        xs = np.arange(lo_x, hi_x + 1)
        ys = np.arange(lo_y, hi_y + 1)
        gx, gy = np.meshgrid(xs, ys)
        w0 = ((y1 - y2) * (gx - x2) + (x2 - x1) * (gy - y2)) / denom
        w1 = ((y2 - y0) * (gx - x2) + (x0 - x2) * (gy - y2)) / denom
        w2 = 1.0 - w0 - w1
        inside = (w0 >= -1e-9) & (w1 >= -1e-9) & (w2 >= -1e-9)
        if not inside.any():
            continue
        z = w0 * depth[i0] + w1 * depth[i1] + w2 * depth[i2]
        sub_z = zbuf[lo_y : hi_y + 1, lo_x : hi_x + 1]
        visible = inside & (z < sub_z) & (z > 0)
        if not visible.any():
            continue
        c = (
            w0[..., None] * colors[i0]
            + w1[..., None] * colors[i1]
            + w2[..., None] * colors[i2]
        ) * shade[t]
        sub_rgba = rgba[lo_y : hi_y + 1, lo_x : hi_x + 1]
        sub_rgba[visible, :3] = c[visible] * opacity  # premultiplied
        sub_rgba[visible, 3] = opacity
        sub_z[visible] = z[visible]
    return image
