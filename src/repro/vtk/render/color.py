"""Colormaps and opacity transfer functions (no matplotlib dependency)."""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

import numpy as np

__all__ = ["colormap", "opacity_ramp"]

# Anchor colors (RGB in [0,1]) for the built-in maps.
_MAPS = {
    # A viridis-like perceptual ramp.
    "viridis": np.array(
        [
            (0.267, 0.005, 0.329),
            (0.283, 0.141, 0.458),
            (0.254, 0.265, 0.530),
            (0.207, 0.372, 0.553),
            (0.164, 0.471, 0.558),
            (0.128, 0.567, 0.551),
            (0.135, 0.659, 0.518),
            (0.267, 0.749, 0.441),
            (0.478, 0.821, 0.318),
            (0.741, 0.873, 0.150),
            (0.993, 0.906, 0.144),
        ]
    ),
    # Cool-to-warm diverging (the ParaView default for velocity).
    "coolwarm": np.array(
        [
            (0.230, 0.299, 0.754),
            (0.552, 0.690, 0.996),
            (0.865, 0.865, 0.865),
            (0.958, 0.603, 0.482),
            (0.706, 0.016, 0.150),
        ]
    ),
    "grayscale": np.array([(0.0, 0.0, 0.0), (1.0, 1.0, 1.0)]),
}


def colormap(
    values: np.ndarray,
    name: str = "viridis",
    vmin: float = 0.0,
    vmax: float = 1.0,
) -> np.ndarray:
    """Map scalars to RGB; values clamped to [vmin, vmax]."""
    try:
        anchors = _MAPS[name]
    except KeyError:
        raise KeyError(f"unknown colormap {name!r}; known: {sorted(_MAPS)}") from None
    values = np.asarray(values, dtype=np.float64)
    if vmax <= vmin:
        t = np.zeros_like(values)
    else:
        t = np.clip((values - vmin) / (vmax - vmin), 0.0, 1.0)
    x = t * (len(anchors) - 1)
    lo = np.floor(x).astype(int)
    hi = np.minimum(lo + 1, len(anchors) - 1)
    frac = (x - lo)[..., None]
    return anchors[lo] * (1 - frac) + anchors[hi] * frac


def opacity_ramp(
    values: np.ndarray,
    vmin: float,
    vmax: float,
    max_opacity: float = 0.9,
    power: float = 1.0,
) -> np.ndarray:
    """A monotone opacity transfer function: 0 at vmin, max at vmax."""
    values = np.asarray(values, dtype=np.float64)
    if vmax <= vmin:
        return np.zeros_like(values)
    t = np.clip((values - vmin) / (vmax - vmin), 0.0, 1.0)
    return max_opacity * t**power
