"""Software rendering: rasterizer + volume ray-marcher.

Produces :class:`CompositeImage` objects (RGBA + depth) that IceT can
composite across ranks. Not OpenGL — but the images are real (PNG-
writable), the depth semantics are exactly what IceT needs, and the
costs (pixels, cells traversed) drive the DES pipeline timing model.
"""

from repro.vtk.render.camera import Camera
from repro.vtk.render.color import colormap, opacity_ramp
from repro.vtk.render.image import CompositeImage
from repro.vtk.render.rasterizer import rasterize
from repro.vtk.render.scene import combine_pixelwise_over, render_scene
from repro.vtk.render.volume import volume_render

__all__ = [
    "Camera",
    "CompositeImage",
    "colormap",
    "combine_pixelwise_over",
    "opacity_ramp",
    "rasterize",
    "render_scene",
    "volume_render",
]
