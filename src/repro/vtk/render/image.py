"""The composited image unit: RGBA + depth (+ brick ordering key)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

__all__ = ["CompositeImage"]


@dataclass
class CompositeImage:
    """An RGBA framebuffer with a depth buffer.

    - ``rgba``: (H, W, 4) float32 in [0, 1], premultiplied alpha.
    - ``depth``: (H, W) float32 view-space depth; ``inf`` where empty.
    - ``brick_depth``: scalar ordering key for translucent (over)
      compositing — the view-space depth of the rank's data brick.
    """

    rgba: np.ndarray
    depth: np.ndarray
    brick_depth: float = 0.0

    def __post_init__(self):
        self.rgba = np.asarray(self.rgba, dtype=np.float32)
        self.depth = np.asarray(self.depth, dtype=np.float32)
        if self.rgba.ndim != 3 or self.rgba.shape[2] != 4:
            raise ValueError(f"rgba must be (H, W, 4), got {self.rgba.shape}")
        if self.depth.shape != self.rgba.shape[:2]:
            raise ValueError(
                f"depth shape {self.depth.shape} != image {self.rgba.shape[:2]}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def blank(cls, width: int, height: int, brick_depth: float = 0.0) -> "CompositeImage":
        return cls(
            rgba=np.zeros((height, width, 4), dtype=np.float32),
            depth=np.full((height, width), np.inf, dtype=np.float32),
            brick_depth=brick_depth,
        )

    @property
    def shape(self) -> Tuple[int, int]:
        return self.depth.shape

    @property
    def nbytes(self) -> int:
        return self.rgba.nbytes + self.depth.nbytes

    def coverage(self) -> float:
        """Fraction of pixels with any content."""
        return float(np.isfinite(self.depth).mean())

    def copy(self) -> "CompositeImage":
        return CompositeImage(self.rgba.copy(), self.depth.copy(), self.brick_depth)

    # ------------------------------------------------------------------
    def rows(self, start: int, stop: int) -> "CompositeImage":
        """A view-slice of image rows [start, stop) (shares buffers)."""
        return CompositeImage(self.rgba[start:stop], self.depth[start:stop], self.brick_depth)

    def to_uint8(self, background: Tuple[float, float, float] = (0.0, 0.0, 0.0)) -> np.ndarray:
        """Flatten onto a background color; returns (H, W, 3) uint8."""
        bg = np.asarray(background, dtype=np.float32)
        alpha = self.rgba[..., 3:4]
        rgb = self.rgba[..., :3] + (1.0 - alpha) * bg
        return (np.clip(rgb, 0, 1) * 255).astype(np.uint8)

    def write_ppm(self, path: str, background: Tuple[float, float, float] = (0, 0, 0)) -> None:
        """Write a binary PPM (no external imaging dependency needed)."""
        rgb = self.to_uint8(background)
        h, w, _ = rgb.shape
        with open(path, "wb") as fh:
            fh.write(f"P6\n{w} {h}\n255\n".encode())
            fh.write(rgb.tobytes())


def combine_zbuffer(a: CompositeImage, b: CompositeImage) -> CompositeImage:
    """Per-pixel nearest-fragment wins (opaque geometry compositing)."""
    take_b = b.depth < a.depth
    rgba = np.where(take_b[..., None], b.rgba, a.rgba)
    depth = np.where(take_b, b.depth, a.depth)
    return CompositeImage(rgba, depth, min(a.brick_depth, b.brick_depth))


def combine_over(front: CompositeImage, back: CompositeImage) -> CompositeImage:
    """Front-to-back 'over' operator on premultiplied RGBA (volumes)."""
    fa = front.rgba[..., 3:4]
    rgba = front.rgba + (1.0 - fa) * back.rgba
    depth = np.minimum(front.depth, back.depth)
    return CompositeImage(rgba, depth, min(front.brick_depth, back.brick_depth))
