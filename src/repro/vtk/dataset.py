"""The VTK-style data model, NumPy-native.

Datasets carry named point/cell arrays in plain ``dict[str, ndarray]``
fields. All geometry is float64, connectivity int64. Datasets are
cheap containers; filters (see :mod:`repro.vtk.filters`) are pure
functions from dataset to dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ImageData", "MultiBlockDataSet", "PolyData", "UnstructuredGrid"]

#: VTK cell type id for tetrahedra (the only 3D cell our DWI meshes use).
VTK_TETRA = 10


def _validate_field(name: str, values: np.ndarray, expected: int, kind: str) -> np.ndarray:
    values = np.asarray(values)
    if values.shape[0] != expected:
        raise ValueError(
            f"{kind} array {name!r} has {values.shape[0]} entries, expected {expected}"
        )
    return values


@dataclass
class ImageData:
    """A regular (structured) grid with point-centered fields.

    ``dims`` counts points per axis (nx, ny, nz); fields are stored
    flattened in C order (z varies slowest when indexing [x, y, z] —
    we use ``np.ndarray`` of shape ``dims`` directly for clarity).
    """

    dims: Tuple[int, int, int]
    origin: Tuple[float, float, float] = (0.0, 0.0, 0.0)
    spacing: Tuple[float, float, float] = (1.0, 1.0, 1.0)
    point_data: Dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self):
        if len(self.dims) != 3 or any(d < 1 for d in self.dims):
            raise ValueError(f"bad dims {self.dims}")
        for name, values in list(self.point_data.items()):
            values = np.asarray(values)
            if values.shape != tuple(self.dims):
                raise ValueError(
                    f"point array {name!r} has shape {values.shape}, expected {self.dims}"
                )
            self.point_data[name] = values

    # ------------------------------------------------------------------
    @property
    def num_points(self) -> int:
        return int(np.prod(self.dims))

    @property
    def num_cells(self) -> int:
        return int(np.prod([max(d - 1, 0) for d in self.dims]))

    @property
    def bounds(self) -> Tuple[float, float, float, float, float, float]:
        o, s, d = self.origin, self.spacing, self.dims
        return (
            o[0], o[0] + s[0] * (d[0] - 1),
            o[1], o[1] + s[1] * (d[1] - 1),
            o[2], o[2] + s[2] * (d[2] - 1),
        )

    def set_field(self, name: str, values: np.ndarray) -> None:
        values = np.asarray(values)
        if values.shape != tuple(self.dims):
            raise ValueError(f"shape {values.shape} != dims {self.dims}")
        self.point_data[name] = values

    def field(self, name: str) -> np.ndarray:
        return self.point_data[name]

    def point_coords(self) -> np.ndarray:
        """All grid points as an (N, 3) array (x fastest)."""
        nx, ny, nz = self.dims
        xs = self.origin[0] + self.spacing[0] * np.arange(nx)
        ys = self.origin[1] + self.spacing[1] * np.arange(ny)
        zs = self.origin[2] + self.spacing[2] * np.arange(nz)
        gx, gy, gz = np.meshgrid(xs, ys, zs, indexing="ij")
        return np.column_stack([gx.ravel(), gy.ravel(), gz.ravel()])

    @property
    def nbytes(self) -> int:
        return sum(v.nbytes for v in self.point_data.values())


@dataclass
class PolyData:
    """A triangle surface with optional per-point fields."""

    points: np.ndarray  # (N, 3) float
    triangles: np.ndarray  # (M, 3) int
    point_data: Dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self):
        self.points = np.asarray(self.points, dtype=np.float64).reshape(-1, 3)
        self.triangles = np.asarray(self.triangles, dtype=np.int64).reshape(-1, 3)
        if self.triangles.size and self.triangles.max(initial=-1) >= len(self.points):
            raise ValueError("triangle index out of range")
        if self.triangles.size and self.triangles.min(initial=0) < 0:
            raise ValueError("negative triangle index")
        for name, values in list(self.point_data.items()):
            self.point_data[name] = _validate_field(name, values, len(self.points), "point")

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "PolyData":
        return cls(np.zeros((0, 3)), np.zeros((0, 3), dtype=np.int64))

    @property
    def num_points(self) -> int:
        return len(self.points)

    @property
    def num_triangles(self) -> int:
        return len(self.triangles)

    @property
    def nbytes(self) -> int:
        return (
            self.points.nbytes
            + self.triangles.nbytes
            + sum(v.nbytes for v in self.point_data.values())
        )

    def triangle_areas(self) -> np.ndarray:
        a = self.points[self.triangles[:, 0]]
        b = self.points[self.triangles[:, 1]]
        c = self.points[self.triangles[:, 2]]
        return 0.5 * np.linalg.norm(np.cross(b - a, c - a), axis=1)

    def surface_area(self) -> float:
        return float(self.triangle_areas().sum())

    @property
    def bounds(self) -> Tuple[float, float, float, float, float, float]:
        if not len(self.points):
            return (0.0,) * 6
        mins = self.points.min(axis=0)
        maxs = self.points.max(axis=0)
        return (mins[0], maxs[0], mins[1], maxs[1], mins[2], maxs[2])

    @staticmethod
    def concatenate(pieces: Sequence["PolyData"]) -> "PolyData":
        """Merge surfaces, offsetting connectivity; fields present in
        *all* pieces are concatenated, others dropped."""
        pieces = [p for p in pieces if p.num_points]
        if not pieces:
            return PolyData.empty()
        points = np.vstack([p.points for p in pieces])
        offsets = np.cumsum([0] + [p.num_points for p in pieces[:-1]])
        triangles = np.vstack(
            [p.triangles + off for p, off in zip(pieces, offsets) if p.num_triangles]
            or [np.zeros((0, 3), dtype=np.int64)]
        )
        common = set(pieces[0].point_data)
        for p in pieces[1:]:
            common &= set(p.point_data)
        point_data = {
            name: np.concatenate([p.point_data[name] for p in pieces])
            for name in sorted(common)
        }
        return PolyData(points, triangles, point_data)


@dataclass
class UnstructuredGrid:
    """A tetrahedral mesh with point and cell fields."""

    points: np.ndarray  # (N, 3)
    cells: np.ndarray  # (M, 4) tetra connectivity
    point_data: Dict[str, np.ndarray] = field(default_factory=dict)
    cell_data: Dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self):
        self.points = np.asarray(self.points, dtype=np.float64).reshape(-1, 3)
        self.cells = np.asarray(self.cells, dtype=np.int64).reshape(-1, 4)
        if self.cells.size and self.cells.max(initial=-1) >= len(self.points):
            raise ValueError("cell index out of range")
        for name, values in list(self.point_data.items()):
            self.point_data[name] = _validate_field(name, values, len(self.points), "point")
        for name, values in list(self.cell_data.items()):
            self.cell_data[name] = _validate_field(name, values, len(self.cells), "cell")

    # ------------------------------------------------------------------
    @property
    def num_points(self) -> int:
        return len(self.points)

    @property
    def num_cells(self) -> int:
        return len(self.cells)

    @property
    def nbytes(self) -> int:
        return (
            self.points.nbytes
            + self.cells.nbytes
            + sum(v.nbytes for v in self.point_data.values())
            + sum(v.nbytes for v in self.cell_data.values())
        )

    @property
    def bounds(self) -> Tuple[float, float, float, float, float, float]:
        if not len(self.points):
            return (0.0,) * 6
        mins = self.points.min(axis=0)
        maxs = self.points.max(axis=0)
        return (mins[0], maxs[0], mins[1], maxs[1], mins[2], maxs[2])

    def cell_centers(self) -> np.ndarray:
        return self.points[self.cells].mean(axis=1)

    def cell_volumes(self) -> np.ndarray:
        p = self.points[self.cells]
        a, b, c, d = p[:, 0], p[:, 1], p[:, 2], p[:, 3]
        return np.abs(np.einsum("ij,ij->i", b - a, np.cross(c - a, d - a))) / 6.0

    def total_volume(self) -> float:
        return float(self.cell_volumes().sum())


@dataclass
class MultiBlockDataSet:
    """An ordered collection of datasets (blocks may be None = absent)."""

    blocks: List[Optional[object]] = field(default_factory=list)

    def append(self, block) -> None:
        self.blocks.append(block)

    def non_empty(self) -> List[object]:
        return [b for b in self.blocks if b is not None]

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def nbytes(self) -> int:
        return sum(getattr(b, "nbytes", 0) for b in self.non_empty())

    def __iter__(self):
        return iter(self.blocks)

    def __getitem__(self, idx: int):
        return self.blocks[idx]
