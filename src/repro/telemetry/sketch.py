"""A deterministic, mergeable streaming quantile sketch.

DDSketch-style log-spaced buckets (Masson et al., VLDB'19): a value
``v > 0`` lands in bucket ``ceil(log_gamma(v))`` with
``gamma = (1 + alpha) / (1 - alpha)``, so every value in a bucket is
within relative error ``alpha`` of the bucket's representative value.
Negative values mirror into a second bucket map; magnitudes below
``min_value`` (including exact zeros) collapse into a dedicated zero
bucket and are reported as ``0.0``.

Accuracy contract (the property suite pins this):

- ``quantile(q)`` is within relative error ``alpha`` of the exact
  rank-``floor(q * (n - 1))`` order statistic (numpy's
  ``percentile(..., method="lower")``), or within absolute error
  ``min_value`` when that statistic's magnitude is below ``min_value``;
- ``merge`` is exact: ``sketch(A).merge(sketch(B))`` has identical
  bucket counts, count, min and max to ``sketch(A + B)`` built with the
  same parameters — so identical quantiles. (``total`` is a float
  accumulator and may differ by summation-order roundoff only.)

Everything is integer bucket counts plus exact min/max/sum — no
randomness, no floating-point accumulation order dependence — so two
same-seed simulation runs produce identical sketches.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["QuantileSketch"]


class QuantileSketch:
    """Streaming quantiles with bounded relative error.

    Parameters
    ----------
    alpha:
        Relative-error bound (default 1%).
    min_value:
        Magnitudes below this collapse into the zero bucket.
    """

    __slots__ = (
        "alpha", "min_value", "_gamma", "_log_gamma",
        "_pos", "_neg", "_zero", "count", "total", "_min", "_max",
    )

    def __init__(self, alpha: float = 0.01, min_value: float = 1e-12):
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha!r}")
        self.alpha = alpha
        self.min_value = min_value
        self._gamma = (1.0 + alpha) / (1.0 - alpha)
        self._log_gamma = math.log(self._gamma)
        self._pos: Dict[int, int] = {}
        self._neg: Dict[int, int] = {}
        self._zero = 0
        self.count = 0
        self.total = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    # ------------------------------------------------------------------
    def _key(self, magnitude: float) -> int:
        return int(math.ceil(math.log(magnitude) / self._log_gamma))

    def _representative(self, key: int) -> float:
        # Midpoint (harmonic) of the bucket (gamma^(k-1), gamma^k]: within
        # alpha relative error of every value in the bucket.
        return 2.0 * self._gamma ** key / (self._gamma + 1.0)

    def add(self, value: float, weight: int = 1) -> "QuantileSketch":
        """Fold one observation (optionally ``weight`` repeats) in."""
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight!r}")
        value = float(value)
        if math.isnan(value):
            raise ValueError("cannot add NaN to a quantile sketch")
        if abs(value) < self.min_value:
            self._zero += weight
        elif value > 0:
            key = self._key(value)
            self._pos[key] = self._pos.get(key, 0) + weight
        else:
            key = self._key(-value)
            self._neg[key] = self._neg.get(key, 0) + weight
        self.count += weight
        self.total += value * weight
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value
        return self

    def extend(self, values: Iterable[float]) -> "QuantileSketch":
        for v in values:
            self.add(v)
        return self

    # ------------------------------------------------------------------
    @property
    def min(self) -> Optional[float]:
        return self._min

    @property
    def max(self) -> Optional[float]:
        return self._max

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> float:
        """The rank-``floor(q * (n - 1))`` order statistic, within alpha.

        Results are clamped to the exact observed [min, max], so
        ``quantile(0.0)`` and ``quantile(1.0)`` are exact.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if self.count == 0:
            raise ValueError("quantile of an empty sketch")
        # The extremes are tracked exactly; representatives may sit up to
        # alpha away from them, so answer from the exact bounds directly.
        if q == 0.0:
            return self._min
        if q == 1.0:
            return self._max
        rank = int(math.floor(q * (self.count - 1)))
        seen = 0
        # Ascending value order: negatives from largest magnitude down,
        # then zeros, then positives from smallest magnitude up.
        for key in sorted(self._neg, reverse=True):
            seen += self._neg[key]
            if seen > rank:
                return self._clamp(-self._representative(key))
        seen += self._zero
        if seen > rank:
            return self._clamp(0.0)
        for key in sorted(self._pos):
            seen += self._pos[key]
            if seen > rank:
                return self._clamp(self._representative(key))
        # Unreachable unless counts were corrupted externally.
        raise RuntimeError("sketch bucket counts do not sum to count")

    def _clamp(self, value: float) -> float:
        assert self._min is not None and self._max is not None
        return min(max(value, self._min), self._max)

    def quantiles(self, qs: Iterable[float]) -> List[float]:
        return [self.quantile(q) for q in qs]

    # ------------------------------------------------------------------
    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into ``self`` (exact; requires equal params)."""
        if (other.alpha, other.min_value) != (self.alpha, self.min_value):
            raise ValueError(
                "cannot merge sketches with different parameters: "
                f"({self.alpha}, {self.min_value}) vs ({other.alpha}, {other.min_value})"
            )
        for key, cnt in other._pos.items():
            self._pos[key] = self._pos.get(key, 0) + cnt
        for key, cnt in other._neg.items():
            self._neg[key] = self._neg.get(key, 0) + cnt
        self._zero += other._zero
        self.count += other.count
        self.total += other.total
        for bound in (other._min, other._max):
            if bound is None:
                continue
            if self._min is None or bound < self._min:
                self._min = bound
            if self._max is None or bound > self._max:
                self._max = bound
        return self

    # ------------------------------------------------------------------
    def state(self) -> Tuple:
        """Canonical state tuple (equality = identical quantiles).

        Excludes ``total``: it is a float accumulator whose value can
        differ by summation-order roundoff between a merged sketch and
        one built from the concatenated stream.
        """
        return (
            self.alpha,
            self.min_value,
            tuple(sorted(self._pos.items())),
            tuple(sorted(self._neg.items())),
            self._zero,
            self.count,
            self._min,
            self._max,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantileSketch):
            return NotImplemented
        return self.state() == other.state()

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<QuantileSketch n={self.count} alpha={self.alpha} "
            f"min={self._min} max={self._max}>"
        )
