"""Telemetry: hierarchical tracing, metrics, and trace analysis.

The measurement layer the evaluation stands on (ISSUE 2). Three parts:

- :mod:`repro.telemetry.sketch` / :mod:`repro.telemetry.metrics` —
  deterministic streaming quantiles and a typed per-component metrics
  registry (counters, gauges, histograms), owned by each
  :class:`~repro.sim.kernel.Simulation` as ``sim.metrics``;
- :mod:`repro.telemetry.tree` / :mod:`repro.telemetry.critical_path` —
  the span *tree* view over :class:`~repro.sim.trace.Tracer` output and
  the critical-path analyzer that attributes a timestep's wall clock to
  fabric/compute/gossip/protocol without double counting;
- :mod:`repro.telemetry.export` — Chrome ``trace_event`` JSON (opens in
  Perfetto / ``chrome://tracing``) and text/JSON reports, surfaced via
  ``python -m repro.bench report``.

Everything here is deterministic: same seed, same trace, same digest.
"""

from repro.telemetry.critical_path import Attribution, CriticalPathAnalyzer, LAYER_OF
from repro.telemetry.export import (
    chrome_trace_events,
    render_text_report,
    telemetry_report,
    write_chrome_trace,
)
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.sketch import QuantileSketch
from repro.telemetry.tree import SpanNode, SpanTree, tree_shape

__all__ = [
    "Attribution",
    "Counter",
    "CriticalPathAnalyzer",
    "Gauge",
    "Histogram",
    "LAYER_OF",
    "MetricsRegistry",
    "QuantileSketch",
    "SpanNode",
    "SpanTree",
    "chrome_trace_events",
    "render_text_report",
    "telemetry_report",
    "tree_shape",
    "write_chrome_trace",
]
