"""Critical-path analysis: where did the timestep's wall clock go?

Walks one iteration's span subtree and attributes every instant of the
parent span to exactly one layer — ``fabric`` (NA sends, RDMA, MoNA /
IceT / MPI collectives), ``compute`` (Margo compute charges, pipeline
execution), ``gossip`` (SWIM), ``protocol`` (Colza client/server RPC
machinery) — or to ``idle`` when no descendant span is active.

Attribution is a sweep line over the elementary intervals induced by
descendant span boundaries, clipped to the parent span; at each
instant the *deepest* active span wins (ties broken by later start,
then larger span id — all deterministic). Because every instant is
assigned exactly once, the conservation law

    sum(attribution values) + idle == parent duration

holds by construction to float roundoff; the conservation test fleet
pins it across chaos scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.telemetry.tree import SpanNode

__all__ = ["Attribution", "CriticalPathAnalyzer", "LAYER_OF", "layer_of"]

#: Span-name prefix (up to the first dot) -> layer.
LAYER_OF: Dict[str, str] = {
    "na": "fabric",
    "mona": "fabric",
    "icet": "fabric",
    "mpi": "fabric",
    "pipeline": "compute",
    "catalyst": "compute",
    "dataspaces": "compute",
    "damaris": "compute",
    "ssg": "gossip",
    "colza": "protocol",
    "hg": "protocol",
    "margo": "protocol",
}

#: Span names that override their prefix's layer.
_NAME_OVERRIDES: Dict[str, str] = {
    "margo.compute": "compute",
}

LAYERS: Tuple[str, ...] = ("fabric", "compute", "gossip", "protocol", "other")


def layer_of(span_name: str) -> str:
    """Layer of a span name (``other`` for unknown prefixes)."""
    override = _NAME_OVERRIDES.get(span_name)
    if override is not None:
        return override
    prefix = span_name.split(".", 1)[0]
    return LAYER_OF.get(prefix, "other")


@dataclass
class Attribution:
    """Exclusive per-layer time for one parent span."""

    span_id: int
    name: str
    duration: float
    layers: Dict[str, float] = field(default_factory=dict)
    #: Exclusive time per span *name* (finer grain than layers).
    by_name: Dict[str, float] = field(default_factory=dict)
    idle: float = 0.0

    @property
    def busy(self) -> float:
        return sum(self.layers.values())

    def check_conservation(self, rel_tol: float = 1e-9, abs_tol: float = 1e-9) -> float:
        """Residual of busy + idle - duration; raises if non-conserving."""
        residual = self.busy + self.idle - self.duration
        bound = abs_tol + rel_tol * abs(self.duration)
        if abs(residual) > bound:
            raise AssertionError(
                f"time not conserved for span {self.name!r} (#{self.span_id}): "
                f"busy={self.busy!r} + idle={self.idle!r} != duration={self.duration!r} "
                f"(residual {residual!r})"
            )
        return residual

    def to_dict(self) -> Dict[str, object]:
        return {
            "span_id": self.span_id,
            "name": self.name,
            "duration": self.duration,
            "layers": {k: self.layers[k] for k in sorted(self.layers)},
            "by_name": {k: self.by_name[k] for k in sorted(self.by_name)},
            "idle": self.idle,
        }


class CriticalPathAnalyzer:
    """Attributes a span's wall clock across its descendant spans."""

    def __init__(self, layer_fn=layer_of):
        self._layer_fn = layer_fn

    # ------------------------------------------------------------------
    def attribute(self, node: SpanNode) -> Attribution:
        """Sweep-line attribution of ``node``'s duration (see module doc)."""
        span = node.span
        if span.end is None:
            raise ValueError(f"span {span.name!r} (#{span.id}) is unfinished")
        lo, hi = span.start, span.end
        out = Attribution(span_id=span.id, name=span.name, duration=hi - lo)
        if hi <= lo:
            return out

        # Finished descendants clipped to the parent window, with depth.
        intervals: List[Tuple[float, float, int, float, int, str]] = []
        for child in node.children:
            self._collect(child, depth=1, lo=lo, hi=hi, out=intervals)
        if not intervals:
            out.idle = out.duration
            return out

        boundaries = sorted({lo, hi, *(s for s, *_ in intervals), *(e for _, e, *_ in intervals)})
        for left, right in zip(boundaries, boundaries[1:]):
            width = right - left
            if width <= 0:
                continue
            # Deepest active span wins; ties -> later start, larger id.
            winner = None
            for start, end, depth, w_start, span_id, name in intervals:
                if start <= left and end >= right:
                    key = (depth, w_start, span_id)
                    if winner is None or key > winner[0]:
                        winner = (key, name)
            if winner is None:
                out.idle += width
            else:
                name = winner[1]
                layer = self._layer_fn(name)
                out.layers[layer] = out.layers.get(layer, 0.0) + width
                out.by_name[name] = out.by_name.get(name, 0.0) + width
        return out

    def _collect(
        self,
        node: SpanNode,
        depth: int,
        lo: float,
        hi: float,
        out: List[Tuple[float, float, int, float, int, str]],
    ) -> None:
        span = node.span
        if span.end is not None:
            start = max(span.start, lo)
            end = min(span.end, hi)
            if end > start:
                out.append((start, end, depth, span.start, span.id, span.name))
        for child in node.children:
            self._collect(child, depth + 1, lo, hi, out)

    # ------------------------------------------------------------------
    def iteration_breakdown(self, node: SpanNode) -> Dict[str, object]:
        """Report-ready attribution of one ``colza.iteration`` span."""
        attribution = self.attribute(node)
        attribution.check_conservation()
        phases: Dict[str, float] = {}
        for child in node.children:
            if child.finished and child.name.startswith("colza."):
                phase = child.name.split(".", 1)[1]
                phases[phase] = phases.get(phase, 0.0) + child.duration
        return {
            "iteration": node.tags.get("iteration"),
            "duration": attribution.duration,
            "phases": {k: phases[k] for k in sorted(phases)},
            "layers": {k: attribution.layers[k] for k in sorted(attribution.layers)},
            "idle": attribution.idle,
        }
