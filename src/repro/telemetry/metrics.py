"""Typed metrics: counters, gauges, histograms, per-component registry.

Every :class:`~repro.sim.kernel.Simulation` owns one
:class:`MetricsRegistry` (``sim.metrics``). Library layers register
their metrics under a component scope (``na``, ``mercury``, ``margo``,
``ssg``, ``mona``, ``icet``, ``core``)::

    na = sim.metrics.scope("na")
    na.counter("messages").inc()
    na.histogram("transit_seconds").observe(0.002)

Names are ``<component>.<metric>``; re-registering a name as a
different metric kind raises. Histograms combine fixed buckets (for
distribution reports) with a :class:`~repro.telemetry.sketch
.QuantileSketch` (for p50/p90/p99). Snapshots serialize
deterministically — they feed the bench reports and the trace digest's
sibling artifacts, so two same-seed runs must produce identical bytes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.telemetry.sketch import QuantileSketch

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "MetricScope"]

#: Default histogram buckets: log-spaced seconds, 1 µs .. 1000 s.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    10.0 ** e for e in range(-6, 4)
)


class Counter:
    """A monotonically increasing total."""

    kind = "counter"
    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount!r})")
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A value that can go up and down (view size, live servers...)."""

    kind = "gauge"
    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Fixed-bucket distribution + streaming quantile sketch.

    ``buckets`` are upper bounds (a final +inf bucket is implicit);
    ``observe`` feeds both the bucket counts and the sketch, so reports
    can show the coarse shape and accurate p50/p90/p99 side by side.
    """

    kind = "histogram"
    __slots__ = ("name", "bounds", "bucket_counts", "sketch")

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        alpha: float = 0.01,
    ):
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram {name!r} buckets must be strictly increasing")
        self.name = name
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.sketch = QuantileSketch(alpha=alpha)

    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        value = float(value)
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                idx = i
                break
        self.bucket_counts[idx] += 1
        self.sketch.add(value)

    @property
    def count(self) -> int:
        return self.sketch.count

    @property
    def total(self) -> float:
        return self.sketch.total

    @property
    def min(self) -> Optional[float]:
        return self.sketch.min

    @property
    def max(self) -> Optional[float]:
        return self.sketch.max

    @property
    def mean(self) -> Optional[float]:
        return self.sketch.mean

    def quantile(self, q: float) -> float:
        return self.sketch.quantile(q)

    def snapshot(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "kind": self.kind,
            "count": self.count,
            "total": self.total,
        }
        if self.count:
            out.update(
                min=self.min,
                max=self.max,
                mean=self.mean,
                p50=self.quantile(0.50),
                p90=self.quantile(0.90),
                p99=self.quantile(0.99),
            )
        out["buckets"] = {
            self._bucket_label(i): c
            for i, c in enumerate(self.bucket_counts)
            if c
        }
        return out

    def _bucket_label(self, idx: int) -> str:
        if idx == len(self.bounds):
            return "+inf"
        return repr(self.bounds[idx])


Metric = Union[Counter, Gauge, Histogram]


class MetricScope:
    """A component-namespaced view of the registry."""

    __slots__ = ("_registry", "component")

    def __init__(self, registry: "MetricsRegistry", component: str):
        self._registry = registry
        self.component = component

    def counter(self, name: str) -> Counter:
        return self._registry.counter(f"{self.component}.{name}")

    def gauge(self, name: str) -> Gauge:
        return self._registry.gauge(f"{self.component}.{name}")

    def histogram(self, name: str, **kwargs: Any) -> Histogram:
        return self._registry.histogram(f"{self.component}.{name}", **kwargs)


class MetricsRegistry:
    """All metrics of one simulation, keyed ``<component>.<metric>``."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}
        self._scopes: Dict[str, MetricScope] = {}

    # ------------------------------------------------------------------
    def scope(self, component: str) -> MetricScope:
        # Scopes are stateless views; interning them keeps hot paths
        # (one scope() call per probe/ping at SWIM scale) allocation-free.
        scope = self._scopes.get(component)
        if scope is None:
            scope = self._scopes[component] = MetricScope(self, component)
        return scope

    def _get_or_create(self, name: str, factory, kind: str) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif metric.kind != kind:
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, not {kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, lambda: Counter(name), "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name), "gauge")

    def histogram(self, name: str, **kwargs: Any) -> Histogram:
        return self._get_or_create(name, lambda: Histogram(name, **kwargs), "histogram")

    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def components(self) -> List[str]:
        return sorted({name.split(".", 1)[0] for name in self._metrics})

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """All metrics as a name-sorted plain dict (JSON-ready)."""
        return {name: self._metrics[name].snapshot() for name in self.names()}

    def clear(self) -> None:
        self._metrics.clear()
