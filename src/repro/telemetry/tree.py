"""The span *tree*: hierarchy view over a Tracer's flat span list.

The tracer records parentage (``Span.parent``) at begin time — within a
task via the span stack, across tasks via spawn inheritance, and across
processes via the RPC trace context. This module materializes that
into a navigable tree, plus the *shape* summary the golden-trace
regression tests pin: names, nesting and counts, never timestamps.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

from repro.sim.trace import Span, Tracer

__all__ = ["SpanNode", "SpanTree", "tree_shape"]


class SpanNode:
    """One span plus its children (in span-id order)."""

    __slots__ = ("span", "children", "parent")

    def __init__(self, span: Span):
        self.span = span
        self.children: List["SpanNode"] = []
        self.parent: Optional["SpanNode"] = None

    # Pass-throughs ------------------------------------------------------
    @property
    def name(self) -> str:
        return self.span.name

    @property
    def tags(self) -> Dict[str, Any]:
        return self.span.tags

    @property
    def duration(self) -> float:
        return self.span.duration

    @property
    def finished(self) -> bool:
        return self.span.end is not None

    def walk(self) -> Iterator["SpanNode"]:
        """Pre-order traversal of this subtree (self included)."""
        yield self
        for child in self.children:
            yield from child.walk()

    def depth(self) -> int:
        """Longest root-to-leaf span count in this subtree (>= 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def find(self, name: str, **tags: Any) -> Iterator["SpanNode"]:
        for node in self.walk():
            if node.name != name:
                continue
            if all(node.tags.get(k) == v for k, v in tags.items()):
                yield node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SpanNode {self.name!r} children={len(self.children)}>"


class SpanTree:
    """The forest of all spans recorded by one tracer."""

    def __init__(self, spans: List[Span]):
        self.nodes: Dict[int, SpanNode] = {s.id: SpanNode(s) for s in spans}
        self.roots: List[SpanNode] = []
        for span in spans:
            node = self.nodes[span.id]
            parent = self.nodes.get(span.parent) if span.parent is not None else None
            if parent is not None:
                node.parent = parent
                parent.children.append(node)
            else:
                self.roots.append(node)

    @classmethod
    def from_tracer(cls, tracer: Tracer) -> "SpanTree":
        return cls(list(tracer.spans))

    # ------------------------------------------------------------------
    def walk(self) -> Iterator[SpanNode]:
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str, **tags: Any) -> Iterator[SpanNode]:
        for root in self.roots:
            yield from root.find(name, **tags)

    def node(self, span_id: int) -> Optional[SpanNode]:
        return self.nodes.get(span_id)

    def iterations(self, pipeline: Optional[str] = None) -> List[SpanNode]:
        """All ``colza.iteration`` spans, in id (creation) order."""
        out = [n for n in self.walk() if n.name == "colza.iteration"]
        if pipeline is not None:
            out = [n for n in out if n.tags.get("pipeline") in (None, pipeline)]
        return out

    def __len__(self) -> int:
        return len(self.nodes)


def tree_shape(node: SpanNode, include_unfinished: bool = False) -> Dict[str, Any]:
    """The timestamp-free shape of a subtree, for golden fixtures.

    Children are aggregated by name recursively: two same-named
    siblings merge, their counts sum, and their child shapes merge —
    so the shape is stable under timing jitter but changes whenever a
    span name, a nesting relationship, or an op count changes.
    """
    shape = {"name": node.name, "count": 1}
    children = _merge_child_shapes(node, include_unfinished)
    if children:
        shape["children"] = children
    return shape


def _merge_child_shapes(node: SpanNode, include_unfinished: bool) -> List[Dict[str, Any]]:
    merged: Dict[str, Dict[str, Any]] = {}
    for child in node.children:
        if not include_unfinished and not child.finished:
            continue
        child_shape = tree_shape(child, include_unfinished)
        into = merged.get(child.name)
        if into is None:
            merged[child.name] = child_shape
        else:
            into["count"] += child_shape["count"]
            _merge_shape_lists(into, child_shape)
    return [merged[name] for name in sorted(merged)]


def _merge_shape_lists(into: Dict[str, Any], other: Dict[str, Any]) -> None:
    """Fold ``other``'s children list into ``into``'s, by name."""
    other_children = other.get("children") or []
    if not other_children:
        return
    existing = {c["name"]: c for c in into.setdefault("children", [])}
    for child in other_children:
        match = existing.get(child["name"])
        if match is None:
            into["children"].append(child)
            existing[child["name"]] = child
        else:
            match["count"] += child["count"]
            _merge_shape_lists(match, child)
    into["children"].sort(key=lambda c: c["name"])
