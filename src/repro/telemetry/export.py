"""Exporters: Chrome ``trace_event`` JSON and text/JSON reports.

The Chrome export follows the Trace Event Format (the JSON flavor
Perfetto and ``chrome://tracing`` load): stacked spans become complete
(``"ph": "X"``) events on one track per simulation task, async spans
(message transits) become async begin/end (``"b"``/``"e"``) pairs, and
every event carries its span id and parent span id in ``args`` so the
hierarchy survives even across tracks. Timestamps are microseconds of
*simulated* time.

``telemetry_report`` bundles the span summary, per-iteration critical
path breakdowns, and the metrics snapshot into one JSON-ready dict;
``render_text_report`` pretty-prints it for the CLI.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.sim.trace import canonical_tags
from repro.telemetry.critical_path import CriticalPathAnalyzer, layer_of
from repro.telemetry.tree import SpanTree

__all__ = [
    "chrome_trace_events",
    "render_text_report",
    "telemetry_report",
    "write_chrome_trace",
]


def chrome_trace_events(tracer) -> List[Dict[str, Any]]:
    """All finished spans as Chrome trace events (+ counter totals)."""
    events: List[Dict[str, Any]] = []
    tids: Dict[str, int] = {}

    def tid_for(task: str) -> int:
        tid = tids.get(task)
        if tid is None:
            tid = len(tids) + 1
            tids[task] = tid
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": 0,
                    "tid": tid,
                    "args": {"name": task or "<root>"},
                }
            )
        return tid

    for span in tracer.spans:
        if span.end is None:
            continue
        args = canonical_tags(span.tags)
        args["span_id"] = span.id
        if span.parent is not None:
            args["parent_span_id"] = span.parent
        common = {
            "name": span.name,
            "cat": layer_of(span.name),
            "pid": 0,
            "tid": tid_for(span.task),
            "args": args,
        }
        if span.detached:
            # Async pair: renders as its own nestable track slice, so
            # overlapping message transits don't corrupt task tracks.
            events.append(
                {**common, "ph": "b", "id": span.id, "ts": span.start * 1e6}
            )
            events.append(
                {**common, "ph": "e", "id": span.id, "ts": span.end * 1e6}
            )
        else:
            events.append(
                {
                    **common,
                    "ph": "X",
                    "ts": span.start * 1e6,
                    "dur": (span.end - span.start) * 1e6,
                }
            )
    return events


def write_chrome_trace(tracer, path: str, metrics=None) -> str:
    """Write a Perfetto-loadable JSON object trace to ``path``."""
    payload: Dict[str, Any] = {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
    }
    if metrics is not None:
        payload["otherData"] = {"metrics": metrics.snapshot()}
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=None, separators=(",", ":"))
    return path


# ---------------------------------------------------------------------------
# reports
def telemetry_report(sim, pipeline: Optional[str] = None) -> Dict[str, Any]:
    """Span summary + per-iteration critical paths + metrics snapshot."""
    tree = SpanTree.from_tracer(sim.trace)
    analyzer = CriticalPathAnalyzer()
    iterations = [
        analyzer.iteration_breakdown(node)
        for node in tree.iterations(pipeline)
        if node.finished
    ]
    return {
        "now": sim.now,
        "spans": sim.trace.summary(),
        "iterations": iterations,
        "counters": dict(sim.trace.counters),
        "metrics": sim.metrics.snapshot(),
    }


def render_text_report(report: Dict[str, Any]) -> str:
    """Human-readable rendering of :func:`telemetry_report` output."""
    from repro.bench.reporting import Table

    lines: List[str] = [f"telemetry report @ t={report['now']:.3f}s (simulated)"]

    spans = report["spans"]
    if spans:
        table = Table("spans", ["name", "count", "total_s", "mean_s", "p50_s", "p99_s", "max_s"])
        for name in sorted(spans):
            entry = spans[name]
            table.add(
                name,
                int(entry["count"]),
                f"{entry['total']:.6f}",
                f"{entry['mean']:.6f}",
                f"{entry['p50']:.6f}",
                f"{entry['p99']:.6f}",
                f"{entry['max']:.6f}",
            )
        lines += ["", table.render()]

    iterations = report["iterations"]
    if iterations:
        table = Table(
            "critical path per iteration",
            ["iteration", "duration_s", "fabric_s", "compute_s", "gossip_s", "protocol_s", "other_s", "idle_s"],
        )
        for entry in iterations:
            layers = entry["layers"]
            table.add(
                entry["iteration"],
                f"{entry['duration']:.6f}",
                f"{layers.get('fabric', 0.0):.6f}",
                f"{layers.get('compute', 0.0):.6f}",
                f"{layers.get('gossip', 0.0):.6f}",
                f"{layers.get('protocol', 0.0):.6f}",
                f"{layers.get('other', 0.0):.6f}",
                f"{entry['idle']:.6f}",
            )
        lines += ["", table.render()]

    metrics = report["metrics"]
    if metrics:
        table = Table("metrics", ["name", "kind", "value"])
        for name in sorted(metrics):
            snap = metrics[name]
            if snap["kind"] == "histogram":
                if snap["count"]:
                    value = (
                        f"n={snap['count']} mean={snap['mean']:.3g} "
                        f"p50={snap['p50']:.3g} p99={snap['p99']:.3g} max={snap['max']:.3g}"
                    )
                else:
                    value = "n=0"
            else:
                value = f"{snap['value']:g}"
            table.add(name, snap["kind"], value)
        lines += ["", table.render()]

    if report["counters"]:
        table = Table("trace counters", ["name", "value"])
        for name in sorted(report["counters"]):
            table.add(name, f"{report['counters'][name]:g}")
        lines += ["", table.render()]

    return "\n".join(lines)
