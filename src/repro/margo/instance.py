"""Margo instances and providers.

A :class:`MargoInstance` is the per-process Mochi runtime: one Mercury
instance, one (or more) Argobots xstream, and a registry of providers.
Provider RPCs are namespaced ``"<provider>/<method>"`` on the wire, so
several providers coexist on one endpoint — exactly Margo's
``provider_id`` mechanism.

Handlers declared on a provider are *bound generators*:
``method(self, margo, input)``. They run as ULTs; blocking on the
network yields the xstream (the Argobots advantage the paper leans on),
while explicit compute goes through ``margo.compute(seconds)``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Optional

from repro.argo import Xstream
from repro.mercury import MercuryInstance
from repro.na.address import Address
from repro.na.costmodel import CostModel, get_cost_model
from repro.na.fabric import Fabric
from repro.na.payload import MemoryHandle
from repro.sim.kernel import Event, Simulation

__all__ = ["MargoInstance", "Provider"]


class Provider:
    """Base class for Margo providers (services exporting RPCs).

    Subclasses call :meth:`export` to publish generator methods. The
    provider name prefixes every RPC, mirroring Margo provider ids.
    """

    def __init__(self, margo: "MargoInstance", name: str):
        self.margo = margo
        self.name = name
        self._exported: list = []
        margo._attach_provider(self)

    def export(self, method_name: str, handler: Callable[..., Generator]) -> None:
        """Publish ``handler(margo_instance_input) -> output`` as
        ``"<provider>/<method>"``."""
        rpc_name = f"{self.name}/{method_name}"

        def wrapper(_hg: MercuryInstance, input: Any) -> Generator:
            return (yield from handler(input))

        self.margo.hg.register_rpc(rpc_name, wrapper)
        self._exported.append(method_name)

    def unexport(self, method_name: str) -> None:
        self.margo.hg.deregister_rpc(f"{self.name}/{method_name}")
        if method_name in self._exported:
            self._exported.remove(method_name)

    def shutdown(self) -> None:
        """Detach from the instance and withdraw every exported RPC.

        Without the withdrawal a late ``forward`` would still dispatch
        into a provider that considers itself gone — the handler would
        run against torn-down state instead of timing out like every
        other message to a departed peer.
        """
        for method_name in list(self._exported):
            self.unexport(method_name)
        self.margo._detach_provider(self)


class MargoInstance:
    """The per-process Mochi runtime."""

    def __init__(
        self,
        sim: Simulation,
        fabric: Fabric,
        name: str,
        node_index: int,
        model: Optional[CostModel] = None,
    ):
        self.sim = sim
        self.fabric = fabric
        self.name = name
        self.node_index = node_index
        self.model = model or get_cost_model("mona")
        self.xstream = Xstream(sim, name=f"{name}.es0")
        self.hg = MercuryInstance(sim, fabric, name, node_index, self.model)
        self.providers: Dict[str, Provider] = {}
        self._finalized = False

    # ------------------------------------------------------------------
    @property
    def address(self) -> Address:
        return self.hg.address

    # RPC ---------------------------------------------------------------
    def forward(
        self,
        dest: Address,
        rpc_name: str,
        input: Any = None,
        nbytes: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> Generator[Event, Any, Any]:
        """Client-side RPC (``yield from``)."""
        return (yield from self.hg.forward(dest, rpc_name, input, nbytes=nbytes, timeout=timeout))

    def provider_call(
        self,
        dest: Address,
        provider: str,
        method: str,
        input: Any = None,
        nbytes: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> Generator[Event, Any, Any]:
        """Call ``method`` on a named provider at ``dest``."""
        return (
            yield from self.hg.forward(
                dest, f"{provider}/{method}", input, nbytes=nbytes, timeout=timeout
            )
        )

    # bulk ----------------------------------------------------------------
    def expose(self, payload: Any) -> MemoryHandle:
        return self.hg.expose(payload)

    def bulk_pull(self, handle: MemoryHandle) -> Event:
        return self.hg.bulk_pull(handle)

    def bulk_push(self, handle: MemoryHandle, payload: Any) -> Event:
        return self.hg.bulk_push(handle, payload)

    # tasking --------------------------------------------------------------
    def spawn(self, gen: Generator, name: str = "") -> "Any":
        """Run a ULT on this instance's xstream."""
        return self.xstream.spawn(gen, name=name or f"{self.name}.ult")

    def compute(self, seconds: float) -> Generator[Event, Any, None]:
        """Charge serialized compute on this process's core.

        A ``"margo.compute"`` interceptor may return a cost multiplier
        (slow-node fault injection: thermal throttling, a noisy
        neighbor, a failing disk behind the pipeline).
        """
        factor = self.sim.intercept("margo.compute", self.name)
        if factor is not None:
            seconds *= float(factor)
        span = self.sim.trace.begin("margo.compute", instance=self.name, seconds=seconds)
        result = yield from self.xstream.compute(seconds)
        self.sim.trace.end(span)
        self.sim.metrics.scope("margo").histogram("compute_seconds").observe(
            span.duration if span.recorded else seconds
        )
        return result

    # lifecycle --------------------------------------------------------------
    def _attach_provider(self, provider: Provider) -> None:
        if provider.name in self.providers:
            raise ValueError(f"provider {provider.name!r} already attached to {self.name}")
        self.providers[provider.name] = provider

    def _detach_provider(self, provider: Provider) -> None:
        self.providers.pop(provider.name, None)

    def finalize(self, quiesce: bool = False) -> None:
        """Shut the runtime down (endpoint deregistered, ULTs survive
        only until their next network operation)."""
        if self._finalized:
            return
        self._finalized = True
        for provider in list(self.providers.values()):
            provider.shutdown()
        self.hg.finalize(quiesce=quiesce)

    @property
    def finalized(self) -> bool:
        return self._finalized

    def __repr__(self) -> str:  # pragma: no cover
        return f"<MargoInstance {self.name!r} at {self.address}>"
