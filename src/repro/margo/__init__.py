"""Margo-sim: Mercury + Argobots bound together, plus providers.

Margo is the Mochi runtime glue: it hides Mercury's progress loop in an
Argobots ULT and gives services a *provider* abstraction (a named
object exporting RPCs). Colza servers, the SSG agents and the
DataSpaces baseline are all Margo providers here.
"""

from repro.margo.instance import MargoInstance, Provider

__all__ = ["MargoInstance", "Provider"]
