"""PMIx-sim: run-time resource requests to the job scheduler.

§II-F: "The scientific application itself, or even existing processes
of the staging area, could request such addition, provided that a
mechanism is available for them to request resources. This could be
implemented for example using PMIx." §IV-A adds that schedulers are
growing resize capabilities and could prioritize expanding existing
jobs.

This package implements that mechanism against the cluster model:

- :class:`ResourceManager` — owns the machine's free-node pool; grants
  FIFO-queued allocation requests after a scheduler-decision latency,
  and reclaims released nodes;
- :class:`PmixClient` — the per-application handle
  (``PMIx_Allocation_request``-style): ask for N nodes, get node
  indices back (possibly after waiting for capacity).
"""

from repro.pmix.resmgr import AllocationDenied, PmixClient, ResourceManager

__all__ = ["AllocationDenied", "PmixClient", "ResourceManager"]
