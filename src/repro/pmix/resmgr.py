"""The resource manager and its PMIx-style client."""

from __future__ import annotations

from collections import deque
from typing import Deque, Generator, List, Optional, Set, Tuple

from repro.sim.kernel import Event, Simulation
from repro.sim.platform import Cluster

__all__ = ["AllocationDenied", "PmixClient", "ResourceManager"]


class AllocationDenied(RuntimeError):
    """The scheduler refused the request (over limit, or non-blocking
    request with no capacity)."""


class ResourceManager:
    """FIFO node allocator over a :class:`Cluster`.

    Parameters
    ----------
    managed_nodes:
        Node indices the scheduler may hand out (defaults to all).
    decision_latency_s:
        Mean scheduler decision time per grant; actual draws are
        lognormal around it (real schedulers don't answer instantly,
        which is part of Fig. 4's point about full restarts).
    """

    def __init__(
        self,
        sim: Simulation,
        cluster: Cluster,
        managed_nodes: Optional[List[int]] = None,
        decision_latency_s: float = 1.0,
    ):
        self.sim = sim
        self.cluster = cluster
        nodes = managed_nodes if managed_nodes is not None else list(range(len(cluster)))
        self._free: List[int] = sorted(nodes)
        self._allocated: Set[int] = set()
        self.decision_latency_s = decision_latency_s
        self._queue: Deque[Tuple[int, Event]] = deque()
        #: Totals for reports.
        self.grants = 0
        self.releases = 0

    # ------------------------------------------------------------------
    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def _decision_delay(self) -> float:
        rng = self.sim.rng.stream("pmix.decision")
        return self.decision_latency_s * float(rng.lognormal(0.0, 0.4))

    # ------------------------------------------------------------------
    def allocate(self, count: int, blocking: bool = True) -> Generator:
        """Request ``count`` nodes; returns their indices.

        Blocking requests queue FIFO until capacity frees up;
        non-blocking ones raise :class:`AllocationDenied` when the pool
        can't satisfy them immediately.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        if count > len(self._free) + len(self._allocated):
            raise AllocationDenied(
                f"request for {count} nodes exceeds the machine ({len(self._free) + len(self._allocated)} managed)"
            )
        yield self.sim.timeout(self._decision_delay())
        if len(self._free) < count:
            if not blocking:
                raise AllocationDenied(
                    f"{count} nodes requested, {len(self._free)} free"
                )
            grant = Event(self.sim, name="pmix-grant")
            self._queue.append((count, grant))
            nodes = yield grant
            return nodes
        return self._grant(count)

    def _grant(self, count: int) -> List[int]:
        nodes = self._free[:count]
        del self._free[:count]
        self._allocated.update(nodes)
        self.grants += 1
        return nodes

    def release(self, nodes: List[int]) -> None:
        """Return nodes to the pool, waking queued requests in order."""
        for node in nodes:
            if node not in self._allocated:
                raise ValueError(f"node {node} was not allocated by this manager")
            self._allocated.discard(node)
            self._free.append(node)
        self._free.sort()
        self.releases += 1
        while self._queue and len(self._free) >= self._queue[0][0]:
            count, grant = self._queue.popleft()
            if grant.fired:
                continue
            grant.succeed(self._grant(count))


class PmixClient:
    """An application's handle for run-time resource requests."""

    def __init__(self, manager: ResourceManager, job_name: str = "job"):
        self.manager = manager
        self.job_name = job_name
        self.held: List[int] = []

    def request_nodes(self, count: int, blocking: bool = True) -> Generator:
        """PMIx_Allocation_request: grow this job by ``count`` nodes."""
        nodes = yield from self.manager.allocate(count, blocking=blocking)
        self.held.extend(nodes)
        return nodes

    def return_nodes(self, nodes: List[int]) -> None:
        """Give nodes back (scale-down)."""
        for node in nodes:
            self.held.remove(node)
        self.manager.release(nodes)
