"""Ablation: MoNA reduce algorithms (binary tree vs binomial tree).

The paper (§III-C1) attributes MoNA's Table II gap to its "simple
binary-tree-based reduction" and expects that "implementing more
optimized collectives in MoNA ... could further improve its
performance". This ablation quantifies that claim with the binomial
tree (MPICH's short-message reduce algorithm): one serialized receive
per level instead of two.
"""

from __future__ import annotations

from typing import Dict

from repro.mona import BXOR
from repro.na import VirtualPayload
from repro.sim import Simulation
from repro.testing import build_mona_world, run_all

__all__ = ["run"]

SIZES = [8, 128, 2048, 16384, 32768]
PROCS = 512
PROCS_PER_NODE = 16


def _measure(algorithm: str, nbytes: int) -> float:
    sim = Simulation()
    _, _, comms = build_mona_world(sim, PROCS, procs_per_node=PROCS_PER_NODE)
    payload = VirtualPayload((max(nbytes // 8, 1),), "int64")

    def body(c):
        return (yield from c.reduce(payload, op=BXOR, root=0, algorithm=algorithm))

    start = sim.now
    run_all(sim, [body(c) for c in comms], max_time=1e9)
    return sim.now - start


def run() -> Dict[str, Dict[int, float]]:
    """Per-op reduce seconds for both algorithms at 512 processes."""
    return {
        "binary": {s: _measure("binary", s) for s in SIZES},
        "binomial": {s: _measure("binomial", s) for s in SIZES},
    }
