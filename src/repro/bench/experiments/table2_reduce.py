"""Table II: 512-process binary-xor reduce, per library.

MoNA's value *emerges* from its binary-tree algorithm over the p2p
model; Cray-mpich and OpenMPI run through the black-box MPI simulator
(calibrated collective model). 32 nodes x 16 ranks, like the paper.
"""

from __future__ import annotations

from typing import Dict

from repro.mona import BXOR
from repro.mpi import MpiWorld
from repro.na import Fabric, REDUCE_CALIBRATION_512, VirtualPayload
from repro.sim import Simulation
from repro.testing import build_mona_world, run_all

__all__ = ["PAPER_TABLE2_US", "run"]

SIZES = [8, 128, 2048, 16384, 32768]
PROCS = 512
PROCS_PER_NODE = 16

#: Paper Table II (per-op µs).
PAPER_TABLE2_US: Dict[str, Dict[int, float]] = {
    "craympich": dict(REDUCE_CALIBRATION_512["craympich"]),
    "openmpi": dict(REDUCE_CALIBRATION_512["openmpi"]),
    "mona": {8: 225.1, 128: 228.8, 2048: 250.9, 16384: 304.0, 32768: 527.9},
}


def _payload(nbytes: int) -> VirtualPayload:
    return VirtualPayload((max(nbytes // 8, 1),), "int64")


def _measure_mpi(profile: str, nbytes: int, ops: int) -> float:
    sim = Simulation()
    fabric = Fabric(sim)
    world = MpiWorld(sim, fabric, PROCS, profile=profile, procs_per_node=PROCS_PER_NODE)
    payload = _payload(nbytes)

    def body(c):
        for _ in range(ops):
            yield from c.reduce(payload, op=BXOR, root=0)

    start = sim.now
    run_all(sim, [body(world.comm_world(r)) for r in range(PROCS)], max_time=1e9)
    return (sim.now - start) / ops


def _measure_mona(nbytes: int, ops: int) -> float:
    sim = Simulation()
    _, _, comms = build_mona_world(sim, PROCS, procs_per_node=PROCS_PER_NODE)
    payload = _payload(nbytes)

    def body(c):
        for _ in range(ops):
            yield from c.reduce(payload, op=BXOR, root=0)

    start = sim.now
    run_all(sim, [body(c) for c in comms], max_time=1e9)
    return (sim.now - start) / ops


def run(ops: int = 1) -> Dict[str, Dict[int, float]]:
    # ops=1 by default: consecutive tree reductions pipeline across
    # ranks (leaves start op k+1 while the root still folds op k), so a
    # timed loop understates single-op latency — which is what Table II
    # reports. One synchronized-start op measures it exactly.
    """Measured per-op reduce seconds for every (library, size)."""
    results: Dict[str, Dict[int, float]] = {"craympich": {}, "openmpi": {}, "mona": {}}
    for size in SIZES:
        results["craympich"][size] = _measure_mpi("craympich", size, ops)
        results["openmpi"][size] = _measure_mpi("openmpi", size, ops)
        results["mona"][size] = _measure_mona(size, ops)
    return results
