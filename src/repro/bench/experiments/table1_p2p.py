"""Table I: time to complete N send/recv operations, per library.

Runs actual message traffic through the simulated fabric — MPI
libraries through :class:`MpiWorld` ranks on two nodes, MoNA through a
two-member communicator, raw NA through bare endpoints — and reports
per-operation microseconds next to the paper's values.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.mpi import MpiWorld
from repro.na import Fabric, P2P_CALIBRATION, VirtualPayload, get_cost_model
from repro.sim import Simulation
from repro.testing import run_all

__all__ = ["PAPER_TABLE1_US", "run"]

SIZES = [8, 128, 2048, 16384, 32768, 524288]
NA_SIZES = [8, 128, 2048]  # the paper only measured NA for small messages

#: Paper Table I (per-op µs; 1000 ops reported in ms = per-op µs).
PAPER_TABLE1_US: Dict[str, Dict[int, float]] = {
    lib: dict(anchors) for lib, anchors in P2P_CALIBRATION.items() if lib != "na"
}
PAPER_TABLE1_US["na"] = {8: 2.103, 128: 2.122, 2048: 2.766}


def _payload(nbytes: int) -> VirtualPayload:
    return VirtualPayload((nbytes,), "uint8")


def _measure_mpi(profile: str, nbytes: int, ops: int) -> float:
    sim = Simulation()
    fabric = Fabric(sim)
    world = MpiWorld(sim, fabric, 2, profile=profile, procs_per_node=1)
    payload = _payload(nbytes)

    def sender(c):
        for i in range(ops):
            yield from c.send(1, payload, tag=i)

    def receiver(c):
        for i in range(ops):
            yield from c.recv(source=0, tag=i)

    start = sim.now
    run_all(sim, [sender(world.comm_world(0)), receiver(world.comm_world(1))],
            max_time=1e9)
    return (sim.now - start) / ops


def _measure_mona(nbytes: int, ops: int) -> float:
    from repro.testing import build_mona_world

    sim = Simulation()
    _, _, comms = build_mona_world(sim, 2)
    payload = _payload(nbytes)

    def sender(c):
        for i in range(ops):
            yield from c.send(1, payload, tag=i)

    def receiver(c):
        for i in range(ops):
            yield from c.recv(source=0, tag=i)

    start = sim.now
    run_all(sim, [sender(comms[0]), receiver(comms[1])], max_time=1e9)
    return (sim.now - start) / ops


def _measure_na(nbytes: int, ops: int) -> float:
    sim = Simulation()
    fabric = Fabric(sim)
    model = get_cost_model("na")
    a = fabric.register("na-a", 0, model)
    b = fabric.register("na-b", 1, model)
    payload = _payload(nbytes)

    def sender(sim):
        for i in range(ops):
            yield a.send(b.address, payload, tag=i)

    def receiver(sim):
        for i in range(ops):
            yield b.recv(tag=i)

    start = sim.now
    run_all(sim, [sender(sim), receiver(sim)], max_time=1e9)
    return (sim.now - start) / ops


def run(ops: int = 200) -> Dict[str, Dict[int, float]]:
    """Measured per-op seconds for every (library, size)."""
    results: Dict[str, Dict[int, float]] = {}
    for profile in ("craympich", "openmpi"):
        results[profile] = {s: _measure_mpi(profile, s, ops) for s in SIZES}
    results["mona"] = {s: _measure_mona(s, ops) for s in SIZES}
    results["na"] = {s: _measure_na(s, ops) for s in NA_SIZES}
    return results
