"""Ablation: SSG gossip-period sensitivity.

§II-E: the group-change overhead "depends on SSG's configuration
parameters such as how frequently information is exchanged across
members". This sweep measures, per protocol period:

- join propagation time (a new member's info reaching everyone);
- gossip message load (protocol messages per member per second).

The trade-off is the expected one: faster periods converge quicker but
cost proportionally more background traffic.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core import Deployment
from repro.sim import Simulation
from repro.ssg import SwimConfig
from repro.testing import drive, run_until

__all__ = ["run"]


def _sample(period: float, n_servers: int, seed: int) -> Dict[str, float]:
    sim = Simulation(seed=seed)
    deployment = Deployment(sim, swim_config=SwimConfig(period=period))
    drive(sim, deployment.start_servers(n_servers), max_time=600)
    run_until(sim, deployment.converged, max_time=600)
    sim.run(until=sim.now + 10.0)  # settle

    msgs_before = deployment.fabric.messages_sent
    t_before = sim.now
    sim.run(until=sim.now + 30.0)  # steady-state gossip window
    load = (deployment.fabric.messages_sent - msgs_before) / 30.0 / n_servers

    t0 = sim.now
    drive(sim, deployment.add_server(node_index=n_servers, charge_launch=False),
          max_time=600)
    run_until(sim, deployment.converged, max_time=600)
    join_time = sim.now - t0
    return {"join_time": join_time, "messages_per_member_per_s": load}


def run(
    periods: List[float] = (0.1, 0.25, 0.5, 1.0, 2.0),
    n_servers: int = 8,
    samples: int = 2,
) -> Dict[float, Dict[str, float]]:
    results: Dict[float, Dict[str, float]] = {}
    for period in periods:
        join_times, loads = [], []
        for s in range(samples):
            sample = _sample(period, n_servers, seed=int(period * 1000) + s)
            join_times.append(sample["join_time"])
            loads.append(sample["messages_per_member_per_s"])
        results[period] = {
            "join_time": sum(join_times) / len(join_times),
            "messages_per_member_per_s": sum(loads) / len(loads),
        }
    return results
