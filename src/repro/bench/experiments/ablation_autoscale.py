"""Ablation: automatic resizing vs static provisioning (future work 2).

Runs the Fig. 10-style growing DWI workload under three regimes:

- **autoscaled**: start small; the :class:`ElasticityPolicy` grows the
  staging area whenever execute exceeds its target band;
- **static small**: the initial allocation, never resized;
- **static large**: provisioned for the final iteration from day one.

Reported per regime: per-iteration execute times, the worst steady
iteration, and *server-seconds* consumed (the resource-efficiency
argument for elasticity: bounded times near the small allocation's
cost, not the large one's).
"""

from __future__ import annotations

from typing import Dict, List

from repro.apps import DWIDataset, DWIProxyRank
from repro.bench.harness import ColzaExperiment
from repro.core.elasticity import AutoScaler, ElasticityPolicy
from repro.core.pipelines import DWIVolumeScript
from repro.testing import drive

__all__ = ["run"]

N_CLIENTS = 16
ITERATIONS = 24
SMALL, LARGE = 8, 64
PROCS_PER_NODE = 8
#: The simulation computes this long between in-situ iterations — idle
#: staging servers burn allocation during it (the waste static-large
#: provisioning pays for its low render times).
APP_COMPUTE_S = 20.0


def _experiment(n_servers: int, seed: int) -> ColzaExperiment:
    return ColzaExperiment(
        n_servers=n_servers,
        n_clients=N_CLIENTS,
        script=DWIVolumeScript(),
        server_procs_per_node=PROCS_PER_NODE,
        clients_per_node=16,
        client_nodes_offset=16,
        swim_period=0.5,
        seed=seed,
        nodes=64,
    ).setup()


def _run(regime: str, seed: int) -> Dict[str, object]:
    dataset = DWIDataset(iterations=30)
    proxies = [
        DWIProxyRank(dataset, rank=r, nranks=N_CLIENTS, virtual=True)
        for r in range(N_CLIENTS)
    ]
    n0 = LARGE if regime == "static_large" else SMALL
    exp = _experiment(n0, seed)
    scaler = None
    if regime == "autoscaled":
        policy = ElasticityPolicy(
            target_high=12.0, target_low=1.0, max_servers=LARGE,
            grow_step=PROCS_PER_NODE, cooldown_iterations=1,
        )
        scaler = AutoScaler(exp, policy, next_node=SMALL // PROCS_PER_NODE)

    times: List[float] = []
    server_seconds = 0.0
    t_prev = exp.sim.now
    for it in range(1, ITERATIONS + 1):
        exp.sim.run(until=exp.sim.now + APP_COMPUTE_S)  # the app computes
        blocks = [list(p.read_iteration(it)) for p in proxies]
        timing = exp.run_iteration(it, blocks)
        times.append(timing.execute)
        now = exp.sim.now
        server_seconds += timing.n_servers * (now - t_prev)
        t_prev = now
        if scaler is not None:
            drive(exp.sim, scaler.step(timing.execute), max_time=600)
    return {
        "times": times,
        "server_seconds": server_seconds,
        "final_servers": len(exp.deployment.live_daemons()),
    }


def run(seed: int = 17) -> Dict[str, Dict[str, object]]:
    return {
        "autoscaled": _run("autoscaled", seed),
        "static_small": _run("static_small", seed + 1),
        "static_large": _run("static_large", seed + 2),
    }
