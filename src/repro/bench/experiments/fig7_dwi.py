"""Fig. 7: Deep Water Impact rendering time per iteration.

Paper setup: 2 client nodes x 16 processes; each iteration consists of
512 VTU files distributed over the 32 clients (16 files each); volume
rendering on 8/16/32/64 Colza processes (1/2/4/8 nodes), MPI vs MoNA.
Rendering payload *grows* with the iteration (Fig. 1a), so curves rise,
and more servers keep them lower. Blocks are virtual at paper scale.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.apps import DWIDataset, DWIProxyRank
from repro.bench.harness import ColzaExperiment
from repro.core.pipelines import MPI_COMM_REGISTRY, DWIVolumeScript

__all__ = ["run"]

N_CLIENTS = 32


def _run_scale(
    n_servers: int, controller: str, iterations: int, seed: int
) -> List[float]:
    if iterations > 30:
        raise ValueError("the DWI ensemble has 30 snapshots")
    dataset = DWIDataset(iterations=30)  # fixed curve; run a prefix
    proxies = [
        DWIProxyRank(dataset, rank=r, nranks=N_CLIENTS, virtual=True)
        for r in range(N_CLIENTS)
    ]
    exp = ColzaExperiment(
        n_servers=n_servers,
        n_clients=N_CLIENTS,
        script=DWIVolumeScript(),
        controller=controller,
        server_procs_per_node=8,
        clients_per_node=16,
        client_nodes_offset=32,
        swim_period=0.5,
        seed=seed,
        nodes=64,
    ).setup()
    times = []
    for it in range(1, iterations + 1):
        blocks_per_client = [list(p.read_iteration(it)) for p in proxies]
        timing = exp.run_iteration(it, blocks_per_client)
        times.append(timing.execute)
    MPI_COMM_REGISTRY.clear()
    return times


def run(
    scales: Tuple[int, ...] = (8, 16, 32, 64),
    iterations: int = 30,
    modes: Tuple[str, ...] = ("mona", "mpi"),
) -> Dict[str, Dict[int, List[float]]]:
    """Per-iteration execute times for every (mode, staging size)."""
    results: Dict[str, Dict[int, List[float]]] = {m: {} for m in modes}
    for i, n in enumerate(scales):
        for mode in modes:
            results[mode][n] = _run_scale(n, mode, iterations, seed=500 + i)
    return results
