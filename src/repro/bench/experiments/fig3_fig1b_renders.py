"""Figs. 1b and 3: the rendered images themselves.

Fig. 1b shows volume renderings of three Deep Water Impact stages
(beginning / middle / end); Fig. 3 shows the Gray-Scott iso+clip
rendering (seed in noise) and the Mandelbulb iso-surface. This
experiment runs the actual pipelines on real data at laptop scale and
writes the images, asserting each has meaningful content.
"""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from repro.apps import DWIDataset, GrayScottParams, GrayScottSolver, MandelbulbBlock
from repro.vtk import MultiBlockDataSet
from repro.vtk.filters import clip_polydata, contour, merge_blocks, resample_to_image
from repro.vtk.render import Camera, rasterize, volume_render

__all__ = ["run"]


def _grayscott_image(width=192, height=192):
    """Fig. 3a: two iso-levels of v, clipped to expose the interior."""
    params = GrayScottParams(F=0.04, k=0.06, dt=2.0, noise=0.01, seed=3)
    solver = GrayScottSolver((32, 32, 32), params=params)
    for _ in range(500):
        solver.step_local()
    block = solver.local_block("v")
    surface = contour(block, [0.1, 0.25], "v")
    clipped = clip_polydata(surface, origin=(14, 0, 0), normal=(1, 0, 0))
    camera = Camera.fit(block.bounds)
    return rasterize(clipped, camera, width, height, color_field="v", cmap="coolwarm")


def _mandelbulb_image(width=192, height=192):
    """Fig. 3b: a single iso-level of the escape-iteration field."""
    blocks = [MandelbulbBlock(i, 4, resolution=(40, 40, 14), max_iterations=10) for i in range(4)]
    pieces = [contour(b.generate(), [8.0], "iterations") for b in blocks]
    from repro.vtk.dataset import PolyData

    surface = PolyData.concatenate(pieces)
    camera = Camera.fit((-1.2, 1.2, -1.2, 1.2, -1.2, 1.2))
    return rasterize(surface, camera, width, height)


def _dwi_image(iteration, width=192, height=192):
    """Fig. 1b: volume rendering of one DWI stage."""
    ds = DWIDataset(partitions=48)
    meshes = [ds.real_file(iteration, p, scale=3e4) for p in range(0, 48, 2)]
    merged = merge_blocks(MultiBlockDataSet(list(meshes)))
    sampled = resample_to_image(merged, (40, 40, 40), fields=["velocity"])
    return volume_render(sampled, "velocity", width=width, height=height)


def run(out_dir: str = "results/renders") -> Dict[str, Dict[str, float]]:
    os.makedirs(out_dir, exist_ok=True)
    images = {
        "fig3a_grayscott": _grayscott_image(),
        "fig3b_mandelbulb": _mandelbulb_image(),
        "fig1b_dwi_early": _dwi_image(1),
        "fig1b_dwi_middle": _dwi_image(15),
        "fig1b_dwi_late": _dwi_image(30),
    }
    stats: Dict[str, Dict[str, float]] = {}
    for name, image in images.items():
        image.write_ppm(os.path.join(out_dir, f"{name}.ppm"))
        rgba = image.rgba
        stats[name] = {
            "coverage": image.coverage(),
            "color_variance": float(rgba[..., :3][rgba[..., 3] > 0].std())
            if (rgba[..., 3] > 0).any()
            else 0.0,
        }
    return stats
