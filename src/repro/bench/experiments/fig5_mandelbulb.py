"""Fig. 5: Mandelbulb weak scaling, MoNA vs MPI pipelines.

Paper setup: each Colza process serves 4 client processes; each client
generates 4 blocks of 128^3 ints (8 MB). Staging spans 4..128 server
processes (4 per node), so data grows with the staging area — weak
scaling: the curve should be flat, and MoNA ~= MPI.

Blocks are virtual (paper-scale sizes, no RAM); the pipeline is the
iso-surface script, and we discard the first iteration (VTK/Python
init) as the paper does, averaging the rest.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bench.harness import ColzaExperiment
from repro.core.pipelines import MPI_COMM_REGISTRY, IsoSurfaceScript
from repro.na import VirtualPayload

__all__ = ["run"]

BLOCK = VirtualPayload((128, 128, 128), "int32")  # 8 MB
BLOCKS_PER_CLIENT = 4
CLIENTS_PER_SERVER = 4


def _run_scale(n_servers: int, controller: str, iterations: int, seed: int) -> float:
    n_clients = CLIENTS_PER_SERVER * n_servers
    exp = ColzaExperiment(
        n_servers=n_servers,
        n_clients=n_clients,
        script=IsoSurfaceScript(field="iterations", isovalues=[4.0]),
        controller=controller,
        server_procs_per_node=4,
        clients_per_node=32,
        client_nodes_offset=64,
        swim_period=0.5,
        seed=seed,
        nodes=128,
    ).setup()
    blocks_per_client = [
        [(ci * BLOCKS_PER_CLIENT + b, BLOCK) for b in range(BLOCKS_PER_CLIENT)]
        for ci in range(n_clients)
    ]
    times = []
    for it in range(1, iterations + 1):
        timing = exp.run_iteration(it, blocks_per_client)
        times.append(timing.execute)
    MPI_COMM_REGISTRY.clear()
    # Discard the first iteration (library/interpreter init).
    timed = times[1:]
    return sum(timed) / len(timed)


def run(
    scales: List[int] = (4, 16, 64, 128),
    iterations: int = 3,
) -> Dict[str, Dict[int, float]]:
    """Mean pipeline execution time per (mode, staging size)."""
    results: Dict[str, Dict[int, float]] = {"mona": {}, "mpi": {}}
    for i, n in enumerate(scales):
        results["mona"][n] = _run_scale(n, "mona", iterations, seed=100 + i)
        results["mpi"][n] = _run_scale(n, "mpi", iterations, seed=200 + i)
    return results
