"""One module per table/figure of the paper's evaluation (§III).

| Module                  | Reproduces                                   |
|-------------------------|----------------------------------------------|
| ``fig1a_dwi_dataset``   | Fig. 1a  DWI cells / file-size growth        |
| ``fig4_resize``         | Fig. 4   static vs elastic resize times      |
| ``table1_p2p``          | Table I  p2p latency, 4 libraries            |
| ``table2_reduce``       | Table II 512-proc bxor reduce                |
| ``fig5_mandelbulb``     | Fig. 5   Mandelbulb weak scaling             |
| ``fig6_grayscott``      | Fig. 6   Gray-Scott strong scaling           |
| ``fig7_dwi``            | Fig. 7   DWI per-iteration render times      |
| ``fig8_frameworks``     | Fig. 8   Colza vs Damaris vs DataSpaces      |
| ``fig9_elastic``        | Fig. 9   elasticity timeline (Mandelbulb)    |
| ``fig10_elastic_dwi``   | Fig. 10  elastic vs static DWI               |
| ``sec2e_activate``      | §II-E    activate overhead on group change   |
"""
