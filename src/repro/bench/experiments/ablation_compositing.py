"""Ablation: IceT compositing strategy (binary swap vs reduce-to-root).

DESIGN.md lists the compositing strategy as the design choice that
makes parallel rendering's only communication-heavy stage scale:
binary swap moves O(pixels) per rank, reduce-to-root funnels
O(ranks x pixels) into one process. This sweep measures composite time
and bytes moved for both strategies across staging-area sizes.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.icet import MonaIceTCommunicator, binary_swap, reduce_to_root
from repro.sim import Simulation
from repro.testing import build_mona_world, run_all
from repro.vtk.render.image import CompositeImage

__all__ = ["run"]

WIDTH, HEIGHT = 512, 512  # ~4 MB RGBA+depth per rank


def _image(rank: int, rng: np.random.Generator) -> CompositeImage:
    img = CompositeImage.blank(WIDTH, HEIGHT, brick_depth=float(rank))
    mask = rng.random((HEIGHT, WIDTH)) < 0.5
    img.depth[mask] = rank + 0.5
    img.rgba[mask] = rng.random(4).astype(np.float32)
    return img


def _measure(strategy: str, n_ranks: int, seed: int = 0) -> Tuple[float, float]:
    sim = Simulation(seed=seed)
    fabric, _, comms = build_mona_world(sim, n_ranks, procs_per_node=4)
    rng = np.random.default_rng(seed)
    images = [_image(r, rng) for r in range(n_ranks)]
    fn = binary_swap if strategy == "bswap" else reduce_to_root

    def body(c, img):
        return (yield from fn(MonaIceTCommunicator(c), img, op="zbuffer", root=0))

    bytes_before = fabric.bytes_sent
    start = sim.now
    run_all(sim, [body(c, img) for c, img in zip(comms, images)], max_time=1e9)
    return sim.now - start, float(fabric.bytes_sent - bytes_before)


def run(scales: Tuple[int, ...] = (2, 4, 8, 16, 32)) -> Dict[str, Dict[int, Dict[str, float]]]:
    results: Dict[str, Dict[int, Dict[str, float]]] = {"bswap": {}, "reduce": {}}
    for n in scales:
        for strategy in ("bswap", "reduce"):
            seconds, nbytes = _measure(strategy, n)
            results[strategy][n] = {"seconds": seconds, "bytes": nbytes}
    return results
