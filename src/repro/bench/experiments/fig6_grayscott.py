"""Fig. 6: Gray-Scott strong scaling, MoNA vs MPI pipelines.

Paper setup: 512 client processes produce a fixed 2 GB domain per
iteration (float64 => 268M points total), staged onto 4..128 servers —
strong scaling: execution time should fall ~1/N, and MoNA ~= MPI.
The pipeline is multi-level iso-surfaces + clip (the paper's Fig. 3a
pipeline).
"""

from __future__ import annotations

from typing import Dict, List

from repro.bench.harness import ColzaExperiment
from repro.core.pipelines import MPI_COMM_REGISTRY, IsoSurfaceScript
from repro.na import VirtualPayload

__all__ = ["run"]

N_CLIENTS = 512
TOTAL_BYTES = 2 << 30  # 2 GB domain per iteration


def _client_block(n_clients: int) -> VirtualPayload:
    elements = TOTAL_BYTES // 8 // n_clients  # float64 field
    return VirtualPayload((elements,), "float64")


def _run_scale(n_servers: int, controller: str, iterations: int, seed: int) -> float:
    script = IsoSurfaceScript(
        field="v", isovalues=[0.1, 0.2, 0.3],
        clip=((0.0, 0.0, 0.0), (0.0, 0.0, 1.0)),
    )
    exp = ColzaExperiment(
        n_servers=n_servers,
        n_clients=N_CLIENTS,
        script=script,
        controller=controller,
        server_procs_per_node=8,
        clients_per_node=32,
        client_nodes_offset=64,
        swim_period=0.5,
        seed=seed,
        nodes=128,
    ).setup()
    block = _client_block(N_CLIENTS)
    blocks_per_client = [[(ci, block)] for ci in range(N_CLIENTS)]
    times = []
    for it in range(1, iterations + 1):
        timing = exp.run_iteration(it, blocks_per_client)
        times.append(timing.execute)
    MPI_COMM_REGISTRY.clear()
    timed = times[1:]
    return sum(timed) / len(timed)


def run(
    scales: List[int] = (4, 16, 64, 128),
    iterations: int = 3,
) -> Dict[str, Dict[int, float]]:
    results: Dict[str, Dict[int, float]] = {"mona": {}, "mpi": {}}
    for i, n in enumerate(scales):
        results["mona"][n] = _run_scale(n, "mona", iterations, seed=300 + i)
        results["mpi"][n] = _run_scale(n, "mpi", iterations, seed=400 + i)
    return results
