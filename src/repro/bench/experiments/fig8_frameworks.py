"""Fig. 8: Colza (MoNA / MPI) vs Damaris vs DataSpaces on Mandelbulb.

Paper setup: 32 nodes total — 64 client processes on 16 nodes, 64
analysis servers on the other 16; 1 MB blocks (64^3 ints), 32 blocks
per client. Measured: pipeline execution time per iteration.

All four frameworks see the same client behaviour: each iteration the
clients compute their Mandelbulb blocks (a fixed cost plus per-client
imbalance jitter, re-drawn every iteration) and then hand data to the
staging side. The comparable measured quantity is the in-situ
*makespan*: first server entering the pipeline to last one finishing.

- Colza / DataSpaces trigger execution once, after all clients staged:
  client imbalance is absorbed *before* the measured window.
- Damaris servers enter the plugin as soon as *their own* clients
  signal — uncoordinated — so the imbalance lands inside the measured
  window, plus early servers spin-wait in the plugin's first collective
  (the paper's §III-D explanation).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.bench.harness import ColzaExperiment
from repro.core.pipelines import MPI_COMM_REGISTRY, IsoSurfaceScript
from repro.margo import MargoInstance
from repro.na import Fabric, VirtualPayload, get_cost_model
from repro.sim import Simulation
from repro.staging import DamarisDeployment, DataSpacesDeployment
from repro.testing import run_all

__all__ = ["run"]

N_CLIENTS = 64
N_SERVERS = 64
BLOCKS_PER_CLIENT = 32
BLOCK = VirtualPayload((64, 64, 64), "int32")  # 1 MB
CLIENT_COMPUTE_S = 2.0  # per-iteration simulation compute
CLIENT_JITTER_S = 0.8  # per-iteration imbalance across clients
#: Iterations excluded from the mean (library init + backlog drain).
WARMUP = 3


def _script() -> IsoSurfaceScript:
    return IsoSurfaceScript(field="iterations", isovalues=[4.0])


def _jitter(seed: int, iteration: int, rank: int) -> float:
    rng = np.random.default_rng(seed * 100003 + iteration * 613 + rank)
    return float(rng.uniform(0.0, CLIENT_JITTER_S))


def _makespan(sim, span_name: str, iteration: int) -> float:
    spans = list(sim.trace.find(span_name, iteration=iteration))
    return max(s.end for s in spans) - min(s.start for s in spans)


def _client_blocks(ci: int) -> List:
    return [(ci * BLOCKS_PER_CLIENT + b, BLOCK) for b in range(BLOCKS_PER_CLIENT)]


def _run_colza(controller: str, iterations: int, seed: int) -> float:
    exp = ColzaExperiment(
        n_servers=N_SERVERS,
        n_clients=N_CLIENTS,
        script=_script(),
        controller=controller,
        server_procs_per_node=4,
        clients_per_node=4,
        client_nodes_offset=16,
        swim_period=0.5,
        seed=seed,
        nodes=64,
    ).setup()
    sim = exp.sim
    times = []
    for it in range(1, iterations + 1):
        # Clients compute with imbalance; the slowest gates staging, so
        # the measured execute window starts clean.
        slowest = CLIENT_COMPUTE_S + max(
            _jitter(seed, it, r) for r in range(N_CLIENTS)
        )
        sim.run(until=sim.now + slowest)
        exp.run_iteration(it, [_client_blocks(ci) for ci in range(N_CLIENTS)])
        times.append(_makespan(sim, "pipeline.execute", it))
    MPI_COMM_REGISTRY.clear()
    return float(np.mean(times[WARMUP:]))


def _run_damaris(iterations: int, seed: int) -> float:
    sim = Simulation(seed=seed)
    fabric = Fabric(sim)
    damaris = DamarisDeployment(
        sim, fabric, N_CLIENTS, N_SERVERS, _script(), procs_per_node=4
    )

    def client_body(rank):
        client_comm = yield from damaris.split(rank)
        for it in range(1, iterations + 1):
            # The application's own per-iteration synchronization (the
            # miniapp steps collectively), then imbalanced compute.
            yield from client_comm.barrier()
            yield sim.timeout(CLIENT_COMPUTE_S + _jitter(seed, it, rank))
            for block_id, payload in _client_blocks(rank):
                yield from damaris.damaris_write(rank, it, block_id, payload)
            yield from damaris.damaris_signal(rank, it)

    def server_body(index):
        rank = damaris.server_world_rank(index)
        yield from damaris.split(rank)
        for it in range(1, iterations + 1):
            yield from damaris.server_iteration(index, it)

    gens = [client_body(r) for r in range(N_CLIENTS)]
    gens += [server_body(i) for i in range(N_SERVERS)]
    run_all(sim, gens, max_time=1e9)
    times = [_makespan(sim, "damaris.plugin", it) for it in range(WARMUP + 1, iterations + 1)]
    return float(np.mean(times))


def _run_dataspaces(iterations: int, seed: int) -> float:
    sim = Simulation(seed=seed)
    fabric = Fabric(sim)
    dspaces = DataSpacesDeployment(
        sim, fabric, N_SERVERS, _script(), procs_per_node=4
    )
    client_margos = [
        MargoInstance(sim, fabric, f"ds-client-{i}", 16 + i // 4, get_cost_model("mona"))
        for i in range(N_CLIENTS)
    ]
    from repro.argo import Barrier

    barrier = Barrier(sim, parties=N_CLIENTS)

    def client_body(rank):
        for it in range(1, iterations + 1):
            yield sim.timeout(CLIENT_COMPUTE_S + _jitter(seed, it, rank))
            for block_id, payload in _client_blocks(rank):
                yield from dspaces.put(client_margos[rank], it, block_id, payload)
            yield barrier.arrive()  # app-level sync before the trigger
            if rank == 0:
                yield from dspaces.execute(client_margos[0], it)
            yield barrier.arrive()  # wait for the execute to finish

    run_all(sim, [client_body(r) for r in range(N_CLIENTS)], max_time=1e9)
    times = [_makespan(sim, "dataspaces.exec", it) for it in range(WARMUP + 1, iterations + 1)]
    return float(np.mean(times))


def run(iterations: int = 6, seed: int = 7) -> Dict[str, float]:
    """Mean pipeline makespan per framework."""
    return {
        "colza_mona": _run_colza("mona", iterations, seed),
        "colza_mpi": _run_colza("mpi", iterations, seed),
        "damaris": _run_damaris(iterations, seed),
        "dataspaces": _run_dataspaces(iterations, seed),
    }
