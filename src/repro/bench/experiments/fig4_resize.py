"""Fig. 4: resizing a staging area from N to N+1 processes.

Two strategies, as in the paper:

- **static**: kill the whole staging area and relaunch it with N+1
  daemons; measured from the kill signal until the new group is formed
  and ready (all members converged);
- **elastic**: srun one extra daemon that joins via SSG; measured from
  the srun command until the membership information has fully
  propagated to every member.

Each sample uses a fresh simulation (fresh launch-latency draws).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core import Deployment
from repro.sim import Simulation
from repro.ssg import SwimConfig
from repro.testing import drive, run_until

__all__ = ["run"]

SWIM = SwimConfig(period=0.25)


def _elastic_sample(n: int, seed: int) -> float:
    sim = Simulation(seed=seed)
    deployment = Deployment(sim, swim_config=SWIM)
    drive(sim, deployment.start_servers(n), max_time=600)
    run_until(sim, deployment.converged, max_time=600)
    sim.run(until=sim.now + 60.0)  # the paper's settle period
    t0 = sim.now
    drive(sim, deployment.add_server(node_index=n), max_time=600)
    run_until(sim, deployment.converged, max_time=600)
    return sim.now - t0


def _static_sample(n: int, seed: int) -> float:
    sim = Simulation(seed=seed)
    deployment = Deployment(sim, swim_config=SWIM)
    drive(sim, deployment.start_servers(n), max_time=600)
    run_until(sim, deployment.converged, max_time=600)
    sim.run(until=sim.now + 60.0)
    t0 = sim.now
    drive(sim, deployment.static_restart(n + 1), max_time=600)
    run_until(sim, deployment.converged, max_time=600)
    return sim.now - t0


def run(max_n: int = 16, samples_per_n: int = 2) -> Dict[str, List[float]]:
    """Resize times for N = 1..max_n, both strategies."""
    results: Dict[str, List[float]] = {"n": [], "elastic": [], "static": []}
    for n in range(1, max_n + 1):
        for s in range(samples_per_n):
            seed = 1000 * n + s
            results["n"].append(float(n))
            results["elastic"].append(_elastic_sample(n, seed))
            results["static"].append(_static_sample(n, seed))
    return results
