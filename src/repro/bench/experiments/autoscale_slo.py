"""Closed-loop SLO autoscaling under deterministic load traces (DESIGN §16).

Drives the staging signatures of the paper's three applications —
Gray-Scott (fixed domain, fig. 6), Mandelbulb (blocks-per-client,
fig. 5), DWI (the fig. 1a growth curve) — through the
:mod:`repro.bench.loadtraces` shapes (bursty / diurnal / adversarial),
comparing four regimes per (app, trace):

- **slo**: the predictive :class:`~repro.core.autoscale.SloAutoscaler`;
- **reactive**: the PR-era threshold band
  (:class:`~repro.core.elasticity.AutoScaler`), kept as the baseline;
- **static_small**: the initial allocation, never resized;
- **static_large**: provisioned for the worst trace point from day one.

Reported per regime: SLO misses (execute > deadline), resizes and
resize failures, *server-seconds* consumed, and the worst execute. The
claim under test: the predictive controller approaches static_large's
miss count at close to static_small's server-seconds, and beats the
reactive band on both misses (it grows before the deadline, not one
miss after) and thrash (adversarial spikes are held, not chased).

The stats backend prices execution at ``bytes / bytes_per_second`` per
server, so the SLO arithmetic is exact and runs stay fast; the
controller only ever sees the span stream, exactly as in production.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.bench.harness import ColzaExperiment
from repro.bench.loadtraces import trace
from repro.core.autoscale import SloAutoscaler, SloConfig
from repro.core.elasticity import AutoScaler, ElasticityPolicy
from repro.core.pipelines import IsoSurfaceScript
from repro.na import VirtualPayload
from repro.testing import drive

__all__ = ["run"]

STATS = "libcolza-stats.so"
BPS = 2e6
DEADLINE = 1.2
SMALL, LARGE = 2, 8
#: ~1 MiB staged per iteration at load 1.0 -> ~0.26 s on SMALL servers.
BASE_ELEMENTS = 1 << 17
#: Fig. 1a growth across the DWI run, applied on top of the trace.
DWI_GROWTH = (5.53e8 / 4.7e7)


def _blocks(app: str, n_clients: int, load: float, iteration: int,
            iterations: int) -> List[List]:
    """One iteration's staging signature for ``app`` at ``load``."""
    if app == "dwi":
        load = load * DWI_GROWTH ** (iteration / max(1, iterations) * 0.25)
    per_client = max(1, int(BASE_ELEMENTS * load)) // n_clients
    if app == "mandelbulb":  # 4 blocks per client (fig. 5 layout)
        shape = (max(1, per_client // 4),)
        return [
            [(ci * 4 + b, VirtualPayload(shape, "float64")) for b in range(4)]
            for ci in range(n_clients)
        ]
    # grayscott / dwi: one block per client of the domain partition.
    return [
        [(ci, VirtualPayload((max(1, per_client),), "float64"))]
        for ci in range(n_clients)
    ]


def _experiment(n_servers: int, n_clients: int, seed: int) -> ColzaExperiment:
    return ColzaExperiment(
        n_servers=n_servers,
        n_clients=n_clients,
        script=IsoSurfaceScript(field="v", isovalues=[0.5]),
        library=STATS,
        pipeline_name="pipe",
        seed=seed,
        extra_config={"bytes_per_second": BPS},
    ).setup()


def _run_regime(regime: str, app: str, loads: Sequence[float], n_clients: int,
                seed: int) -> Dict[str, object]:
    n0 = LARGE if regime == "static_large" else SMALL
    exp = _experiment(n0, n_clients, seed)
    sim = exp.sim
    controller = None
    scaler = None
    if regime == "slo":
        controller = SloAutoscaler(
            exp.deployment, exp.client_margos[0], STATS, exp.pipeline_config(),
            pipeline="pipe",
            slo=SloConfig(deadline=DEADLINE, min_servers=1, max_servers=LARGE,
                          cooldown_iterations=1, shrink_patience=6,
                          join_deadline=8.0, leave_deadline=8.0,
                          initial_resize_cost=4.0),
            first_node=8,
        )
    elif regime == "reactive":
        policy = ElasticityPolicy(target_high=DEADLINE, target_low=0.3,
                                  min_servers=1, max_servers=LARGE,
                                  cooldown_iterations=1)
        scaler = AutoScaler(exp, policy, next_node=8)

    executes: List[float] = []
    server_seconds = 0.0
    t_prev = sim.now
    for it, load in enumerate(loads, start=1):
        sim.run(until=sim.now + 0.5)  # the app computes
        timing = exp.run_iteration(it, _blocks(app, n_clients, load, it, len(loads)))
        executes.append(timing.execute)
        server_seconds += timing.n_servers * (sim.now - t_prev)
        t_prev = sim.now
        if controller is not None:
            drive(sim, controller.step_from_trace(), max_time=600)
        elif scaler is not None:
            drive(sim, scaler.step(timing.execute), max_time=600)
    return {
        "slo_misses": sum(1 for e in executes if e > DEADLINE),
        "resizes": controller.resizes if controller else
        sum(1 for d in (scaler.decisions if scaler else []) if d.action != "hold"),
        "resize_failures": controller.resize_failures if controller else 0,
        "server_seconds": server_seconds,
        "worst_execute": max(executes),
        "final_servers": len(exp.deployment.live_daemons()),
    }


def run(
    apps: Sequence[str] = ("grayscott", "mandelbulb", "dwi"),
    traces: Sequence[str] = ("bursty", "diurnal", "adversarial"),
    iterations: int = 16,
    n_clients: int = 4,
    seed: int = 23,
) -> Dict[str, Dict[str, Dict[str, Dict[str, object]]]]:
    """``results[app][trace][regime]`` -> miss/resize/cost metrics."""
    results: Dict[str, Dict[str, Dict[str, Dict[str, object]]]] = {}
    for app in apps:
        results[app] = {}
        for shape in traces:
            loads = trace(shape, iterations, seed=seed,
                          **({"burst": 6.0} if shape == "bursty" else {}))
            results[app][shape] = {
                regime: _run_regime(regime, app, loads, n_clients, seed)
                for regime in ("slo", "reactive", "static_small", "static_large")
            }
    return results
