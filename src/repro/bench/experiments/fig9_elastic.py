"""Fig. 9: exercising elasticity with Mandelbulb (Colza 2 -> 8 nodes).

Paper setup: 256 clients (16 nodes x 16) each producing one
128x128x64-element block (1 GB total per iteration). Colza starts on 2
nodes (1 process each); every 60 seconds a node is added, up to 8. The
figure reports the per-iteration durations of activate / stage /
execute / deactivate plus the server count — execution time steps down
as servers join, with an init spike on each join, and
activate/stage/deactivate stay negligible (~4 ms / ~100 ms / ~0.6 ms).
"""

from __future__ import annotations

from typing import Dict, List

from repro.bench.harness import ColzaExperiment, IterationTiming
from repro.core.pipelines import IsoSurfaceScript
from repro.na import VirtualPayload

__all__ = ["run"]

N_CLIENTS = 256
BLOCK = VirtualPayload((128, 128, 64), "int32")  # 4 MB, 1M elements
START_SERVERS = 2
MAX_SERVERS = 8
ADD_PERIOD_S = 60.0


def run(extra_iterations: int = 4, seed: int = 11) -> List[Dict]:
    """Per-iteration records: durations + server count + add times."""
    exp = ColzaExperiment(
        n_servers=START_SERVERS,
        n_clients=N_CLIENTS,
        script=IsoSurfaceScript(field="iterations", isovalues=[4.0]),
        controller="mona",
        server_procs_per_node=1,
        clients_per_node=16,
        client_nodes_offset=16,
        swim_period=0.5,
        seed=seed,
        nodes=64,
    ).setup()
    sim = exp.sim

    # Background scaler: one node every 60 s (the paper's job script).
    def scaler():
        node = START_SERVERS
        while node < MAX_SERVERS:
            yield sim.timeout(ADD_PERIOD_S)
            yield from exp.add_server_with_pipeline(node_index=node)
            node += 1

    scaler_task = sim.spawn(scaler(), name="scaler")

    records: List[Dict] = []
    blocks_per_client = [[(ci, BLOCK)] for ci in range(N_CLIENTS)]
    it = 0
    while not scaler_task.finished or len(records) == 0 or records[-1]["servers"] < MAX_SERVERS:
        it += 1
        timing = exp.run_iteration(it, blocks_per_client)
        records.append(_record(timing))
        if it > 200:  # safety
            break
    for _ in range(extra_iterations):
        it += 1
        records.append(_record(exp.run_iteration(it, blocks_per_client)))
    return records


def _record(t: IterationTiming) -> Dict:
    return {
        "iteration": t.iteration,
        "servers": t.n_servers,
        "activate": t.activate,
        "stage_mean": t.stage_mean,
        "stage_total": t.stage_total,
        "execute": t.execute,
        "deactivate": t.deactivate,
    }
