"""Fig. 1a: Deep Water Impact dataset growth (cells and file sizes).

The synthetic ensemble's growth curve over the 30 selected snapshots,
plus a validation pass over actual generated meshes at reduced scale.
"""

from __future__ import annotations

from typing import Dict, List

from repro.apps import DWIDataset

__all__ = ["run"]


def run(check_real_meshes: bool = True, mesh_scale: float = 1e4) -> Dict[str, List[float]]:
    ds = DWIDataset()
    iterations = list(range(1, ds.iterations + 1))
    cells = [ds.total_cells(i) for i in iterations]
    sizes_gib = [ds.file_size_bytes(i) / 2**30 for i in iterations]
    result = {
        "iteration": [float(i) for i in iterations],
        "cells_millions": [c / 1e6 for c in cells],
        "file_size_gib": sizes_gib,
    }
    if check_real_meshes:
        # Sample real meshes to confirm geometry tracks the curve.
        real_cells = []
        for it in (1, 15, 30):
            mesh = ds.real_file(it, 0, scale=mesh_scale)
            real_cells.append(mesh.num_cells)
        result["sampled_real_cells"] = [float(c) for c in real_cells]
    return result
