"""§II-E: overhead of ``activate`` with and without a group change.

The paper: "no overhead if the group hasn't changed when activate is
called, and an overhead in the order of a second when the group did
change" (dependent on SSG's gossip parameters). We measure the
client-observed activate duration in three situations:

- steady group (no change since last activate);
- right after a join has fully propagated (client view stale);
- immediately after the join, while gossip is still propagating —
  activate's 2PC must retry until all members agree.
"""

from __future__ import annotations

from typing import Dict

from repro.bench.harness import ColzaExperiment
from repro.core.pipelines import IsoSurfaceScript
from repro.na import VirtualPayload
from repro.ssg import SwimConfig
from repro.testing import drive, run_until

__all__ = ["run"]

BLOCK = VirtualPayload((32, 32, 32), "int32")


def run(n_servers: int = 4, seed: int = 3, swim_period: float = 0.5) -> Dict[str, float]:
    exp = ColzaExperiment(
        n_servers=n_servers,
        n_clients=2,
        script=IsoSurfaceScript(field="iterations", isovalues=[4.0]),
        controller="mona",
        swim_period=swim_period,
        seed=seed,
        nodes=64,
        client_nodes_offset=30,
    ).setup()
    sim = exp.sim
    blocks = [[(0, BLOCK)], [(1, BLOCK)]]

    exp.run_iteration(1, blocks)  # warm-up (includes init)
    exp.run_iteration(2, blocks)
    unchanged = exp.timings[-1].activate

    # Join fully propagated before the next activate.
    drive(sim, exp.add_server_with_pipeline(node_index=n_servers), max_time=600)
    run_until(sim, exp.deployment.converged, max_time=600)
    exp.run_iteration(3, blocks)
    changed_settled = exp.timings[-1].activate

    # Join still propagating: activate immediately after the daemon is up.
    drive(sim, exp.add_server_with_pipeline(node_index=n_servers + 1), max_time=600)
    exp.run_iteration(4, blocks)
    changed_racing = exp.timings[-1].activate

    return {
        "unchanged": unchanged,
        "changed_settled": changed_settled,
        "changed_racing": changed_racing,
    }
