"""Fig. 10: elastic vs static Colza on Deep Water Impact.

Paper setup: the DWI proxy runs its 30 iterations; Colza starts with 1
node x 8 processes. From iteration 13, 8 new processes (one node) are
added every other iteration up to 72 processes. Compared against
static deployments of 8 and 72 processes. Elasticity keeps the
rendering time bounded (~10 s, ~20 s including the join-init spike)
while static-8 keeps growing.
"""

from __future__ import annotations

from typing import Dict, List

from repro.apps import DWIDataset, DWIProxyRank
from repro.bench.harness import ColzaExperiment
from repro.core.pipelines import DWIVolumeScript

__all__ = ["run"]

N_CLIENTS = 32
PROCS_PER_NODE = 8
ITERATIONS = 30
GROW_FROM_ITERATION = 13
GROW_STEP = PROCS_PER_NODE  # one node = 8 processes
MAX_PROCS = 72


def _experiment(n_servers: int, seed: int) -> ColzaExperiment:
    return ColzaExperiment(
        n_servers=n_servers,
        n_clients=N_CLIENTS,
        script=DWIVolumeScript(),
        controller="mona",
        server_procs_per_node=PROCS_PER_NODE,
        clients_per_node=16,
        client_nodes_offset=16,
        swim_period=0.5,
        seed=seed,
        nodes=64,
    ).setup()


def _run_case(elastic: bool, n_servers: int, seed: int) -> List[float]:
    dataset = DWIDataset(iterations=ITERATIONS)
    proxies = [
        DWIProxyRank(dataset, rank=r, nranks=N_CLIENTS, virtual=True)
        for r in range(N_CLIENTS)
    ]
    exp = _experiment(n_servers, seed)
    times: List[float] = []
    next_node = n_servers // PROCS_PER_NODE
    current = n_servers
    for it in range(1, ITERATIONS + 1):
        if (
            elastic
            and it >= GROW_FROM_ITERATION
            and (it - GROW_FROM_ITERATION) % 2 == 0
            and current < MAX_PROCS
        ):

            from repro.testing import drive

            drive(
                exp.sim,
                exp.add_servers_with_pipeline(GROW_STEP, node_index=next_node),
                max_time=10000,
            )
            current += GROW_STEP
            next_node += 1
        blocks_per_client = [list(p.read_iteration(it)) for p in proxies]
        timing = exp.run_iteration(it, blocks_per_client)
        times.append(timing.execute)
    return times


def run(seed: int = 13) -> Dict[str, List[float]]:
    """Per-iteration execute times: elastic, static-8, static-72."""
    return {
        "elastic_8_to_72": _run_case(True, 8, seed),
        "static_8": _run_case(False, 8, seed + 1),
        "static_72": _run_case(False, 72, seed + 2),
    }
