"""Experiment drivers reproducing every table and figure of the paper.

Each module under :mod:`repro.bench.experiments` exposes a ``run()``
returning structured results; the ``benchmarks/`` tree wraps them in
pytest-benchmark entry points that print paper-vs-measured rows and
assert the reproduced *shape* (who wins, scaling trends, crossovers).
See EXPERIMENTS.md for the experiment index and recorded outputs.
"""

from repro.bench.reporting import Table, fmt_seconds, fmt_us

__all__ = ["Table", "fmt_seconds", "fmt_us"]
