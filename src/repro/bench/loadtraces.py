"""Deterministic load traces for driving the SLO autoscaler.

A *trace* is a list of per-iteration load multipliers (1.0 = the
workload's baseline block size). Three shapes, mirroring what an in
situ pipeline actually sees:

- :func:`bursty` — quiet base load with quasi-periodic bursts that
  *ramp* over a couple of iterations before holding. The ramp is the
  point: a predictive controller extrapolates it and resizes before
  the deadline miss, a reactive band only reacts one miss later.
- :func:`diurnal` — a slow sinusoid (the simulation alternating
  between compute-heavy and output-heavy phases), testing smooth
  tracking and amortized shrinks on the downslope.
- :func:`adversarial` — single-iteration spikes that immediately
  vanish, plus step edges timed near typical cooldown lengths: bait
  for a thrashing controller. A good controller mostly *holds* here;
  the bench gates its resize count, not its miss count.

Every generator is a pure function of ``(seed, parameters)`` built on
the kernel's splitmix64 mixer — no RNG state, no numpy stream, so a
trace can be regenerated anywhere (tests, benches, examples) and is
byte-stable across platforms.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List

from repro.sim.kernel import _MASK64, _splitmix64

__all__ = ["TRACES", "adversarial", "bursty", "diurnal", "trace"]

_GOLDEN = 0x9E3779B97F4A7C15


def _uniform(seed: int, index: int) -> float:
    """Deterministic uniform in [0, 1) from ``(seed, index)``."""
    mixed = _splitmix64((seed * _GOLDEN + index * 0xBF58476D1CE4E5B9) & _MASK64)
    return mixed / float(1 << 64)


def bursty(
    iterations: int,
    seed: int = 0,
    base: float = 1.0,
    burst: float = 6.0,
    ramp: int = 2,
    hold: int = 3,
    min_gap: int = 2,
    max_gap: int = 6,
) -> List[float]:
    """Quiet base load with ramping bursts at seeded intervals."""
    loads: List[float] = []
    while len(loads) < iterations:
        gap = min_gap + int(_uniform(seed, len(loads)) * (max_gap - min_gap + 1))
        loads.extend([base] * gap)
        for r in range(1, ramp + 1):
            loads.append(base + (burst - base) * r / ramp)
        loads.extend([burst] * hold)
    return loads[:iterations]


def diurnal(
    iterations: int,
    seed: int = 0,
    base: float = 1.0,
    peak: float = 4.0,
    period: int = 12,
    jitter: float = 0.1,
) -> List[float]:
    """A slow sinusoid between ``base`` and ``peak`` with seeded jitter."""
    loads = []
    for i in range(iterations):
        phase = 0.5 - 0.5 * math.cos(2.0 * math.pi * i / period)
        wobble = 1.0 + jitter * (2.0 * _uniform(seed, i) - 1.0)
        loads.append((base + (peak - base) * phase) * wobble)
    return loads


def adversarial(
    iterations: int,
    seed: int = 0,
    base: float = 1.0,
    spike: float = 8.0,
    step: float = 3.0,
) -> List[float]:
    """Thrash bait: one-iteration spikes that vanish immediately, and
    short step edges spaced like a typical cooldown window."""
    loads = []
    for i in range(iterations):
        slot = i % 7
        if slot == 2:
            loads.append(spike)  # gone next iteration
        elif slot in (4, 5) and _uniform(seed, i) < 0.7:
            loads.append(step)  # two-iteration shelf, then back down
        else:
            loads.append(base)
    return loads


TRACES: Dict[str, Callable[..., List[float]]] = {
    "bursty": bursty,
    "diurnal": diurnal,
    "adversarial": adversarial,
}


def trace(name: str, iterations: int, seed: int = 0, **kwargs) -> List[float]:
    """Generate the named trace (``bursty``/``diurnal``/``adversarial``)."""
    return TRACES[name](iterations, seed=seed, **kwargs)
