"""Shared machinery for the Colza pipeline experiments (Figs. 5-10).

A :class:`ColzaExperiment` assembles the full stack — cluster, staging
deployment, N client processes, a deployed Catalyst pipeline in MoNA or
MPI mode — and drives iterations of the standard protocol: one client
runs the 2PC ``activate``, all clients ``stage`` their blocks
concurrently, then ``execute`` + ``deactivate``. Each iteration is
wrapped in a ``colza.iteration`` span and its :class:`IterationTiming`
is a *view over the span tree* — every number the bench suite reports
flows through the same hierarchy the Chrome export and the
critical-path analyzer read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from repro.catalyst.script import CatalystScript
from repro.core import ColzaAdmin, Deployment
from repro.core.pipelines import MPI_COMM_REGISTRY
from repro.mpi import MpiWorld
from repro.sim import Simulation
from repro.sim.platform import Cluster
from repro.ssg import SwimConfig
from repro.testing import drive, run_until

__all__ = ["ColzaExperiment", "IterationTiming"]

#: Blocks for one client: list of (block_id, payload, metadata).
ClientBlocks = Sequence[Tuple[int, Any]]


@dataclass
class IterationTiming:
    iteration: int
    activate: float
    stage_total: float
    stage_mean: float
    execute: float
    deactivate: float
    n_servers: int

    @property
    def total(self) -> float:
        return self.activate + self.stage_total + self.execute + self.deactivate

    @classmethod
    def from_span_tree(cls, node) -> "IterationTiming":
        """Derive the phase breakdown from one ``colza.iteration``
        :class:`~repro.telemetry.tree.SpanNode`.

        Children arrive in span-begin order, so the stage sum
        accumulates in the same order the flat-list scraping used to —
        bit-identical totals on the same seed.
        """

        def durations(name: str) -> List[float]:
            return [c.duration for c in node.children if c.name == name and c.finished]

        stages = durations("colza.stage")
        activate = durations("colza.activate")
        execute = durations("colza.execute")
        deactivate = durations("colza.deactivate")
        return cls(
            iteration=node.tags.get("iteration", -1),
            activate=activate[-1] if activate else 0.0,
            stage_total=sum(stages),
            stage_mean=sum(stages) / len(stages) if stages else 0.0,
            execute=execute[-1] if execute else 0.0,
            deactivate=deactivate[-1] if deactivate else 0.0,
            n_servers=node.tags.get("n_servers", 0),
        )


class ColzaExperiment:
    """End-to-end staging experiment at a given scale."""

    def __init__(
        self,
        n_servers: int,
        n_clients: int,
        script: CatalystScript,
        controller: str = "mona",
        mpi_profile: str = "craympich",
        server_procs_per_node: int = 1,
        client_nodes_offset: int = 40,
        clients_per_node: int = 16,
        width: int = 256,
        height: int = 256,
        swim_period: float = 0.25,
        seed: int = 0,
        nodes: int = 128,
        pipeline_name: str = "render",
        library: str = "libcolza-catalyst.so",
        extra_config: Optional[Dict[str, Any]] = None,
    ):
        self.sim = Simulation(seed=seed)
        self.cluster = Cluster(self.sim, nodes=nodes)
        self.deployment = Deployment(
            self.sim, cluster=self.cluster,
            swim_config=SwimConfig(period=swim_period),
        )
        self.n_servers = n_servers
        self.n_clients = n_clients
        self.script = script
        self.controller = controller
        self.mpi_profile = mpi_profile
        self.server_procs_per_node = server_procs_per_node
        self.client_nodes_offset = client_nodes_offset
        self.clients_per_node = clients_per_node
        self.width = width
        self.height = height
        self.pipeline_name = pipeline_name
        self.library = library
        #: Extra pipeline configuration merged into the deploy-time
        #: config dict (and into every elastic re-deploy). This is how
        #: experiments reach backend knobs the harness has no parameter
        #: for — e.g. the stats backend's ``bytes_per_second``.
        self.extra_config = dict(extra_config or {})
        self.handles: List = []
        self.clients: List = []
        self.client_margos: List = []
        self.mpi_world: Optional[MpiWorld] = None
        self.timings: List[IterationTiming] = []

    # ------------------------------------------------------------------
    def pipeline_config(self) -> Dict[str, Any]:
        """The config dict every pipeline deploy (initial and elastic)
        receives: harness parameters plus :attr:`extra_config`."""
        config: Dict[str, Any] = {
            "script": self.script,
            "controller": self.controller,
            "width": self.width,
            "height": self.height,
        }
        config.update(self.extra_config)
        return config

    def setup(self) -> "ColzaExperiment":
        sim = self.sim
        drive(
            sim,
            self.deployment.start_servers(
                self.n_servers, first_node=0, procs_per_node=self.server_procs_per_node
            ),
            max_time=600,
        )
        run_until(sim, self.deployment.converged, max_time=600)

        for i in range(self.n_clients):
            node = self.client_nodes_offset + i // self.clients_per_node
            margo, client = self.deployment.make_client(node_index=node)
            drive(sim, client.connect())
            self.client_margos.append(margo)
            self.clients.append(client)

        config = self.pipeline_config()
        if self.controller == "mpi":
            self._provision_mpi_world()
        drive(
            sim,
            self.deployment.deploy_pipeline(
                self.client_margos[0], self.pipeline_name, self.library, config
            ),
            max_time=600,
        )
        self.handles = [
            c.distributed_pipeline_handle(self.pipeline_name) for c in self.clients
        ]
        return self

    def _provision_mpi_world(self) -> None:
        daemons = sorted(self.deployment.live_daemons(), key=lambda d: d.address)
        self.mpi_world = MpiWorld(
            self.sim, self.deployment.fabric, len(daemons), profile=self.mpi_profile,
            procs_per_node=self.server_procs_per_node, first_node=0,
            name="colza-mpi-static",
        )
        for rank, daemon in enumerate(daemons):
            MPI_COMM_REGISTRY[daemon.margo.name] = self.mpi_world.comm_world(rank)

    # ------------------------------------------------------------------
    def add_server_with_pipeline(self, node_index: int) -> Generator:
        """Elastic scale-up: new daemon + pipeline instance (admin)."""
        daemons = yield from self.add_servers_with_pipeline(1, node_index)
        return daemons[0]

    def add_servers_with_pipeline(self, count: int, node_index: int) -> Generator:
        """Add ``count`` daemons on one node with a single srun, join
        them concurrently, then deploy the pipeline on each."""
        sim = self.sim
        yield sim.timeout(self.cluster.launcher.srun_delay(count))
        starts = []
        daemons = []
        for _ in range(count):
            task = sim.spawn(
                self.deployment.add_server(node_index, charge_launch=False),
                name="elastic-add",
            )
            starts.append(task.join())
        results = yield sim.all_of(starts)
        daemons.extend(results)
        admin = ColzaAdmin(self.client_margos[0])
        config = self.pipeline_config()
        for daemon in daemons:
            yield from admin.create_pipeline(
                daemon.address, self.pipeline_name, self.library, config
            )
        return daemons

    # ------------------------------------------------------------------
    def iteration_body(
        self, iteration: int, blocks_per_client: Sequence[ClientBlocks]
    ) -> Generator:
        """activate (2PC, client 0) -> concurrent stage -> execute -> deactivate."""
        sim = self.sim
        lead = self.handles[0]
        span = sim.trace.begin(
            "colza.iteration", pipeline=self.pipeline_name, iteration=iteration
        )
        try:
            yield from lead.activate(iteration)
            frozen = lead.frozen_view
            tasks = []
            for ci, blocks in enumerate(blocks_per_client):
                handle = self.handles[ci]
                handle.frozen_view = frozen
                tasks.append(
                    sim.spawn(self._stage_all(handle, iteration, blocks), name=f"stage-c{ci}")
                )
            if tasks:
                yield sim.all_of([t.join() for t in tasks])
            yield from lead.execute(iteration)
            yield from lead.deactivate(iteration)
        except BaseException as err:
            sim.trace.end(span, error=type(err).__name__)
            raise
        sim.trace.end(span, n_servers=len(frozen))
        return len(frozen)

    @staticmethod
    def _stage_all(handle, iteration: int, blocks: ClientBlocks) -> Generator:
        for block_id, payload in blocks:
            yield from handle.stage(iteration, block_id, payload, {"block_id": block_id})
        return None

    def run_iteration(
        self, iteration: int, blocks_per_client: Sequence[ClientBlocks]
    ) -> IterationTiming:
        """Drive one iteration to completion and derive its timing from
        the iteration's span subtree."""
        from repro.telemetry.tree import SpanTree

        sim = self.sim
        n_servers = drive(
            sim, self.iteration_body(iteration, blocks_per_client), max_time=100000
        )
        nodes = [
            n
            for n in SpanTree.from_tracer(sim.trace).iterations(self.pipeline_name)
            if n.finished and n.tags.get("iteration") == iteration
        ]
        if nodes:
            timing = IterationTiming.from_span_tree(nodes[-1])
        else:  # tracing disabled: keep the pre-telemetry zero timings
            timing = IterationTiming(iteration, 0.0, 0.0, 0.0, 0.0, 0.0, n_servers)
        self.timings.append(timing)
        return timing
