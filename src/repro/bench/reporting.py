"""Plain-text table reporting for the benchmark harness."""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

__all__ = ["Table", "fmt_seconds", "fmt_us"]


def fmt_us(seconds: float) -> str:
    """Seconds -> microseconds string."""
    return f"{seconds * 1e6:.3f}"


def fmt_seconds(seconds: float) -> str:
    return f"{seconds:.3f}"


class Table:
    """A printable results table with aligned columns."""

    def __init__(self, title: str, headers: Sequence[str]):
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []

    def add(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(f"expected {len(self.headers)} cells, got {len(cells)}")
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def show(self) -> None:
        print("\n" + self.render() + "\n")

    def save(self, name: str, directory: str = "results") -> str:
        """Write the rendered table to ``<directory>/<name>.txt``."""
        import os

        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{name}.txt")
        with open(path, "w") as fh:
            fh.write(self.render() + "\n")
        return path
