"""Command-line runner for the reproduction experiments.

Usage::

    python -m repro.bench --list
    python -m repro.bench table1 table2
    python -m repro.bench fig5 --arg scales=[4,16]
    python -m repro.bench all
    python -m repro.bench report --controller mona --chrome trace.json

``report`` runs a small end-to-end ColzaExperiment and prints the
telemetry report (span summary, per-iteration critical path, metrics);
``--chrome PATH`` additionally writes a Perfetto-loadable Chrome
``trace_event`` file. Each experiment prints its structured results;
the pytest-benchmark entry points under ``benchmarks/`` remain the
canonical paper-vs-measured harness (with assertions) — this CLI is
for interactive use.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
import time
from typing import Any, Callable, Dict

EXPERIMENTS: Dict[str, str] = {
    "table1": "repro.bench.experiments.table1_p2p",
    "table2": "repro.bench.experiments.table2_reduce",
    "fig1a": "repro.bench.experiments.fig1a_dwi_dataset",
    "fig3": "repro.bench.experiments.fig3_fig1b_renders",
    "fig4": "repro.bench.experiments.fig4_resize",
    "fig5": "repro.bench.experiments.fig5_mandelbulb",
    "fig6": "repro.bench.experiments.fig6_grayscott",
    "fig7": "repro.bench.experiments.fig7_dwi",
    "fig8": "repro.bench.experiments.fig8_frameworks",
    "fig9": "repro.bench.experiments.fig9_elastic",
    "fig10": "repro.bench.experiments.fig10_elastic_dwi",
    "sec2e": "repro.bench.experiments.sec2e_activate",
    "ablation-reduce": "repro.bench.experiments.ablation_reduce",
    "ablation-ssg": "repro.bench.experiments.ablation_ssg",
    "ablation-compositing": "repro.bench.experiments.ablation_compositing",
    "ablation-autoscale": "repro.bench.experiments.ablation_autoscale",
    "autoscale-slo": "repro.bench.experiments.autoscale_slo",
}


def _load_runner(name: str) -> Callable[..., Any]:
    import importlib

    module = importlib.import_module(EXPERIMENTS[name])
    return module.run


def _parse_arg(text: str) -> tuple:
    key, _, raw = text.partition("=")
    if not _:
        raise SystemExit(f"--arg expects key=value, got {text!r}")
    try:
        value = ast.literal_eval(raw)
    except (ValueError, SyntaxError):
        value = raw
    return key, value


def _jsonable(obj: Any) -> Any:
    import numpy as np

    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.integer, np.floating)):
        return obj.item()
    return obj


def _run_report(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench report",
        description="Run a small ColzaExperiment and print its telemetry report.",
    )
    parser.add_argument("--servers", type=int, default=4)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--iterations", type=int, default=2)
    parser.add_argument("--controller", default="mona", choices=["mona", "mpi"])
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--chrome", metavar="PATH",
        help="write a Chrome trace_event JSON (load in Perfetto / chrome://tracing)",
    )
    parser.add_argument("--json", action="store_true", help="print the report as JSON")
    args = parser.parse_args(argv)

    from repro.bench.harness import ColzaExperiment
    from repro.core.pipelines import IsoSurfaceScript
    from repro.na import VirtualPayload
    from repro.telemetry import render_text_report, telemetry_report, write_chrome_trace

    exp = ColzaExperiment(
        args.servers, args.clients,
        IsoSurfaceScript(field="dist", isovalues=[1.0]),
        controller=args.controller, seed=args.seed,
        width=64, height=64, library="libcolza-iso.so",
    ).setup()
    payload = VirtualPayload((8192,), "float64")
    for it in range(1, args.iterations + 1):
        blocks = [[(c, payload)] for c in range(args.clients)]
        exp.run_iteration(it, blocks)

    report = telemetry_report(exp.sim, pipeline=exp.pipeline_name)
    if args.json:
        print(json.dumps(_jsonable(report), indent=2))
    else:
        print(render_text_report(report))
    if args.chrome:
        path = write_chrome_trace(exp.sim.trace, args.chrome, metrics=exp.sim.metrics)
        print(f"chrome trace written to {path}", file=sys.stderr)
    return 0


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "report":
        return _run_report(argv[1:])
    if argv and argv[0] == "trajectory":
        from repro.bench.trajectory import main as trajectory_main

        return trajectory_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run Colza-reproduction experiments interactively.",
    )
    parser.add_argument("experiments", nargs="*", help="experiment names, or 'all'")
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--arg", action="append", default=[], metavar="KEY=VALUE",
        help="keyword argument forwarded to run() (Python literal)",
    )
    parser.add_argument("--json", action="store_true", help="print raw JSON results")
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        print("available experiments:")
        for name, module in EXPERIMENTS.items():
            print(f"  {name:22s} {module}")
        return 0

    names = list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    kwargs = dict(_parse_arg(a) for a in args.arg)
    for name in names:
        if name not in EXPERIMENTS:
            print(f"unknown experiment {name!r}; use --list", file=sys.stderr)
            return 2
        print(f"== {name} ({EXPERIMENTS[name]}) ==")
        t0 = time.time()  # detlint: disable=DET001 -- operator-facing wall time, not sim state
        results = _load_runner(name)(**kwargs)
        elapsed = time.time() - t0  # detlint: disable=DET001 -- operator-facing wall time, not sim state
        print(json.dumps(_jsonable(results), indent=2) if args.json else _jsonable(results))
        print(f"-- {name} done in {elapsed:.1f}s wall --\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
