"""Command-line runner for the reproduction experiments.

Usage::

    python -m repro.bench --list
    python -m repro.bench table1 table2
    python -m repro.bench fig5 --arg scales=[4,16]
    python -m repro.bench all

Each experiment prints its structured results; the pytest-benchmark
entry points under ``benchmarks/`` remain the canonical paper-vs-
measured harness (with assertions) — this CLI is for interactive use.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
import time
from typing import Any, Callable, Dict

EXPERIMENTS: Dict[str, str] = {
    "table1": "repro.bench.experiments.table1_p2p",
    "table2": "repro.bench.experiments.table2_reduce",
    "fig1a": "repro.bench.experiments.fig1a_dwi_dataset",
    "fig3": "repro.bench.experiments.fig3_fig1b_renders",
    "fig4": "repro.bench.experiments.fig4_resize",
    "fig5": "repro.bench.experiments.fig5_mandelbulb",
    "fig6": "repro.bench.experiments.fig6_grayscott",
    "fig7": "repro.bench.experiments.fig7_dwi",
    "fig8": "repro.bench.experiments.fig8_frameworks",
    "fig9": "repro.bench.experiments.fig9_elastic",
    "fig10": "repro.bench.experiments.fig10_elastic_dwi",
    "sec2e": "repro.bench.experiments.sec2e_activate",
    "ablation-reduce": "repro.bench.experiments.ablation_reduce",
    "ablation-ssg": "repro.bench.experiments.ablation_ssg",
    "ablation-compositing": "repro.bench.experiments.ablation_compositing",
    "ablation-autoscale": "repro.bench.experiments.ablation_autoscale",
}


def _load_runner(name: str) -> Callable[..., Any]:
    import importlib

    module = importlib.import_module(EXPERIMENTS[name])
    return module.run


def _parse_arg(text: str) -> tuple:
    key, _, raw = text.partition("=")
    if not _:
        raise SystemExit(f"--arg expects key=value, got {text!r}")
    try:
        value = ast.literal_eval(raw)
    except (ValueError, SyntaxError):
        value = raw
    return key, value


def _jsonable(obj: Any) -> Any:
    import numpy as np

    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.integer, np.floating)):
        return obj.item()
    return obj


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run Colza-reproduction experiments interactively.",
    )
    parser.add_argument("experiments", nargs="*", help="experiment names, or 'all'")
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--arg", action="append", default=[], metavar="KEY=VALUE",
        help="keyword argument forwarded to run() (Python literal)",
    )
    parser.add_argument("--json", action="store_true", help="print raw JSON results")
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        print("available experiments:")
        for name, module in EXPERIMENTS.items():
            print(f"  {name:22s} {module}")
        return 0

    names = list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    kwargs = dict(_parse_arg(a) for a in args.arg)
    for name in names:
        if name not in EXPERIMENTS:
            print(f"unknown experiment {name!r}; use --list", file=sys.stderr)
            return 2
        print(f"== {name} ({EXPERIMENTS[name]}) ==")
        t0 = time.time()
        results = _load_runner(name)(**kwargs)
        elapsed = time.time() - t0
        print(json.dumps(_jsonable(results), indent=2) if args.json else _jsonable(results))
        print(f"-- {name} done in {elapsed:.1f}s wall --\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
