"""The tracked perf-trajectory suites (DES kernel + static analysis).

Runs a pinned-seed set of *scenes* and writes a per-suite baseline
artifact. The ``kernel`` suite — event throughput, timer
cancellation/compaction, SWIM churn at 256/1024/4096 members, MoNA
reduce at large fan-in — writes ``BENCH_kernel.json``: per scene, the
deterministic op counts (events scheduled/processed, cancels, probes,
view rebuilds, peak queue depth) plus wall time and a *normalized*
throughput. The ``analysis`` suite times a whole-tree flowcheck run
(all FC001..FC010 passes, taint fixpoint included) and writes
``BENCH_analysis.json`` so analyzer slowdowns and finding-count drift
are gated like kernel regressions.

Normalization makes the regression gate machine-portable: every run
first times a fixed pure-Python calibration loop, and throughputs are
reported as events per calibration-op (dimensionless). A faster or
slower machine shifts the calibration and the scene alike, so the
ratio tracks *kernel* efficiency, not host speed.

Comparison (``--check``, used by ``make bench-trajectory`` and CI)
fails when any tracked metric regresses by more than
:data:`TOLERANCE` (20%) against the committed baseline:

- count metrics (op counts) regress by *growing*;
- throughput metrics regress by *shrinking*.

Large improvements are reported as warnings — refresh the baseline
with ``--update`` so the gate keeps teeth.

Usage::

    python -m repro.bench trajectory                  # run, write latest
    python -m repro.bench trajectory --check          # + gate vs baseline
    python -m repro.bench trajectory --update         # refresh baseline
    python -m repro.bench trajectory --scenes kernel_events,swim_churn_256
    python -m repro.bench trajectory --suite analysis --check
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

#: Pinned seed for every scene — op counts must be reproducible.
SEED = 1234

#: Regression gate: tracked metrics may drift this much vs baseline.
TOLERANCE = 0.20

#: Default artifact paths (repo root relative) for the kernel suite;
#: other suites derive theirs from :data:`SUITES`.
BASELINE_PATH = "BENCH_kernel.json"
LATEST_PATH = "BENCH_kernel.latest.json"

#: Pre-optimization wall times for the SWIM-churn scenes, measured on
#: the flat-heapq kernel (no cancelable timers, full view re-sorts,
#: per-call span/scope allocation) with the *identical* pinned-seed
#: workload via ``git stash`` on the machine that produced the first
#: committed baseline. Informational — recorded in every report so the
#: acceptance speedup (>= 3x at 4096 members) stays documented next to
#: the numbers it is claimed against; never part of the gate.
PRE_PR_REFERENCE = {
    "swim_churn_256": {"wall_seconds": 1.375, "probes": 2117},
    "swim_churn_1024": {"wall_seconds": 2.786, "probes": 2116},
    "swim_churn_4096": {"wall_seconds": 8.836, "probes": 2112},
}


def _wall() -> float:
    return time.perf_counter()  # detlint: disable=DET001 -- bench harness: real wall time is the measurand


# ---------------------------------------------------------------------------
# calibration
def calibrate(ops: int = 2_000_000, passes: int = 2) -> Dict[str, float]:
    """Time a fixed pure-Python loop (best of ``passes``); ops/second.

    Deliberately kernel-free: if calibration exercised the kernel, a
    kernel speedup would cancel out of every normalized throughput.
    """
    best = float("inf")
    acc = 0
    for _ in range(passes):
        t0 = _wall()
        acc = 0
        for i in range(ops):
            acc += i & 7
        best = min(best, _wall() - t0)
    return {"ops": float(ops), "wall_seconds": best, "ops_per_sec": ops / best, "acc": float(acc)}


# ---------------------------------------------------------------------------
# scenes
def scene_kernel_events(seed: int = SEED) -> Dict[str, float]:
    """Raw event throughput: timer storms + one bulk schedule_many."""
    from repro.sim import Simulation

    sim = Simulation(seed=seed)
    rng = sim.rng.stream("bench.kernel_events")

    n_tasks, n_waits = 100, 200

    def chatter(delays):
        for d in delays:
            yield sim.timeout(d)

    for t in range(n_tasks):
        delays = rng.random(n_waits) * 10.0 + 1e-6
        sim.spawn(chatter(list(delays)), name=f"chatter-{t}")

    # Bulk path: one O(n + m) heapify instead of m sift-ups.
    fired = []
    batch = [(float(w), fired.append, i) for i, w in enumerate(rng.random(20_000) * 10.0)]
    sim.schedule_many(batch, relative=True)

    t0 = _wall()
    sim.run()
    wall = _wall() - t0
    stats = sim.queue_stats()
    events = stats["pushes"]
    return {
        "wall_seconds": wall,
        "events_scheduled": stats["pushes"],
        "events_processed": stats["pops"],
        "peak_queue_depth": stats["peak_depth"],
        "bulk_fired": len(fired),
        "events_per_sec": events / wall,
    }


def scene_kernel_cancel(seed: int = SEED) -> Dict[str, float]:
    """Cancellation fast path: most timers are withdrawn, tombstones
    must compact instead of accumulating."""
    from repro.sim import Simulation

    sim = Simulation(seed=seed)
    rng = sim.rng.stream("bench.kernel_cancel")

    n_timers, keep_every = 30_000, 5
    delays = rng.random(n_timers) * 100.0 + 1e-6

    def driver():
        timers = [sim.timeout(float(d)) for d in delays]
        # Cancel 80% immediately (lost races), in schedule order.
        for i, ev in enumerate(timers):
            if i % keep_every:
                ev.cancel()
        yield sim.timeout(0)

    sim.spawn(driver(), name="canceler")
    t0 = _wall()
    sim.run()
    wall = _wall() - t0
    stats = sim.queue_stats()
    events = stats["pushes"] + stats["cancels"]
    return {
        "wall_seconds": wall,
        "events_scheduled": stats["pushes"],
        "events_processed": stats["pops"],
        "cancels": stats["cancels"],
        "compactions": stats["compactions"],
        "tombstones_left": stats["tombstones"],
        "peak_queue_depth": stats["peak_depth"],
        "events_per_sec": events / wall,
    }


def build_swim_churn(
    n_members: int,
    seed: int = SEED,
    active: int = 32,
    spares: int = 64,
):
    """Bring up the sampled SWIM-churn topology (see scene_swim_churn).

    Returns ``(sim, agents, churn_task)`` with the churn driver already
    spawned; the caller runs the simulation and reads the counters.
    Uses only APIs common to pre- and post-optimization kernels so the
    same workload can be timed against both.
    """
    from repro.sim import Simulation
    from repro.ssg import GroupFile, SSGAgent
    from repro.ssg.view import Status, Update
    from repro.testing import build_margo_ring, drive

    active = min(active, n_members)
    sim = Simulation(seed=seed)
    sim.trace.enabled = False  # measure protocol cost, not span volume

    n_echo = n_members - active
    fabric, margos = build_margo_ring(
        sim, active + n_echo + spares, procs_per_node=4, name_prefix="swim"
    )
    group_file = GroupFile()

    # Active agents run the full SWIM loop; echo members answer pings
    # (their SSG provider is exported at construction) but never start,
    # so 4096 full N x N views are never materialized — only the active
    # sample pays the per-probe view costs being measured.
    agents = [SSGAgent(m, group_file) for m in margos[:active]]
    echoes = [SSGAgent(m, group_file) for m in margos[active:]]
    echo_addrs = [a.address for a in echoes[:n_echo]]
    spare_addrs = [a.address for a in echoes[n_echo:]]

    for agent in agents:
        drive(sim, agent.start())
    # Pre-seed full-size views, in sorted order so incremental caches
    # append instead of shifting (and pre-cache sizes match reality).
    for agent in agents:
        for addr in sorted(echo_addrs):
            agent.view.apply(Update(Status.ALIVE, addr, 0))

    def churn(period: float = 0.25):
        # One leave + one join injected per period, disseminated by the
        # protocol itself (piggyback path under a full-size outbox).
        leaving = list(sorted(echo_addrs))
        joining = list(sorted(spare_addrs))
        i = 0
        while True:
            yield sim.timeout(period)
            target = agents[i % len(agents)]
            gone = leaving[i % len(leaving)]
            fresh = joining[i % len(joining)]
            target._apply_and_notify(Update(Status.DEAD, gone, i))
            target._apply_and_notify(Update(Status.ALIVE, fresh, i))
            i += 1

    churn_task = sim.spawn(churn(), name="churn-driver")
    return sim, agents, churn_task


def scene_swim_churn(
    n_members: int, seed: int = SEED, sim_seconds: float = 15.0
) -> Dict[str, float]:
    """SWIM churn at scale: 32 active agents holding ``n_members``-sized
    views, echo members answering pings, continuous join/leave churn.

    The pre-optimization kernel re-sorted the whole view per probe and
    popped a stale deadline timer per RPC; this scene is the ISSUE's
    >= 3x acceptance workload at ``n_members=4096``.
    """
    sim, agents, _ = build_swim_churn(n_members, seed=seed)
    t0 = _wall()
    sim.run(until=sim.now + sim_seconds)
    wall = _wall() - t0
    stats = sim.queue_stats()
    probes = sim.metrics.get("ssg.probes")
    rebuilds = sum(a.view.rebuilds for a in agents)
    view_total = sum(a.view.size() for a in agents)
    events = stats["pushes"]
    return {
        "wall_seconds": wall,
        "events_scheduled": stats["pushes"],
        "events_processed": stats["pops"],
        "cancels": stats["cancels"],
        "peak_queue_depth": stats["peak_depth"],
        "probes": probes.value if probes else 0.0,
        "view_rebuilds": rebuilds,
        "view_total_size": view_total,
        "events_per_sec": events / wall,
    }


def scene_mona_reduce(seed: int = SEED, ranks: int = 128, elems: int = 32_768) -> Dict[str, float]:
    """MoNA reduce at large fan-in, real ndarrays: binary + binomial
    trees back to back; the combine bodies fold in place."""
    from repro.sim import Simulation
    from repro.mona.ops import SUM
    from repro.testing import build_mona_world, run_all

    sim = Simulation(seed=seed)
    sim.trace.enabled = False
    fabric, instances, comms = build_mona_world(sim, ranks, procs_per_node=8)
    rng = sim.rng.stream("bench.mona_reduce")
    payloads = [
        (rng.random(elems) * (r + 1)).astype(np.float64) for r in range(ranks)
    ]

    t0 = _wall()
    binary = run_all(
        sim, [c.reduce(p, op=SUM, root=0) for c, p in zip(comms, payloads)]
    )
    binomial = run_all(
        sim,
        [c.reduce(p, op=SUM, root=0, algorithm="binomial") for c, p in zip(comms, payloads)],
    )
    wall = _wall() - t0
    stats = sim.queue_stats()
    checksum = float(binary[0].sum()) + float(binomial[0].sum())
    identical = bool(np.array_equal(binary[0], binomial[0]))
    events = stats["pushes"]
    return {
        "wall_seconds": wall,
        "events_scheduled": stats["pushes"],
        "events_processed": stats["pops"],
        "reduce_checksum": checksum,
        "trees_bit_identical": identical,
        "events_per_sec": events / wall,
    }


def scene_flowcheck_tree() -> Dict[str, float]:
    """Whole-tree flowcheck: every FC pass (taint fixpoint included)
    over src/. Finding counts are the determinism check; the gate
    catches analyzer slowdowns and finding/suppression drift."""
    from repro.analysis.flowcheck import run_check

    src = Path(__file__).resolve().parents[2]  # src/
    t0 = _wall()
    report = run_check([str(src)], root=str(src.parent))
    wall = _wall() - t0
    return {
        "wall_seconds": wall,
        "files_checked": report.files_checked,
        "findings_total": len(report.findings),
        "findings_unsuppressed": len(report.unsuppressed()),
        "files_per_sec": report.files_checked / wall,
    }


def scene_mcheck_explore() -> Dict[str, float]:
    """Systematic exploration of the quota_backpressure window (model
    checker, repro.analysis.mcheck): schedule/prune/pair counts are the
    determinism check — a drifting count means the explorer's frontier
    or the scenario's choice structure changed — and ``violations``
    baselines at 0 so any invariant break on the clean tree fails the
    gate outright."""
    from repro.analysis.mcheck import explore

    t0 = _wall()
    report = explore("quota_backpressure", 0, max_schedules=16)
    wall = _wall() - t0
    return {
        "wall_seconds": wall,
        "violations": 0 if report.ok else len(report.counterexample.violations),
        "runs": report.runs,
        "distinct_traces": report.distinct_traces,
        "pruned": report.pruned,
        "dependent_pairs": len(report.dependent_pairs),
        "choice_points": report.choice_points,
        "schedules_per_sec": report.runs / wall,
    }


def scene_autoscale_trace(shape: str) -> Dict[str, float]:
    """The closed-loop SLO controller under one pinned load trace:
    miss and resize counts are the tracked product metrics (DESIGN §16)
    — a regression here means the controller started missing deadlines
    it used to meet, or thrashing where it used to hold."""
    from repro.bench.experiments.autoscale_slo import _run_regime
    from repro.bench.loadtraces import trace

    kwargs = {"burst": 6.0} if shape == "bursty" else {}
    loads = trace(shape, 12, seed=23, **kwargs)
    t0 = _wall()
    m = _run_regime("slo", "grayscott", loads, 4, 23)
    wall = _wall() - t0
    return {
        "wall_seconds": wall,
        "slo_misses": float(m["slo_misses"]),
        "resizes": float(m["resizes"]),
        "resize_failures": float(m["resize_failures"]),
        "final_servers": float(m["final_servers"]),
        "iterations_per_sec": len(loads) / wall,
    }


def scene_autoscale_chaos() -> Dict[str, float]:
    """Two controller-attacking chaos scenarios (join-target crash,
    telemetry blackout) at a pinned seed. ``violations`` baselines at 0
    so any ControllerSafety break on the clean tree fails the gate."""
    from repro.chaos.scenarios import run_scenario

    t0 = _wall()
    crash = run_scenario("autoscale_join_target_crash", seed=0)
    blackout = run_scenario("autoscale_telemetry_blackout", seed=0)
    wall = _wall() - t0
    return {
        "wall_seconds": wall,
        "violations": float(len(crash.violations) + len(blackout.violations)),
        "resize_failures": float(crash.info["resize_failures"]),
        "servers_after_recovery": float(crash.info["servers"]),
        "degraded_steps": float(blackout.info["degraded_steps"]),
        "scenarios_per_sec": 2.0 / wall,
    }


#: Scene registry: name -> (runner, tracked metric spec).
#: Spec maps metric name -> "count" (regresses by growing) or
#: "throughput" (regresses by shrinking). Untracked fields are
#: informational.
SCENES: Dict[str, Tuple[Callable[[], Dict[str, float]], Dict[str, str]]] = {
    "kernel_events": (
        scene_kernel_events,
        {
            "events_scheduled": "count",
            "peak_queue_depth": "count",
            "norm_throughput": "throughput",
        },
    ),
    "kernel_cancel": (
        scene_kernel_cancel,
        {
            "events_scheduled": "count",
            "cancels": "count",
            "tombstones_left": "count",
            "norm_throughput": "throughput",
        },
    ),
    "swim_churn_256": (
        lambda: scene_swim_churn(256),
        {
            "events_scheduled": "count",
            "probes": "count",
            "view_rebuilds": "count",
            "norm_throughput": "throughput",
        },
    ),
    "swim_churn_1024": (
        lambda: scene_swim_churn(1024),
        {
            "events_scheduled": "count",
            "probes": "count",
            "view_rebuilds": "count",
            "norm_throughput": "throughput",
        },
    ),
    "swim_churn_4096": (
        lambda: scene_swim_churn(4096),
        {
            "events_scheduled": "count",
            "probes": "count",
            "view_rebuilds": "count",
            "norm_throughput": "throughput",
        },
    ),
    "mona_reduce": (
        scene_mona_reduce,
        {
            "events_scheduled": "count",
            "norm_throughput": "throughput",
        },
    ),
}

#: The static-analysis suite. ``findings_unsuppressed`` baselines at 0,
#: so *any* unsuppressed finding regresses the gate; ``findings_total``
#: growing past tolerance means suppressions are accumulating faster
#: than an intentional --update.
ANALYSIS_SCENES: Dict[str, Tuple[Callable[[], Dict[str, float]], Dict[str, str]]] = {
    "flowcheck_tree": (
        scene_flowcheck_tree,
        {
            "findings_total": "count",
            "findings_unsuppressed": "count",
            "norm_throughput": "throughput",
        },
    ),
    "mcheck_explore": (
        scene_mcheck_explore,
        {
            "violations": "count",
            "runs": "count",
            "pruned": "count",
            "norm_throughput": "throughput",
        },
    ),
}

#: The SLO-autoscaler suite: product metrics (miss rate, resize
#: counts, safety violations) gated like perf numbers — the controller
#: may not quietly start missing deadlines or thrashing.
AUTOSCALE_SCENES: Dict[str, Tuple[Callable[[], Dict[str, float]], Dict[str, str]]] = {
    "autoscale_bursty": (
        lambda: scene_autoscale_trace("bursty"),
        {
            "slo_misses": "count",
            "resizes": "count",
            "resize_failures": "count",
            "norm_throughput": "throughput",
        },
    ),
    "autoscale_adversarial": (
        lambda: scene_autoscale_trace("adversarial"),
        {
            "slo_misses": "count",
            "resizes": "count",
            "norm_throughput": "throughput",
        },
    ),
    "autoscale_chaos": (
        scene_autoscale_chaos,
        {
            "violations": "count",
            "resize_failures": "count",
            "norm_throughput": "throughput",
        },
    ),
}

#: Suite registry: name -> (scene registry, baseline path, latest path).
SUITES: Dict[str, Tuple[Dict, str, str]] = {
    "kernel": (SCENES, BASELINE_PATH, LATEST_PATH),
    "analysis": (ANALYSIS_SCENES, "BENCH_analysis.json", "BENCH_analysis.latest.json"),
    "autoscale": (AUTOSCALE_SCENES, "BENCH_autoscale.json", "BENCH_autoscale.latest.json"),
}


# ---------------------------------------------------------------------------
# suite driver
def run_suite(
    scene_names: Optional[List[str]] = None,
    suite: str = "kernel",
) -> Dict[str, Any]:
    """Run one suite's scenes and return its BENCH report dict."""
    scenes = SUITES[suite][0]
    names = list(scenes) if scene_names is None else scene_names
    unknown = [n for n in names if n not in scenes]
    if unknown:
        raise SystemExit(f"unknown scenes {unknown}; available: {list(scenes)}")

    cal = calibrate()
    report: Dict[str, Any] = {
        "schema": 1,
        "suite": suite,
        "seed": SEED,
        "tolerance": TOLERANCE,
        "calibration": cal,
        "scenes": {},
    }
    if suite == "kernel":
        report["pre_pr_reference"] = PRE_PR_REFERENCE
    for name in names:
        runner, tracked = scenes[name]
        print(f"  scene {name} ...", file=sys.stderr, flush=True)
        # Best-of-3: wall time (and hence throughput) takes the fastest
        # pass — cold-start noise (allocator, page cache, numpy warm-up)
        # otherwise dwarfs the 20% gate. Op counts must be identical
        # across passes: the scenes are pinned-seed deterministic, and a
        # mismatch is a determinism bug worth failing loudly on.
        passes = [runner() for _ in range(3)]
        first = passes[0]
        for other in passes[1:]:
            for metric, value in first.items():
                if metric == "wall_seconds" or metric.endswith("_per_sec"):
                    continue
                if other.get(metric) != value:
                    raise AssertionError(
                        f"scene {name}: non-deterministic metric {metric}: "
                        f"{value!r} vs {other.get(metric)!r}"
                    )
        result = dict(first)
        result["wall_seconds"] = min(p["wall_seconds"] for p in passes)
        for rate_key in [k for k in first if k.endswith("_per_sec")]:
            result[rate_key] = max(p[rate_key] for p in passes)
            result["norm_throughput"] = result[rate_key] / cal["ops_per_sec"]
        result["tracked"] = tracked
        report["scenes"][name] = result
    return report


def compare(baseline: Dict[str, Any], current: Dict[str, Any], tolerance: float = TOLERANCE):
    """Gate ``current`` against ``baseline``.

    Returns ``(regressions, warnings)`` — lists of human-readable
    strings. A scene missing from the baseline is a warning (new scene,
    gate starts on the next --update); a scene missing from the current
    run is a regression (silent coverage loss).
    """
    regressions: List[str] = []
    warnings: List[str] = []
    base_scenes = baseline.get("scenes", {})
    cur_scenes = current.get("scenes", {})
    for name, base in base_scenes.items():
        cur = cur_scenes.get(name)
        if cur is None:
            regressions.append(f"{name}: scene missing from current run")
            continue
        for metric, kind in base.get("tracked", {}).items():
            if metric not in base or metric not in cur:
                warnings.append(f"{name}.{metric}: not present in both runs")
                continue
            b, c = float(base[metric]), float(cur[metric])
            if kind == "count":
                if c > b * (1 + tolerance) + 1e-9:
                    regressions.append(
                        f"{name}.{metric}: {c:g} vs baseline {b:g} (+{(c - b) / max(b, 1e-12):.0%})"
                    )
                elif b and c < b * (1 - tolerance):
                    warnings.append(
                        f"{name}.{metric}: dropped to {c:g} from {b:g} — workload shrank? "
                        "refresh baseline if intentional"
                    )
            elif kind == "throughput":
                if c < b * (1 - tolerance):
                    regressions.append(
                        f"{name}.{metric}: {c:.4g} vs baseline {b:.4g} ({(c - b) / b:.0%})"
                    )
                elif c > b * (1 + tolerance):
                    warnings.append(
                        f"{name}.{metric}: improved to {c:.4g} from {b:.4g} — "
                        "consider --update to tighten the gate"
                    )
    for name in cur_scenes:
        if name not in base_scenes:
            warnings.append(f"{name}: new scene (not in baseline; gated after --update)")
    return regressions, warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench trajectory",
        description="Run a tracked perf-trajectory suite (kernel or analysis).",
    )
    parser.add_argument(
        "--suite",
        choices=sorted(SUITES),
        default="kernel",
        help="which scene suite to run (default: kernel)",
    )
    parser.add_argument("--out", default=None, help="where to write this run's report")
    parser.add_argument("--baseline", default=None, help="committed baseline path")
    parser.add_argument("--check", action="store_true", help="fail on >20%% regression vs baseline")
    parser.add_argument("--update", action="store_true", help="write the baseline instead of --out")
    parser.add_argument("--scenes", help="comma-separated subset of scenes")
    args = parser.parse_args(argv)

    _, suite_baseline, suite_latest = SUITES[args.suite]
    if args.baseline is None:
        args.baseline = suite_baseline
    if args.out is None:
        args.out = suite_latest

    names = args.scenes.split(",") if args.scenes else None
    report = run_suite(names, suite=args.suite)

    out_path = args.baseline if args.update else args.out
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"trajectory report written to {out_path}", file=sys.stderr)

    for name, scene in report["scenes"].items():
        print(
            f"  {name:18s} wall={scene['wall_seconds']:.3f}s "
            f"events={int(scene.get('events_scheduled', 0))} "
            f"norm={scene.get('norm_throughput', 0):.4g}"
        )

    if args.check and not args.update:
        try:
            with open(args.baseline) as fh:
                baseline = json.load(fh)
        except FileNotFoundError:
            print(f"no baseline at {args.baseline}; run with --update first", file=sys.stderr)
            return 2
        regressions, warns = compare(baseline, report)
        for w in warns:
            print(f"WARN {w}", file=sys.stderr)
        if regressions:
            for r in regressions:
                print(f"REGRESSION {r}", file=sys.stderr)
            return 1
        print("trajectory gate passed (all tracked metrics within tolerance)", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
