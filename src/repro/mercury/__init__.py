"""Mercury-sim: RPC and bulk transfer on top of NA.

Mercury provides two things Colza depends on:

- **RPC**: named procedures registered by a server, invoked by
  ``forward(address, name, input)``; the response is awaited as an
  event. Handlers are cooperative generators that may themselves
  communicate, compute, or pull bulk data.
- **Bulk**: RDMA-style transfer of registered memory regions,
  referenced by :class:`~repro.na.payload.MemoryHandle` values carried
  inside RPC arguments. This is the Colza ``stage`` data path: the
  client exposes its buffer and the server pulls it.
"""

from repro.mercury.rpc import (
    MercuryInstance,
    RpcError,
    RpcRequest,
    RpcTimeout,
    RpcUnknown,
)

__all__ = ["MercuryInstance", "RpcError", "RpcRequest", "RpcTimeout", "RpcUnknown"]
