"""The Mercury RPC engine.

Each :class:`MercuryInstance` owns one NA endpoint and a dispatch loop
(a ULT on the instance's xstream-of-record is attached later by Margo;
at this layer the loop is a plain kernel task). RPC handlers are
generators ``handler(instance, input) -> output``; whatever they return
is shipped back to the caller. Exceptions raised by a handler travel
back and re-raise at the call site as :class:`RpcError`.

Wire accounting: every request/response carries a small header
(:data:`RPC_HEADER_BYTES`) plus the pickled/declared size of its body,
so RPC-heavy control paths (2PC, SSG gossip) cost realistic time.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Generator, Optional, Tuple

from repro.na.address import Address
from repro.na.costmodel import CostModel, get_cost_model
from repro.na.fabric import Endpoint, Fabric, Message
from repro.na.payload import MemoryHandle, payload_nbytes
from repro.sim.kernel import AnyOf, Event, Simulation, Task

__all__ = ["MercuryInstance", "RpcError", "RpcRequest", "RpcTimeout", "RpcUnknown", "RPC_HEADER_BYTES"]

#: Fixed per-message RPC framing overhead, bytes.
RPC_HEADER_BYTES = 64

_RPC_TAG = "__hg_rpc__"


class RpcError(RuntimeError):
    """A handler raised; carries the remote exception's repr."""


class RpcTimeout(RpcError):
    """The response did not arrive within the caller's deadline."""


class RpcUnknown(RpcError):
    """The target had no handler registered under that name."""


@dataclass
class RpcRequest:
    """On-the-wire request record."""

    name: str
    input: Any
    reply_to: Address
    reply_tag: str
    #: Caller's current span id — the distributed trace context. The
    #: handler's spans nest under it, so one iteration's tree crosses
    #: the client/server boundary. Not counted against wire size (a
    #: real tracer packs this into the 64-byte header).
    trace_parent: Optional[int] = None


# Handler: generator function (instance, input) -> output.
Handler = Callable[["MercuryInstance", Any], Generator]


class MercuryInstance:
    """One Mercury runtime: endpoint + RPC registry + dispatch loop."""

    def __init__(
        self,
        sim: Simulation,
        fabric: Fabric,
        name: str,
        node_index: int,
        model: Optional[CostModel] = None,
    ):
        self.sim = sim
        self.fabric = fabric
        self.name = name
        self.model = model or get_cost_model("mona")
        self.endpoint: Endpoint = fabric.register(name, node_index, self.model)
        self._handlers: Dict[str, Handler] = {}
        self._reply_seq = itertools.count()
        # At-most-once dispatch: a transport may deliver one request
        # twice (duplication faults); replaying a handler would stage a
        # block twice or re-run a 2PC vote. Remember recently seen
        # request identities and drop replays.
        self._seen_requests: set = set()
        self._seen_order: Deque[Tuple[Address, str]] = deque()
        self._finalized = False
        self._dispatch_task: Task = sim.spawn(self._dispatch_loop(), name=f"{name}.hg-dispatch")

    # ------------------------------------------------------------------
    @property
    def address(self) -> Address:
        return self.endpoint.address

    @property
    def node_index(self) -> int:
        return self.endpoint.node_index

    def register_rpc(self, rpc_name: str, handler: Handler) -> None:
        """Install (or replace) the handler for ``rpc_name``."""
        self._handlers[rpc_name] = handler

    def deregister_rpc(self, rpc_name: str) -> None:
        self._handlers.pop(rpc_name, None)

    def registered(self, rpc_name: str) -> bool:
        return rpc_name in self._handlers

    # ------------------------------------------------------------------
    # client side
    def forward(
        self,
        dest: Address,
        rpc_name: str,
        input: Any = None,
        nbytes: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> Generator[Event, Any, Any]:
        """Invoke ``rpc_name`` at ``dest``; yields until the response.

        Use as ``result = yield from hg.forward(addr, "ping", arg)``.
        Raises :class:`RpcTimeout` on deadline, :class:`RpcUnknown` for
        unregistered names, :class:`RpcError` for remote failures.
        """
        if self._finalized:
            raise RpcError(f"forward on finalized instance {self.name}")
        span = self.sim.trace.begin("hg.forward", rpc=rpc_name, dest=dest)
        try:
            reply_tag = f"reply-{self.name}-{next(self._reply_seq)}"
            request = RpcRequest(
                rpc_name,
                input,
                self.endpoint.address,
                reply_tag,
                trace_parent=span.id if span.recorded else None,
            )
            body = RPC_HEADER_BYTES + (payload_nbytes(input) if nbytes is None else int(nbytes))
            self.endpoint.send(dest, request, tag=_RPC_TAG, nbytes=body)

            rx = self.endpoint.recv(tag=reply_tag)
            if timeout is None:
                msg: Message = yield rx
            else:
                timer = self.sim.timeout(timeout)
                idx, value = yield AnyOf(self.sim, [rx, timer])
                if idx == 1:
                    self.endpoint.cancel_recv(rx)
                    raise RpcTimeout(f"rpc {rpc_name!r} to {dest} timed out after {timeout}s")
                # Reply won the race: withdraw the deadline timer so it
                # never pops (at SWIM scale, one stale timer per ping
                # doubles the kernel's event budget for nothing).
                timer.cancel()
                msg = value
            status, payload = msg.payload
            if status == "ok":
                self.sim.trace.end(span, status="ok")
                return payload
            if status == "unknown":
                raise RpcUnknown(f"rpc {rpc_name!r} not registered at {dest}")
            raise RpcError(f"rpc {rpc_name!r} at {dest} failed: {payload}")
        except BaseException as err:
            self.sim.trace.end(span, error=type(err).__name__)
            raise

    # ------------------------------------------------------------------
    # bulk
    def expose(self, payload: Any) -> MemoryHandle:
        """Register local memory for remote bulk access."""
        return self.endpoint.expose(payload)

    def bulk_pull(self, handle: MemoryHandle) -> Event:
        """RDMA-get the remote region (fires with the payload)."""
        return self.fabric.rdma_pull(self.endpoint, handle)

    def bulk_push(self, handle: MemoryHandle, payload: Any) -> Event:
        """RDMA-put ``payload`` into the remote region."""
        return self.fabric.rdma_push(self.endpoint, handle, payload)

    # ------------------------------------------------------------------
    # lifecycle
    def finalize(self, quiesce: bool = False) -> None:
        """Tear the instance down; pending dispatches are dropped.

        ``quiesce=True`` models a crash: zombie handler tasks that try
        to keep communicating hang silently instead of erroring."""
        if self._finalized:
            return
        self._finalized = True
        self._dispatch_task.kill()
        if quiesce:
            self.fabric.quiesce(self.endpoint)
        else:
            self.fabric.deregister(self.endpoint)

    @property
    def finalized(self) -> bool:
        return self._finalized

    # ------------------------------------------------------------------
    # server side
    _SEEN_REQUEST_LIMIT = 1024

    def _dispatch_loop(self) -> Generator[Event, Any, None]:
        while True:
            msg: Message = yield self.endpoint.recv(tag=_RPC_TAG)
            request: RpcRequest = msg.payload
            ident = (request.reply_to, request.reply_tag)
            if ident in self._seen_requests:
                continue  # duplicate delivery: already dispatched
            self._seen_requests.add(ident)
            self._seen_order.append(ident)
            if len(self._seen_order) > self._SEEN_REQUEST_LIMIT:
                self._seen_requests.discard(self._seen_order.popleft())
            self.sim.spawn(
                self._run_handler(request),
                name=f"{self.name}.rpc.{request.name}",
            )

    def _run_handler(self, request: RpcRequest) -> Generator[Event, Any, None]:
        # Fault injection point: a "hang" verdict freezes this handler
        # ULT forever — the process looks alive to the network (its
        # endpoint accepts messages) but never answers, the failure mode
        # SWIM cannot distinguish from a crash.
        if self.sim.intercept("hg.handler", self.name, request.name) == "hang":
            yield Event(self.sim, name=f"{self.name}.chaos-hang")  # flowcheck: disable=FC002 -- chaos fault injection: the hang verdict wants a forever-pending event
            return
        # Server half of the distributed trace: nest under the caller's
        # forward span carried in the request.
        span = self.sim.trace.begin(
            "hg.handler", rpc=request.name, parent=request.trace_parent
        )
        handler = self._handlers.get(request.name)
        if handler is None:
            ev = self._respond(request, ("unknown", request.name))
            self.sim.trace.end(span, status="unknown")
            yield ev
            return
        try:
            output = yield from handler(self, request.input)
        except Exception as err:  # noqa: BLE001 - errors cross the wire
            ev = self._respond(request, ("err", repr(err)))
            self.sim.trace.end(span, status="err", error=type(err).__name__)
            yield ev
            return
        ev = self._respond(request, ("ok", output))
        self.sim.trace.end(span, status="ok")
        yield ev

    def _respond(self, request: RpcRequest, wire: tuple) -> Event:
        size = RPC_HEADER_BYTES + payload_nbytes(wire[1])
        return self.endpoint.send(request.reply_to, wire, tag=request.reply_tag, nbytes=size)
