"""Colza reproduction: elastic in situ visualization for HPC simulations.

Reproduces Dorier et al., "Colza: Enabling Elastic In Situ
Visualization for High-performance Computing Simulations" (IPDPS 2022),
as a complete Python system on a deterministic discrete-event
simulation substrate. See README.md for the architecture overview,
DESIGN.md for the system inventory, and EXPERIMENTS.md for the
reproduced tables and figures.

Commonly used entry points are re-exported here; the full API lives in
the subpackages (``repro.sim``, ``repro.mona``, ``repro.core``, ...).
"""

from repro.sim import Simulation

__version__ = "1.0.0"

__all__ = ["Simulation", "__version__"]
