"""Damaris baseline ("dedicated nodes" mode).

Faithful to the constraints the paper lists in §III-D:

- clients and servers share one ``MPI_COMM_WORLD``, split at startup
  (the application must stop using the world communicator);
- the number of dedicated server processes must divide the number of
  clients;
- deployment is monolithic — servers live and die with the app;
- each client independently signals its server after writing; servers
  enter the plugin as soon as *their own* clients have signaled, then
  stall (spinning on MPI) in the plugin's first collective waiting for
  other servers.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.catalyst import CoProcessor
from repro.catalyst.costs import PipelineCostModel
from repro.catalyst.script import CatalystScript
from repro.mpi import MpiWorld
from repro.na import Fabric
from repro.sim import Simulation
from repro.vtk.parallel import MPIController

__all__ = ["DamarisDeployment"]


class DamarisDeployment:
    """One Damaris application: clients + dedicated in-situ cores."""

    def __init__(
        self,
        sim: Simulation,
        fabric: Fabric,
        n_clients: int,
        n_servers: int,
        script: CatalystScript,
        profile: str = "craympich",
        procs_per_node: int = 4,
        first_node: int = 0,
        costs: Optional[PipelineCostModel] = None,
        width: int = 256,
        height: int = 256,
        mode: str = "dedicated_nodes",
    ):
        if n_clients % n_servers != 0:
            # The divisibility constraint the paper calls out.
            raise ValueError(
                f"Damaris requires servers ({n_servers}) to divide clients ({n_clients})"
            )
        if mode not in ("dedicated_nodes", "dedicated_cores"):
            raise ValueError(f"unknown Damaris mode {mode!r}")
        self.sim = sim
        self.n_clients = n_clients
        self.n_servers = n_servers
        self.clients_per_server = n_clients // n_servers
        self.script = script
        self.mode = mode
        # One MPI application containing everything (monolithic deploy).
        # "dedicated nodes" (the paper's Fig. 8 setting) segregates
        # servers on their own nodes; "dedicated cores" co-locates each
        # server with its clients, so writes ride shared memory.
        if mode == "dedicated_cores":
            cps = self.clients_per_server

            def node_of_rank(rank: int) -> int:
                if rank < n_clients:
                    return first_node + rank // cps
                return first_node + (rank - n_clients)

        else:
            node_of_rank = None
        self.world = MpiWorld(
            sim, fabric, n_clients + n_servers, profile=profile,
            procs_per_node=procs_per_node, first_node=first_node, name="damaris",
            node_of_rank=node_of_rank,
        )
        self._server_comms = [None] * n_servers
        self._client_comms = [None] * n_clients
        self.coprocs = [
            CoProcessor(name=f"damaris-server-{i}", costs=costs, width=width, height=height)
            for i in range(n_servers)
        ]
        # Messages for future iterations (clients are not throttled by
        # servers; the shared-memory buffer absorbs them).
        self._pending: List[List[Tuple]] = [[] for _ in range(n_servers)]

    # ------------------------------------------------------------------
    # ranks 0..n_clients-1 are clients; the rest are servers.
    def server_world_rank(self, server_index: int) -> int:
        return self.n_clients + server_index

    def server_of_client(self, client_rank: int) -> int:
        return client_rank // self.clients_per_server

    def split(self, world_rank: int) -> Generator:
        """Each rank must call this once: the COMM_WORLD split Damaris
        imposes on its host application."""
        comm = self.world.comm_world(world_rank)
        color = "client" if world_rank < self.n_clients else "server"
        sub = yield from comm.split(color, key=world_rank)
        if color == "client":
            self._client_comms[world_rank] = sub
        else:
            idx = world_rank - self.n_clients
            self._server_comms[idx] = sub
            self.coprocs[idx].initialize(self.script, MPIController(sub))
        return sub

    # ------------------------------------------------------------------
    # client API
    def damaris_write(self, client_rank: int, iteration: int, block_id: int, payload: Any) -> Generator:
        """Ship a block to the client's dedicated server (MPI p2p)."""
        comm = self.world.comm_world(client_rank)
        dest = self.server_world_rank(self.server_of_client(client_rank))
        yield from comm.send(dest, ("data", iteration, block_id, payload), tag="damaris")
        return None

    def damaris_signal(self, client_rank: int, iteration: int) -> Generator:
        """Tell the server this client's iteration data is complete.

        Independent per client — there is no global coordination, which
        is the crux of Fig. 8's Damaris result.
        """
        comm = self.world.comm_world(client_rank)
        dest = self.server_world_rank(self.server_of_client(client_rank))
        yield from comm.send(dest, ("signal", iteration), tag="damaris")
        return None

    # ------------------------------------------------------------------
    # server loop
    def server_iteration(self, server_index: int, iteration: int) -> Generator:
        """Receive this iteration's data+signals, then run the plugin."""
        world_rank = self.server_world_rank(server_index)
        comm = self.world.comm_world(world_rank)
        blocks: List[Any] = []
        signals = 0
        # Drain buffered messages from earlier receive loops first.
        pending, self._pending[server_index] = self._pending[server_index], []
        backlog = list(pending)
        while signals < self.clients_per_server:
            if backlog:
                msg = backlog.pop(0)
            else:
                msg = yield from comm.recv(tag="damaris")
            kind = msg[0]
            if msg[1] != iteration:
                self._pending[server_index].append(msg)
            elif kind == "data":
                blocks.append(msg[3])
            elif kind == "signal":
                signals += 1
        # Enter the plugin immediately — uncoordinated across servers.
        span = self.sim.trace.begin(
            "damaris.plugin", server=server_index, iteration=iteration
        )
        server_comm = self._server_comms[server_index]
        xstream = self.world.xstream(world_rank)

        def charge(seconds: float) -> Generator:
            return (yield from xstream.compute(seconds))

        results = yield from self.coprocs[server_index].coprocess(iteration, blocks, charge)
        self.sim.trace.end(span)
        return results

    def finalize(self) -> None:
        self.world.finalize()
