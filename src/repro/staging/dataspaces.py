"""DataSpaces baseline (post-Margo-refactor).

A separate staging service (its own deployment, like Colza): clients
``put`` data regions via Margo RPC + RDMA pull, and a coordinated
``exec`` trigger fans out from one client to all servers, which run the
same MPI-based pipeline as Colza+MPI. Per §III-D it avoids Damaris'
drawbacks (no world-split, separate deployment, no divisibility
constraint) but cannot grow or shrink: the pipeline communicator is a
static MPI world.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from repro.catalyst import CoProcessor
from repro.catalyst.costs import PipelineCostModel
from repro.catalyst.script import CatalystScript
from repro.margo import MargoInstance, Provider
from repro.mpi import MpiWorld
from repro.na import Fabric, get_cost_model
from repro.na.payload import MemoryHandle
from repro.sim import Simulation
from repro.vtk.parallel import MPIController

__all__ = ["DataSpacesDeployment", "DataSpacesServer"]


class DataSpacesServer(Provider):
    """One DataSpaces staging server (a Margo provider)."""

    def __init__(
        self,
        margo: MargoInstance,
        coproc: CoProcessor,
        mpi_comm,
        xstream,
    ):
        super().__init__(margo, "dspaces")
        self.coproc = coproc
        self.mpi_comm = mpi_comm
        self.xstream = xstream
        self.staged: Dict[int, List[Any]] = {}
        self.coproc.initialize_called = False
        self.export("put", self._rpc_put)
        self.export("exec", self._rpc_exec)

    def _rpc_put(self, input: dict) -> Generator:
        handle: MemoryHandle = input["handle"]
        payload = yield self.margo.bulk_pull(handle)
        self.staged.setdefault(input["iteration"], []).append(payload)
        return "ok"

    def _rpc_exec(self, input: dict) -> Generator:
        iteration = input["iteration"]
        span = self.margo.sim.trace.begin(
            "dataspaces.exec", server=self.margo.name, iteration=iteration
        )

        def charge(seconds: float) -> Generator:
            return (yield from self.xstream.compute(seconds))

        blocks = self.staged.pop(iteration, [])
        yield from self.coproc.coprocess(iteration, blocks, charge)
        self.margo.sim.trace.end(span)
        return "done"


class DataSpacesDeployment:
    """A DataSpaces staging area of ``n_servers`` processes."""

    def __init__(
        self,
        sim: Simulation,
        fabric: Fabric,
        n_servers: int,
        script: CatalystScript,
        profile: str = "craympich",
        procs_per_node: int = 4,
        first_node: int = 0,
        costs: Optional[PipelineCostModel] = None,
        width: int = 256,
        height: int = 256,
    ):
        self.sim = sim
        self.n_servers = n_servers
        # The pipeline runs over a static MPI world among the servers.
        self.pipeline_world = MpiWorld(
            sim, fabric, n_servers, profile=profile,
            procs_per_node=procs_per_node, first_node=first_node, name="dspaces-mpi",
        )
        self.servers: List[DataSpacesServer] = []
        for i in range(n_servers):
            margo = MargoInstance(
                sim, fabric, f"dspaces-{i}", first_node + i // procs_per_node,
                get_cost_model("mona"),  # Margo control plane (Mochi stack)
            )
            coproc = CoProcessor(name=f"dspaces-{i}", costs=costs, width=width, height=height)
            comm = self.pipeline_world.comm_world(i)
            coproc.initialize(script, MPIController(comm))
            self.servers.append(
                DataSpacesServer(margo, coproc, comm, self.pipeline_world.xstream(i))
            )

    # ------------------------------------------------------------------
    def put(self, client_margo: MargoInstance, iteration: int, block_id: int, payload: Any) -> Generator:
        """Client-side put: the target server pulls via RDMA."""
        server = self.servers[block_id % self.n_servers]
        handle = client_margo.expose(payload)
        return (
            yield from client_margo.provider_call(
                server.margo.address, "dspaces", "put",
                {"iteration": iteration, "block_id": block_id, "handle": handle},
                nbytes=256,
            )
        )

    def execute(self, client_margo: MargoInstance, iteration: int) -> Generator:
        """Coordinated execute: one trigger fanned out to all servers."""
        tasks = [
            self.sim.spawn(
                client_margo.provider_call(
                    server.margo.address, "dspaces", "exec", {"iteration": iteration}
                ),
                name="dspaces-exec",
            )
            for server in self.servers
        ]
        yield self.sim.all_of([t.join() for t in tasks])
        return "done"

    def finalize(self) -> None:
        for server in self.servers:
            server.margo.finalize()
        self.pipeline_world.finalize()
