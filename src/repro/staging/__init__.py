"""State-of-the-art staging baselines the paper compares against (Fig. 8).

- :mod:`repro.staging.damaris` — Damaris in "dedicated nodes" mode:
  one MPI application whose ``MPI_COMM_WORLD`` is split into clients
  and servers; each client writes to its assigned server and fires
  ``damaris_signal`` independently, so servers enter the plugin
  *uncoordinated* — the early ones stall in the plugin's first
  collective (spinning, it's MPI) until the stragglers arrive. The
  paper cites exactly this as Damaris' handicap.
- :mod:`repro.staging.dataspaces` — DataSpaces after its Margo
  refactor: a separate staging service with RDMA puts and a
  *coordinated* execute (one trigger fanned out), running the same
  MPI-based pipeline as Colza+MPI.
"""

from repro.staging.damaris import DamarisDeployment
from repro.staging.dataspaces import DataSpacesDeployment

__all__ = ["DamarisDeployment", "DataSpacesDeployment"]
