"""Named deterministic random streams.

Every stochastic element of the simulation (gossip jitter, srun launch
latency, workload noise) draws from its own named stream so that adding
a new consumer of randomness never perturbs existing ones — runs stay
reproducible as the code evolves.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """Factory of per-name :class:`numpy.random.Generator` streams.

    Stream seeds derive from ``(root_seed, name)`` via SHA-256, so they
    are stable across Python processes and platform hash randomization.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The stream for ``name`` (created on first use)."""
        gen = self._streams.get(name)
        if gen is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            gen = np.random.default_rng(child_seed)
            self._streams[name] = gen
        return gen

    def __call__(self, name: str) -> np.random.Generator:
        return self.stream(name)

    def reset(self) -> None:
        """Drop all streams; next use re-creates them from scratch."""
        self._streams.clear()
