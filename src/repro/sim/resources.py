"""FIFO resources with capacity, used to model serially-shared hardware.

An execution stream (core) is ``Resource(sim, capacity=1)``: compute
requests on the same core serialize, which is how the Argobots layer
models "a ULT occupies its xstream while computing" and how the MPI
simulator models "a blocking MPI call spins on its core".
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generator, Optional

from repro.sim.kernel import Event, Simulation

__all__ = ["HeldGuard", "Resource"]


class HeldGuard:
    """Releases one already-acquired grant when its ``with`` scope exits.

    The guard does not acquire — entering asserts a grant is actually
    held, so misuse fails loudly at the guard instead of corrupting the
    count at release. Exit runs on normal fall-through, on exceptions,
    and on GeneratorExit when the owning task is killed at a yield
    inside the block, which is what makes ``with res.held():`` the
    structurally leak-free way to hold a grant across yields.
    """

    __slots__ = ("_res",)

    def __init__(self, res: "Resource"):
        self._res = res

    def __enter__(self) -> "HeldGuard":
        if self._res.in_use <= 0:
            raise RuntimeError(
                f"held() guard on {self._res.name!r} entered without a grant"
            )
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._res.release()
        return False


class Resource:
    """A capacity-limited FIFO server.

    Usage from a task::

        yield resource.acquire()
        with resource.held():        # releases on exit, error, or kill
            yield sim.timeout(cost)

    or the one-shot helper ``yield from resource.use(cost)``.
    """

    def __init__(self, sim: Simulation, capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        # Cumulative busy integral for utilization reporting.
        self._busy_since: Optional[float] = None
        self._busy_time = 0.0

    # ------------------------------------------------------------------
    @property
    def in_use(self) -> int:
        """Number of currently held grants."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of tasks waiting for a grant."""
        return len(self._waiters)

    def busy_time(self) -> float:
        """Total simulated time during which at least one grant was held."""
        total = self._busy_time
        if self._busy_since is not None:
            total += self.sim.now - self._busy_since
        return total

    # ------------------------------------------------------------------
    def acquire(self) -> Event:
        """Event granting a unit of capacity (fires FIFO)."""
        ev = Event(self.sim, name=f"{self.name}.acquire")
        if self._in_use < self.capacity:
            self._grant(ev)
        else:
            self._waiters.append(ev)
        return ev

    def release(self, _grant: object = None) -> None:
        """Return a unit of capacity, waking the next waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError(f"release() on idle resource {self.name!r}")
        self._in_use -= 1
        if self._in_use == 0 and self._busy_since is not None:
            self._busy_time += self.sim.now - self._busy_since
            self._busy_since = None
        while self._waiters:
            ev = self._waiters.popleft()
            if ev.fired:
                continue  # cancelled waiter
            self._grant(ev)
            break

    def use(self, duration: float) -> Generator[Event, object, None]:
        """Acquire, hold for ``duration`` simulated seconds, release.

        Interrupt-safe: an interrupt while queued withdraws the pending
        acquire (releasing the grant if it raced in); an interrupt while
        holding releases the grant.
        """
        grant_ev = self.acquire()
        try:
            yield grant_ev
        except BaseException:
            if grant_ev.fired:
                self.release()
            else:
                self.cancel(grant_ev)
            raise
        with self.held():
            yield self.sim.timeout(duration)

    def held(self) -> HeldGuard:
        """Guard releasing one (already acquired) grant on scope exit."""
        return HeldGuard(self)

    def cancel(self, ev: Event) -> None:
        """Withdraw a pending acquire (no-op if already granted)."""
        try:
            self._waiters.remove(ev)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    def _grant(self, ev: Event) -> None:
        if self._in_use == 0 and self._busy_since is None:
            self._busy_since = self.sim.now
        self._in_use += 1
        ev.succeed(self)
