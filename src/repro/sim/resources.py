"""FIFO resources with capacity, used to model serially-shared hardware.

An execution stream (core) is ``Resource(sim, capacity=1)``: compute
requests on the same core serialize, which is how the Argobots layer
models "a ULT occupies its xstream while computing" and how the MPI
simulator models "a blocking MPI call spins on its core".
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Generator, List, Optional

from repro.sim.kernel import Event, Simulation

__all__ = ["HeldGuard", "Resource"]


class HeldGuard:
    """Releases one already-acquired grant when its ``with`` scope exits.

    The guard does not acquire — entering asserts a grant is actually
    held, so misuse fails loudly at the guard instead of corrupting the
    count at release. Exit runs on normal fall-through, on exceptions,
    and on GeneratorExit when the owning task is killed at a yield
    inside the block, which is what makes ``with res.held():`` the
    structurally leak-free way to hold a grant across yields.
    """

    __slots__ = ("_res",)

    def __init__(self, res: "Resource"):
        self._res = res

    def __enter__(self) -> "HeldGuard":
        if self._res.in_use <= 0:
            raise RuntimeError(
                f"held() guard on {self._res.name!r} entered without a grant"
            )
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._res.release()
        return False


class Resource:
    """A capacity-limited FIFO server.

    Usage from a task::

        yield resource.acquire()
        with resource.held():        # releases on exit, error, or kill
            yield sim.timeout(cost)

    or the one-shot helper ``yield from resource.use(cost)``.

    By default waiters are served in strict FIFO order. A resource can
    instead be switched to *fair-share* mode (:meth:`enable_fair_share`)
    where each waiter carries a group label and grants round-robin
    across groups — the scheduling policy behind per-tenant fair-share
    on Argobots xstreams (DESIGN §13). The FIFO path is untouched by
    the feature: unless fair-share is explicitly enabled, behaviour is
    identical to the original deque, event for event.
    """

    def __init__(self, sim: Simulation, capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        # Cumulative busy integral for utilization reporting.
        self._busy_since: Optional[float] = None
        self._busy_time = 0.0
        # Fair-share mode: per-group FIFO queues plus a rotation list in
        # first-seen order; ``_rr`` points at the next group to serve.
        self._fair = False
        self._group_queues: Dict[str, Deque[Event]] = {}
        self._rotation: List[str] = []
        self._rr = 0

    # ------------------------------------------------------------------
    @property
    def in_use(self) -> int:
        """Number of currently held grants."""
        return self._in_use

    @property
    def fair_share(self) -> bool:
        """Whether grants round-robin across groups instead of FIFO."""
        return self._fair

    @property
    def queue_length(self) -> int:
        """Number of tasks waiting for a grant."""
        if self._fair:
            return sum(
                sum(1 for ev in q if not ev.fired)
                for q in self._group_queues.values()
            )
        return len(self._waiters)

    def enable_fair_share(self) -> None:
        """Switch waiter service from FIFO to round-robin by group.

        Must be called while no waiters are queued (in practice: at
        deployment time, before traffic) so no FIFO waiter's ordering
        guarantee is silently rewritten.
        """
        if self._waiters:
            raise RuntimeError(
                f"enable_fair_share() on {self.name!r} with pending FIFO waiters"
            )
        self._fair = True

    def pending_groups(self) -> List[str]:
        """Groups with at least one pending waiter (fair-share mode)."""
        return sorted(
            g
            for g, q in self._group_queues.items()
            if any(not ev.fired for ev in q)
        )

    def busy_time(self) -> float:
        """Total simulated time during which at least one grant was held."""
        total = self._busy_time
        if self._busy_since is not None:
            total += self.sim.now - self._busy_since
        return total

    # ------------------------------------------------------------------
    def acquire(self, group: Optional[str] = None) -> Event:
        """Event granting a unit of capacity (fires FIFO, or round-robin
        by ``group`` in fair-share mode; ungrouped waiters share the
        ``""`` group there)."""
        ev = Event(self.sim, name=f"{self.name}.acquire")
        if self._in_use < self.capacity:
            self._grant(ev)
        elif not self._fair:
            self._waiters.append(ev)
        else:
            label = group or ""
            queue = self._group_queues.get(label)
            if queue is None:
                queue = self._group_queues[label] = deque()
                self._rotation.append(label)
            queue.append(ev)
        return ev

    def release(self, _grant: object = None) -> None:
        """Return a unit of capacity, waking the next waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError(f"release() on idle resource {self.name!r}")
        self._in_use -= 1
        if self._in_use == 0 and self._busy_since is not None:
            self._busy_time += self.sim.now - self._busy_since
            self._busy_since = None
        if self._fair:
            self._grant_next_fair()
            return
        while self._waiters:
            ev = self._waiters.popleft()
            if ev.fired:
                continue  # cancelled waiter
            self._grant(ev)
            break

    def _grant_next_fair(self) -> None:
        """Serve the next pending group after ``_rr``, round-robin.

        Groups rotate in first-seen order, which is deterministic under
        the kernel's deterministic schedule; a group with no pending
        waiter is skipped without losing its turn marker.
        """
        count = len(self._rotation)
        for offset in range(count):
            index = (self._rr + offset) % count
            queue = self._group_queues[self._rotation[index]]
            while queue:
                ev = queue.popleft()
                if ev.fired:
                    continue  # cancelled waiter
                self._rr = (index + 1) % count
                self._grant(ev)
                return

    def use(self, duration: float, group: Optional[str] = None) -> Generator[Event, object, None]:
        """Acquire, hold for ``duration`` simulated seconds, release.

        Interrupt-safe: an interrupt while queued withdraws the pending
        acquire (releasing the grant if it raced in); an interrupt while
        holding releases the grant.
        """
        grant_ev = self.acquire(group)
        try:
            yield grant_ev
        except BaseException:
            if grant_ev.fired:
                self.release()
            else:
                self.cancel(grant_ev)
            raise
        with self.held():
            yield self.sim.timeout(duration)

    def held(self) -> HeldGuard:
        """Guard releasing one (already acquired) grant on scope exit."""
        return HeldGuard(self)

    def cancel(self, ev: Event) -> None:
        """Withdraw a pending acquire (no-op if already granted)."""
        if self._fair:
            for queue in self._group_queues.values():
                try:
                    queue.remove(ev)
                    return
                except ValueError:
                    continue
            return
        try:
            self._waiters.remove(ev)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    def _grant(self, ev: Event) -> None:
        if self._in_use == 0 and self._busy_since is None:
            self._busy_since = self.sim.now
        self._in_use += 1
        ev.succeed(self)
