"""The kernel's indexed, cancelable priority queue of event firings.

The previous kernel kept a flat ``heapq`` of ``(when, key, thunk)``
tuples. That forces two costs on hot paths:

- a closure allocation per scheduled call (the thunk), even for the
  overwhelmingly common "fire this callback with this argument" case;
- no cancellation: a timer that lost its race (an RPC reply beat the
  timeout) still sits in the heap, still pops, and still schedules a
  dead callback — at scale, RPC-heavy layers (SWIM gossip is one
  timeout per ping) pay double their event budget for nothing.

:class:`EventQueue` keeps the same total order — ``(when, key)``
lexicographic, keys unique so comparison never reaches the payload —
but stores mutable entries ``[when, key, call, arg]`` so a scheduled
call can be *canceled in place* (lazy deletion). Canceled entries
become tombstones: they stay in the heap, lose their payload, and are
skipped on pop. When tombstones outnumber live entries (and exceed a
floor), the heap is compacted: dead entries filtered out, the survivors
re-heapified in O(n).

Determinism: cancellation never reorders anything — live entries keep
their original keys, and a tombstone's pop is invisible (no callback,
no clock movement, no RNG). Two runs of the same seeded program pop
the identical sequence of live entries whether or not compaction
happened to trigger in between.

The queue also keeps the op counters the perf-trajectory harness and
the perf-budget smoke tests assert on: pushes, pops, cancels,
compactions, and the peak number of simultaneously live entries.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, List, Optional, Tuple

__all__ = ["EventQueue", "NO_ARG"]

#: Sentinel argument: ``call()`` instead of ``call(arg)``.
NO_ARG = object()

# Entry layout (a list, so cancel() can mutate it in place).
_WHEN, _KEY, _CALL, _ARG = 0, 1, 2, 3


class EventQueue:
    """Min-heap of ``[when, key, call, arg]`` entries with lazy deletion.

    ``push`` returns the entry itself — that list is the cancellation
    handle. Keys must be unique and monotone in schedule order (the
    kernel's sequence counter, possibly permuted by perturbation mode);
    the queue never compares ``call``/``arg``.
    """

    __slots__ = (
        "_heap", "_live", "_tombstones", "min_compact",
        "pushes", "pops", "cancels", "compactions", "peak_depth",
    )

    def __init__(self, min_compact: int = 64):
        self._heap: List[list] = []
        self._live = 0
        self._tombstones = 0
        #: Compaction floor: never compact below this many tombstones
        #: (rebuilding a tiny heap is all overhead, no win).
        self.min_compact = min_compact
        self.pushes = 0
        self.pops = 0
        self.cancels = 0
        self.compactions = 0
        self.peak_depth = 0

    # ------------------------------------------------------------------
    # introspection
    def __len__(self) -> int:
        """Number of *live* (non-canceled) entries."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    @property
    def tombstones(self) -> int:
        """Canceled entries still physically present in the heap."""
        return self._tombstones

    @property
    def physical_depth(self) -> int:
        """Heap length including tombstones (the memory footprint)."""
        return len(self._heap)

    def stats(self) -> dict:
        """Op counters + current shape, for gauges and bench reports."""
        return {
            "depth": self._live,
            "tombstones": self._tombstones,
            "peak_depth": self.peak_depth,
            "pushes": self.pushes,
            "pops": self.pops,
            "cancels": self.cancels,
            "compactions": self.compactions,
        }

    # ------------------------------------------------------------------
    # scheduling
    def push(self, when: float, key: int, call: Callable, arg: Any = NO_ARG) -> list:
        """Schedule ``call`` (with ``arg``) at ``when``; returns the handle."""
        entry = [when, key, call, arg]
        heapq.heappush(self._heap, entry)
        self._live += 1
        self.pushes += 1
        if self._live > self.peak_depth:
            self.peak_depth = self._live
        return entry

    def push_many(
        self, items: Iterable[Tuple[float, int, Callable, Any]]
    ) -> List[list]:
        """Batch-schedule; returns one handle per item.

        For batches comparable to the heap size this extends + re-heapifies
        in O(n + m) instead of m × O(log n) sift-ups; small batches fall
        back to repeated pushes. Either way the resulting order is the
        heap order — identical to pushing one by one.
        """
        entries = [[when, key, call, arg] for (when, key, call, arg) in items]
        m = len(entries)
        if not m:
            return entries
        heap = self._heap
        # Heapify wins once the batch is within ~log(n) of the heap size.
        if m * 8 >= len(heap):
            heap.extend(entries)
            heapq.heapify(heap)
        else:
            for entry in entries:
                heapq.heappush(heap, entry)
        self._live += m
        self.pushes += m
        if self._live > self.peak_depth:
            self.peak_depth = self._live
        return entries

    # ------------------------------------------------------------------
    # cancellation
    def cancel(self, entry: list) -> bool:
        """Tombstone a pending entry; False if already popped/canceled.

        O(1) (plus an amortized O(n) compaction once tombstones dominate).
        """
        if entry[_CALL] is None:
            return False
        entry[_CALL] = None
        entry[_ARG] = None
        self._live -= 1
        self._tombstones += 1
        self.cancels += 1
        if self._tombstones > self.min_compact and self._tombstones > self._live:
            self.compact()
        return True

    def compact(self) -> None:
        """Drop every tombstone and re-heapify the survivors, O(n)."""
        self._heap = [e for e in self._heap if e[_CALL] is not None]
        heapq.heapify(self._heap)
        self._tombstones = 0
        self.compactions += 1

    # ------------------------------------------------------------------
    # draining
    def peek_when(self) -> Optional[float]:
        """Timestamp of the next live entry (tombstones are discarded)."""
        heap = self._heap
        while heap and heap[0][_CALL] is None:
            heapq.heappop(heap)
            self._tombstones -= 1
        return heap[0][_WHEN] if heap else None

    def pop(self) -> Optional[tuple]:
        """Remove and return ``(when, key, call, arg)``, or None when empty.

        The popped entry's payload is consumed in place, so a handle
        that is canceled *after* its pop (an event that fired while a
        racer held its timer handle) is a clean no-op, not a corrupted
        live count.
        """
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            call = entry[_CALL]
            if call is None:
                self._tombstones -= 1
                continue
            arg = entry[_ARG]
            entry[_CALL] = None
            entry[_ARG] = None
            self._live -= 1
            self.pops += 1
            return (entry[_WHEN], entry[_KEY], call, arg)
        return None

    # ------------------------------------------------------------------
    # controlled selection (the model checker's hooks; never on hot paths)
    def frontier(self, when: float) -> List[list]:
        """All live entries scheduled exactly at ``when``, in key order.

        O(n) over the physical heap — acceptable because only the
        exploration driver (repro.analysis.mcheck) calls it, and only
        at timestamps it is armed for. The returned entries are the
        real handles: pass one to :meth:`take` to consume it.
        """
        return sorted(
            (e for e in self._heap if e[_CALL] is not None and e[_WHEN] == when),
            key=lambda e: e[_KEY],
        )

    def take(self, entry: list) -> Optional[tuple]:
        """Consume a specific live entry out of heap order.

        The payload is consumed in place and the husk stays in the heap
        as a tombstone (counted, so the pop/peek accounting that
        decrements ``_tombstones`` when dead entries surface stays
        balanced). Returns ``(when, key, call, arg)``, or None if the
        entry was already popped/canceled.
        """
        call = entry[_CALL]
        if call is None:
            return None
        arg = entry[_ARG]
        entry[_CALL] = None
        entry[_ARG] = None
        self._live -= 1
        self._tombstones += 1
        self.pops += 1
        return (entry[_WHEN], entry[_KEY], call, arg)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<EventQueue live={self._live} tombstones={self._tombstones} "
            f"peak={self.peak_depth}>"
        )
