"""Hierarchical span/counter tracing for experiments.

Spans form a *tree*: parentage is recorded at begin time —

- within a task, via a per-task span stack (``begin`` pushes, ``end``
  pops), so ``colza.execute`` contains the collective spans it drives;
- across tasks, via spawn inheritance: a task spawned while a span is
  open adopts that span as its ambient parent
  (:meth:`Tracer.inherit`), so concurrent ``stage`` tasks still hang
  off their iteration span;
- across processes, via the RPC trace context: Mercury forwards the
  caller's current span id on the wire and the handler's spans nest
  under it — distributed tracing, one simulated machine at a time.

Async operations whose begin and end live in different execution
contexts (message transits, RDMA) use :meth:`Tracer.begin_async`: the
span records its parent but never becomes anyone's "current" span.

The benchmark harness derives per-iteration timings
(:class:`repro.bench.harness.IterationTiming`) from the span tree via
:class:`repro.telemetry.tree.SpanTree` rather than scraping flat span
lists; :mod:`repro.telemetry.export` turns the same tree into Chrome
``trace_event`` JSON.

Disabled tracing (``tracer.enabled = False``) is a true no-op: spans
begun while disabled are never recorded, and ending them neither
mutates them nor fires ``on_end`` callbacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Union

__all__ = ["Span", "Tracer", "canonical_tags"]


@dataclass
class Span:
    """A named interval of simulated time with free-form tags."""

    name: str
    start: float
    end: Optional[float] = None
    tags: Dict[str, Any] = field(default_factory=dict)
    #: Creation-ordered unique id (-1 for unrecorded spans).
    id: int = -1
    #: Parent span id (None for roots).
    parent: Optional[int] = None
    #: Name of the task that opened the span ("" outside task context).
    task: str = ""
    #: Async spans never sit on a span stack (see Tracer.begin_async).
    detached: bool = False
    #: False when begun while tracing was disabled: the span was dropped
    #: at begin time and end() must treat it as a no-op.
    recorded: bool = True

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} not finished")
        return self.end - self.start


#: Shared no-op spans handed out while tracing is disabled. ``end`` and
#: parent resolution both check ``recorded`` before touching anything,
#: so one frozen instance (id -1, empty tags, never mutated) serves
#: every disabled begin without a per-call Span/dict allocation — the
#: hot layers (fabric, mercury, margo) open spans on every message.
_DISABLED_SPAN = Span(name="<disabled>", start=0.0, recorded=False)
_DISABLED_ASYNC_SPAN = Span(name="<disabled>", start=0.0, detached=True, recorded=False)


class _SpanContext:
    """``with tracer.span("name"):`` — begin/end with exception tagging."""

    __slots__ = ("_tracer", "_name", "_tags", "_parent", "span")

    def __init__(self, tracer: "Tracer", name: str, parent, tags: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._tags = tags
        self._parent = parent
        self.span: Optional[Span] = None

    def __enter__(self) -> Span:
        self.span = self._tracer.begin(self._name, parent=self._parent, **self._tags)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self._tracer.end(self.span)
        else:
            self._tracer.end(self.span, error=exc_type.__name__)
        return None


def canonical_tags(tags: Dict[str, Any]) -> Dict[str, Any]:
    """Deterministically JSON-serializable copy of ``tags`` (or raise).

    Accepted: JSON primitives, lists/tuples/dicts thereof, numpy
    scalars (converted), and objects with a ``uri`` attribute
    (addresses — rendered via ``str``). Anything else raises
    ``TypeError``: default ``repr`` carries memory addresses, which
    would silently break digest stability.
    """
    return {str(k): _canonical(v) for k, v in tags.items()}


def _canonical(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if hasattr(value, "uri"):  # Address-like: stable string form
        return str(value)
    # Numpy scalars (duck-typed to avoid a hard numpy dependency here).
    item = getattr(value, "item", None)
    if item is not None and getattr(value, "shape", None) == ():
        return _canonical(value.item())
    raise TypeError(
        f"span tag value {value!r} ({type(value).__name__}) is not "
        "deterministically serializable; pass a JSON primitive or str() it"
    )


class Tracer:
    """Collects a span tree and counters against the simulated clock."""

    def __init__(self, sim: "Any"):
        self._sim = sim
        self.spans: List[Span] = []
        self.counters: Dict[str, float] = {}
        self.enabled = True
        #: Callbacks invoked with each span as it finishes (invariant
        #: monitors, live dashboards). Exceptions propagate — a checker
        #: failing is a test failure, not something to swallow.
        self.on_end: List[Any] = []
        self._ids = 0
        #: Span stack for code running outside any task.
        self._root_stack: List[Span] = []

    # ------------------------------------------------------------------
    # context plumbing
    def _stack(self, create: bool = False) -> Optional[List[Span]]:
        task = self._sim.current_task
        if task is None:
            return self._root_stack
        stack = task.trace_stack
        if stack is None and create:
            stack = task.trace_stack = []
        return stack

    def current_span(self) -> Optional[Span]:
        """The innermost open span of the current execution context."""
        task = self._sim.current_task
        if task is None:
            return self._root_stack[-1] if self._root_stack else None
        if task.trace_stack:
            return task.trace_stack[-1]
        return task.trace_parent

    def inherit(self, task: "Any") -> None:
        """Adopt the current span as ``task``'s ambient parent (called
        by :meth:`Simulation.spawn` for every new task)."""
        task.trace_parent = self.current_span()

    def _resolve_parent(self, parent: Union[Span, int, None]) -> Optional[int]:
        if parent is None:
            current = self.current_span()
            return current.id if current is not None else None
        if isinstance(parent, Span):
            return parent.id if parent.recorded else None
        return int(parent)

    # ------------------------------------------------------------------
    def begin(self, name: str, parent: Union[Span, int, None] = None, **tags: Any) -> Span:
        """Open a span at the current simulated time.

        Parentage defaults to the current context (span stack, then the
        task's spawn-inherited parent); pass ``parent`` (a span or span
        id, e.g. an RPC trace context) to override.
        """
        if not self.enabled:
            return _DISABLED_SPAN
        span = self._make_span(name, parent, tags, detached=False)
        self._stack(create=True).append(span)
        return span

    def begin_async(self, name: str, parent: Union[Span, int, None] = None, **tags: Any) -> Span:
        """Open a span that never becomes the current span.

        For operations whose end lives in another execution context
        (message transit, RDMA completion): the span records its parent
        for the tree but later ``begin`` calls will not nest under it.
        """
        if not self.enabled:
            return _DISABLED_ASYNC_SPAN
        return self._make_span(name, parent, tags, detached=True)

    def _make_span(self, name: str, parent, tags: Dict[str, Any], detached: bool) -> Span:
        task = self._sim.current_task
        span = Span(
            name=name,
            start=self._sim.now,
            tags=dict(tags),
            id=self._ids,
            parent=self._resolve_parent(parent),
            task=task.name if task is not None else "",
            detached=detached,
        )
        self._ids += 1
        self.spans.append(span)
        return span

    def end(self, span: Span, **tags: Any) -> Span:
        """Close a span at the current simulated time.

        No-op for unrecorded spans (begun while disabled) and for spans
        already ended — disabled tracing and double-ends must not
        mutate state or fire callbacks.
        """
        if not span.recorded or span.end is not None:
            return span
        span.end = self._sim.now
        span.tags.update(tags)
        if not span.detached:
            self._unwind(span)
        for cb in self.on_end:
            cb(span)
        return span

    def _unwind(self, span: Span) -> None:
        """Pop ``span`` (and any unfinished children above it) from the
        stack it lives on. Ending out of task context (e.g. from an
        event callback) may miss the stack; search both."""
        task = self._sim.current_task
        stacks = []
        if task is not None and task.trace_stack:
            stacks.append(task.trace_stack)
        stacks.append(self._root_stack)
        for stack in stacks:
            for i in range(len(stack) - 1, -1, -1):
                if stack[i] is span:
                    del stack[i:]
                    return

    def span(self, name: str, parent: Union[Span, int, None] = None, **tags: Any) -> _SpanContext:
        """Context manager: ``with trace.span("phase") as s: ...``."""
        return _SpanContext(self, name, parent, tags)

    def add(self, counter: str, amount: float = 1.0) -> None:
        """Increment a named counter."""
        if self.enabled:
            self.counters[counter] = self.counters.get(counter, 0.0) + amount

    # ------------------------------------------------------------------
    def find(self, name: str, **tags: Any) -> Iterator[Span]:
        """Finished spans matching name and all given tag values."""
        for span in self.spans:
            if span.name != name or span.end is None:
                continue
            if all(span.tags.get(k) == v for k, v in tags.items()):
                yield span

    def durations(self, name: str, **tags: Any) -> List[float]:
        """Durations of all matching finished spans."""
        return [s.duration for s in self.find(name, **tags)]

    def children_of(self, span: Span) -> List[Span]:
        """Direct children of ``span``, in creation order."""
        return [s for s in self.spans if s.parent == span.id]

    def clear(self) -> None:
        self.spans.clear()
        self.counters.clear()
        self._root_stack.clear()

    # ------------------------------------------------------------------
    # export / summaries
    def to_records(self) -> List[Dict[str, Any]]:
        """Finished spans as deterministic plain dicts (see
        :func:`canonical_tags` for the tag contract)."""
        return [
            {
                "id": s.id,
                "parent": s.parent,
                "name": s.name,
                "task": s.task,
                "start": s.start,
                "end": s.end,
                "tags": canonical_tags(s.tags),
            }
            for s in self.spans
            if s.end is not None
        ]

    def to_json(self, path: str) -> str:
        """Write finished spans + counters to a JSON file.

        Serialization is strict: a non-canonical tag raises instead of
        degrading to ``repr`` (which would embed memory addresses and
        break replay diffing).
        """
        import json

        payload = {"spans": self.to_records(), "counters": dict(self.counters)}
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2)
        return path

    def digest(self) -> str:
        """Stable SHA-256 over all finished spans and counters.

        Canonicalization: spans in creation order with ids/parentage,
        tags via :func:`canonical_tags`, keys sorted, floats via their
        shortest round-trip repr. Two runs of the same seeded program
        produce byte-identical digests — the determinism oracle of the
        chaos suite (same seed ⇒ same digest).
        """
        import hashlib
        import json

        payload = json.dumps(
            {"spans": self.to_records(), "counters": self.counters},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-span-name aggregates: count, total, mean, min, max,
        p50 and p99 (quantiles via the deterministic sketch)."""
        from repro.telemetry.sketch import QuantileSketch

        sketches: Dict[str, QuantileSketch] = {}
        for span in self.spans:
            if span.end is None:
                continue
            sketch = sketches.get(span.name)
            if sketch is None:
                sketch = sketches[span.name] = QuantileSketch()
            sketch.add(span.duration)
        agg: Dict[str, Dict[str, float]] = {}
        for name, sketch in sketches.items():
            agg[name] = {
                "count": sketch.count,
                "total": sketch.total,
                "mean": sketch.total / sketch.count,
                "min": sketch.min,
                "max": sketch.max,
                "p50": sketch.quantile(0.50),
                "p99": sketch.quantile(0.99),
            }
        return agg
