"""Lightweight span/counter tracing for experiments.

The benchmark harness reads per-call durations (e.g. Fig. 9's
``activate``/``stage``/``execute``/``deactivate`` breakdown) from the
tracer rather than instrumenting call sites ad hoc.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["Span", "Tracer"]


@dataclass
class Span:
    """A named interval of simulated time with free-form tags."""

    name: str
    start: float
    end: Optional[float] = None
    tags: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} not finished")
        return self.end - self.start


class Tracer:
    """Collects spans and counters against the simulated clock."""

    def __init__(self, sim: "Any"):
        self._sim = sim
        self.spans: List[Span] = []
        self.counters: Dict[str, float] = {}
        self.enabled = True
        #: Callbacks invoked with each span as it finishes (invariant
        #: monitors, live dashboards). Exceptions propagate — a checker
        #: failing is a test failure, not something to swallow.
        self.on_end: List[Any] = []

    # ------------------------------------------------------------------
    def begin(self, name: str, **tags: Any) -> Span:
        """Open a span at the current simulated time."""
        span = Span(name=name, start=self._sim.now, tags=dict(tags))
        if self.enabled:
            self.spans.append(span)
        return span

    def end(self, span: Span, **tags: Any) -> Span:
        """Close a span at the current simulated time."""
        span.end = self._sim.now
        span.tags.update(tags)
        for cb in self.on_end:
            cb(span)
        return span

    def add(self, counter: str, amount: float = 1.0) -> None:
        """Increment a named counter."""
        if self.enabled:
            self.counters[counter] = self.counters.get(counter, 0.0) + amount

    # ------------------------------------------------------------------
    def find(self, name: str, **tags: Any) -> Iterator[Span]:
        """Finished spans matching name and all given tag values."""
        for span in self.spans:
            if span.name != name or span.end is None:
                continue
            if all(span.tags.get(k) == v for k, v in tags.items()):
                yield span

    def durations(self, name: str, **tags: Any) -> List[float]:
        """Durations of all matching finished spans."""
        return [s.duration for s in self.find(name, **tags)]

    def clear(self) -> None:
        self.spans.clear()
        self.counters.clear()

    # ------------------------------------------------------------------
    # export / summaries
    def to_records(self) -> List[Dict[str, Any]]:
        """Finished spans as plain dicts (JSON-serializable tags only
        if the caller kept them so)."""
        return [
            {"name": s.name, "start": s.start, "end": s.end, "tags": dict(s.tags)}
            for s in self.spans
            if s.end is not None
        ]

    def to_json(self, path: str) -> str:
        """Write finished spans + counters to a JSON file."""
        import json

        payload = {"spans": self.to_records(), "counters": dict(self.counters)}
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, default=str)
        return path

    def digest(self) -> str:
        """Stable SHA-256 over all finished spans and counters.

        Canonicalization: spans in creation order, tags sorted by key
        and rendered through ``str`` for non-JSON values, floats via
        their shortest round-trip repr. Two runs of the same seeded
        program produce byte-identical digests — the determinism oracle
        of the chaos suite (same seed ⇒ same digest).
        """
        import hashlib
        import json

        records = self.to_records()
        payload = json.dumps(
            {"spans": records, "counters": self.counters},
            sort_keys=True,
            default=str,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-span-name aggregate: count, total and mean duration."""
        agg: Dict[str, Dict[str, float]] = {}
        for span in self.spans:
            if span.end is None:
                continue
            entry = agg.setdefault(span.name, {"count": 0, "total": 0.0})
            entry["count"] += 1
            entry["total"] += span.duration
        for entry in agg.values():
            entry["mean"] = entry["total"] / entry["count"]
        return agg
