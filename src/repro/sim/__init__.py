"""Deterministic discrete-event simulation (DES) substrate.

Everything in this reproduction — the Mochi stack, MoNA, the MPI
simulator, the Colza service, and the applications — executes on top of
this kernel. Simulated processes are :class:`~repro.sim.kernel.Task`
objects (Python generators); blocking operations are expressed by
yielding :class:`~repro.sim.kernel.Event` objects, and the kernel
advances a simulated clock deterministically.

The public surface:

- :class:`Simulation` — the event loop and clock.
- :class:`Event`, :class:`Task` — synchronization and control flow.
- :class:`AllOf`, :class:`AnyOf` — event combinators.
- :class:`Resource` — FIFO server with capacity (models cores/NICs).
- :class:`Interrupt`, :class:`Killed` — cancellation machinery.
- :class:`RngRegistry` — named deterministic random streams.
- :mod:`repro.sim.platform` — the cluster model (nodes, transports,
  launch latencies) shared by NA and the benchmarks.
"""

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Killed,
    SimulationError,
    Simulation,
    Task,
    perturbed_ties,
)
from repro.sim.resources import Resource
from repro.sim.rng import RngRegistry
from repro.sim.tiebreak import Controlled, Fifo, Perturbed, TieBreaker, tie_strategy
from repro.sim.trace import Span, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Controlled",
    "Event",
    "Fifo",
    "Interrupt",
    "Killed",
    "Perturbed",
    "Resource",
    "RngRegistry",
    "Simulation",
    "SimulationError",
    "Span",
    "Task",
    "TieBreaker",
    "Tracer",
    "perturbed_ties",
    "tie_strategy",
]
