"""Pluggable same-timestamp tie-breaking strategies (DESIGN §15).

The kernel resolves events scheduled for the same simulated time by a
total order on integer keys. Historically that policy was baked into
``Simulation._schedule_at`` as two inline branches (FIFO sequence
numbers, or a splitmix64 permutation of them under ``perturb_seed``).
This module names the policy: a :class:`TieBreaker` is installed on a
simulation at construction and decides how same-timestamp ties
resolve. Three strategies exist:

- :class:`Fifo` — schedule order (the default). Bit-identical to the
  historical behaviour: every pinned determinism digest is preserved.
- :class:`Perturbed` — the splitmix64 bijection of schedule order used
  by the schedule fuzzer (``repro.analysis.fuzz``); equivalent to
  passing ``perturb_seed`` or using :func:`repro.sim.perturbed_ties`.
- :class:`Controlled` — defers every same-timestamp choice to an
  external exploration driver (``repro.analysis.mcheck``): whenever
  two or more live events share the earliest timestamp, the driver
  picks which fires next. Keys stay FIFO, so a driver that always
  answers ``0`` reproduces the FIFO schedule exactly, and a recorded
  list of choice indices replays any explored interleaving.

The hot path stays hot: strategies install plain attributes on the
simulation (``_perturb_salt``, ``_controller``) at construction time,
so ``_schedule_at`` keeps its inline key computation and the event
loop pays nothing unless a controller is present.

The driver protocol ``Controlled`` defers to (duck-typed; the concrete
implementation is :class:`repro.analysis.mcheck.ScheduleController`):

- ``armed`` (bool attribute) — while false, the kernel pops FIFO and
  calls nothing; scenarios boot under FIFO and arm only around the
  racy window so exploration does not descend into bring-up ties.
- ``choose(sim, when, candidates) -> int`` — called when >= 2 live
  entries share the earliest timestamp; ``candidates`` is the list of
  queue entries in key (FIFO) order; returns the index to fire next.
- ``begin_step(sim, popped)`` — called right before every popped call
  executes (armed or not), so the driver can attribute the SimTSan
  access footprint of the step to the event that caused it.

Simulations built *inside* a scenario (which constructs its own
:class:`~repro.sim.kernel.Simulation`) pick a strategy up ambiently via
:class:`tie_strategy`, mirroring :func:`repro.sim.perturbed_ties`::

    with tie_strategy(Controlled(driver)):
        result = run_scenario("baseline_no_faults", seed=0)
"""

from __future__ import annotations

from typing import Any, Optional

from repro.sim import kernel as _kernel
from repro.sim.kernel import _MASK64, _splitmix64

__all__ = ["Controlled", "Fifo", "Perturbed", "TieBreaker", "tie_strategy"]


class TieBreaker:
    """Strategy deciding how same-timestamp events are ordered."""

    def install(self, sim: Any) -> None:
        raise NotImplementedError


class Fifo(TieBreaker):
    """Schedule order (the historical default): keys are the kernel's
    monotone sequence numbers, untouched."""

    def install(self, sim: Any) -> None:
        sim.perturb_seed = None
        sim._perturb_salt = None
        sim._controller = None


class Perturbed(TieBreaker):
    """Seeded splitmix64 permutation of schedule order — the fuzzer's
    knob, identical to ``Simulation(perturb_seed=seed)``."""

    def __init__(self, seed: int):
        self.seed = seed

    def install(self, sim: Any) -> None:
        sim.perturb_seed = self.seed
        sim._perturb_salt = _splitmix64(self.seed & _MASK64)
        sim._controller = None


class Controlled(TieBreaker):
    """Defer every same-timestamp choice to ``driver`` (see the module
    docstring for the protocol). Keys stay FIFO so choice index 0 at
    every decision point reproduces the FIFO schedule bit-identically."""

    def __init__(self, driver: Any):
        self.driver = driver

    def install(self, sim: Any) -> None:
        sim.perturb_seed = None
        sim._perturb_salt = None
        sim._controller = self.driver


class tie_strategy:
    """Context manager: simulations built inside the block install
    ``tiebreaker`` (unless one is passed explicitly). The exploration
    driver uses this to take over scenario code that constructs its own
    :class:`Simulation`, exactly like :func:`perturbed_ties` does for
    the fuzzer."""

    def __init__(self, tiebreaker: Optional[TieBreaker]):
        self.tiebreaker = tiebreaker
        self._outer: Optional[TieBreaker] = None

    def __enter__(self) -> "tie_strategy":
        self._outer = _kernel._default_tiebreaker
        _kernel._default_tiebreaker = self.tiebreaker
        return self

    def __exit__(self, *exc) -> None:
        _kernel._default_tiebreaker = self._outer
        return None
