"""The discrete-event simulation kernel.

A :class:`Simulation` owns a simulated clock and a priority queue of
pending event firings. Concurrency is expressed with plain Python
generators: a *task* is a generator that ``yield``\\ s :class:`Event`
objects to block and is resumed with the event's value once it fires.
Sub-routines compose with ``yield from`` and may ``return`` values.

Determinism: events scheduled for the same simulated time fire in
schedule order (a monotonically increasing sequence number breaks
ties), so a given program produces an identical trace on every run.
Whether program *correctness* accidentally depends on that FIFO
tie-break order is testable: perturbation mode (``perturb_seed``, or
the :func:`perturbed_ties` context manager used by
``repro.analysis.fuzz``) replaces the sequence number with a seeded
bijective permutation of it, yielding a different — but equally
deterministic — interleaving of same-timestamp events.

Example
-------
>>> sim = Simulation()
>>> def worker(sim, out):
...     yield sim.timeout(2.5)
...     out.append(sim.now)
>>> out = []
>>> _ = sim.spawn(worker(sim, out))
>>> sim.run()
>>> out
[2.5]
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Generator, Iterable, Optional

from repro.sim.equeue import NO_ARG, EventQueue

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Killed",
    "Simulation",
    "SimulationError",
    "Task",
    "perturbed_ties",
]

# A task body: a generator yielding Events and returning an arbitrary value.
Coroutine = Generator["Event", Any, Any]

_MASK64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """A 64-bit bijective mixer (Steele et al.): unique inputs map to
    unique outputs, so perturbed tie-break keys never collide."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


#: Process-wide default perturbation seed, consulted by Simulation()
#: when no explicit ``perturb_seed`` is given. Set via perturbed_ties().
_default_perturb_seed: Optional[int] = None

#: Process-wide default tie-break strategy, consulted by Simulation()
#: when no explicit ``tiebreaker`` is given. Set via
#: :class:`repro.sim.tiebreak.tie_strategy` (the model checker's way of
#: taking over scenario code that builds its own Simulation).
_default_tiebreaker: Optional[Any] = None


class perturbed_ties:
    """Context manager: simulations built inside the block perturb
    their same-timestamp tie-breaking with ``seed``.

    Lets the schedule fuzzer re-run *unmodified* scenario code (which
    constructs its own :class:`Simulation`) under a perturbed schedule::

        with perturbed_ties(7):
            result = run_scenario("baseline_no_faults", seed=0)
    """

    def __init__(self, seed: Optional[int]):
        self.seed = seed
        self._outer: Optional[int] = None

    def __enter__(self) -> "perturbed_ties":
        global _default_perturb_seed
        self._outer = _default_perturb_seed
        _default_perturb_seed = self.seed
        return self

    def __exit__(self, *exc) -> None:
        global _default_perturb_seed
        _default_perturb_seed = self._outer
        return None


class SimulationError(RuntimeError):
    """Raised for kernel-level protocol violations (e.g. double-firing
    an event, yielding a non-event, running a finished simulation)."""


class Interrupt(Exception):
    """Thrown *into* a task by :meth:`Task.interrupt`.

    The interrupted task may catch it to clean up; ``cause`` carries
    the interrupter's reason object.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Killed(Exception):
    """Recorded as the outcome of a task removed with :meth:`Task.kill`."""


class Event:
    """A one-shot occurrence tasks can wait on.

    An event starts *pending*; it is fired exactly once, either with a
    value (:meth:`succeed`) or with an exception (:meth:`fail`). Tasks
    blocked on it are resumed with the value, or have the exception
    thrown into them. Waiting on an already-fired event resumes the
    waiter immediately (at the current simulated time, after currently
    scheduled events) — there is no "missed wakeup".
    """

    __slots__ = ("sim", "name", "_value", "_exc", "_fired", "_callbacks", "_shandle")

    def __init__(self, sim: "Simulation", name: str = ""):
        self.sim = sim
        self.name = name
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._fired = False
        self._callbacks: list[Callable[["Event"], None]] = []
        #: Queue handle of the scheduled firing, for timer events only
        #: (set by Simulation.timeout; enables cancel()).
        self._shandle: Optional[list] = None

    # ------------------------------------------------------------------
    # introspection
    @property
    def fired(self) -> bool:
        """Whether the event has already been triggered."""
        return self._fired

    @property
    def ok(self) -> bool:
        """True once the event fired successfully."""
        return self._fired and self._exc is None

    @property
    def value(self) -> Any:
        """The success value (raises if pending or failed)."""
        if not self._fired:
            raise SimulationError(f"event {self.name!r} has not fired")
        if self._exc is not None:
            raise self._exc
        return self._value

    # ------------------------------------------------------------------
    # firing
    def succeed(self, value: Any = None) -> "Event":
        """Fire the event successfully, resuming all waiters."""
        self._trigger(value, None)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Fire the event with an exception, thrown into all waiters.

        Failing an event that already fired raises
        :class:`SimulationError`: the original outcome may already have
        resumed waiters, so silently swallowing (or overwriting) the
        second verdict would hide a protocol bug.
        """
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        if self._fired:
            raise SimulationError(
                f"fail() on already-fired event {self.name!r} "
                f"(new failure: {exc!r})"
            )
        self._trigger(None, exc)
        return self

    def cancel(self) -> bool:
        """Cancel a pending *timer* event (one made by ``timeout``).

        The scheduled firing is tombstoned in the event queue: the event
        will never fire and its waiters will never resume, so this is
        only safe once no live waiter depends on it (the kernel uses it
        when a race resolved the other way, e.g. an RPC reply beat its
        timeout). Returns False for non-timer events, already-fired
        events, and double cancels.
        """
        if self._fired:
            return False
        handle = self._shandle
        if handle is None:
            return False
        self._shandle = None
        return self.sim._queue.cancel(handle)

    def _trigger(self, value: Any, exc: Optional[BaseException]) -> None:
        if self._fired:
            raise SimulationError(f"event {self.name!r} fired twice")
        self._fired = True
        self._value = value
        self._exc = exc
        callbacks, self._callbacks = self._callbacks, []
        # Callbacks run through the scheduler (same timestamp), never
        # synchronously: the firing task runs to its next yield before
        # any waiter resumes, and long wake-up chains stay iterative
        # (no Python recursion, however deep the dependency graph).
        schedule = self.sim._schedule_call
        for cb in callbacks:
            schedule(cb, self)

    # ------------------------------------------------------------------
    # waiting
    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        """Invoke ``cb(event)`` when the event fires (immediately via the
        scheduler if it already fired)."""
        if self._fired:
            # Preserve run-to-completion semantics: defer to the loop.
            self.sim._schedule_call(cb, self)
        else:
            self._callbacks.append(cb)

    def discard_callback(self, cb: Callable[["Event"], None]) -> None:
        """Remove a previously registered callback if still pending."""
        try:
            self._callbacks.remove(cb)
        except ValueError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self._fired else "pending"
        return f"<Event {self.name!r} {state}>"


class AllOf(Event):
    """Fires once every child event has fired successfully.

    Value is the list of child values in the order given. If any child
    fails, this event fails with that child's exception (first failure
    wins).
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, sim: "Simulation", events: Iterable[Event], name: str = "all_of"):
        super().__init__(sim, name)
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            sim._schedule_call(self.succeed, [])
            return
        for ev in self._children:
            ev.add_callback(self._child_fired)

    def _child_fired(self, ev: Event) -> None:
        if self._fired:
            return
        if not ev.ok:
            self.fail(ev._exc)  # type: ignore[arg-type]
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c.value for c in self._children])


class AnyOf(Event):
    """Fires as soon as any child event fires.

    Value is ``(index, value)`` of the first child to fire; a failing
    first child fails this event.
    """

    __slots__ = ("_children",)

    def __init__(self, sim: "Simulation", events: Iterable[Event], name: str = "any_of"):
        super().__init__(sim, name)
        self._children = list(events)
        if not self._children:
            raise ValueError("AnyOf requires at least one event")
        for idx, ev in enumerate(self._children):
            ev.add_callback(self._make_cb(idx))

    def _make_cb(self, idx: int) -> Callable[[Event], None]:
        def cb(ev: Event) -> None:
            if self._fired:
                return
            if ev.ok:
                self.succeed((idx, ev._value))
            else:
                self.fail(ev._exc)  # type: ignore[arg-type]

        return cb


class Task:
    """A running coroutine, resumable by the kernel.

    Tasks are created through :meth:`Simulation.spawn`. A task's
    completion is itself awaitable via :meth:`join` (or by yielding
    ``task.done`` directly).
    """

    __slots__ = (
        "sim", "name", "gen", "done", "_waiting_on", "_resume_cb",
        "trace_parent", "trace_stack", "clock", "tenant",
    )

    def __init__(self, sim: "Simulation", gen: Coroutine, name: str = ""):
        self.sim = sim
        self.name = name or getattr(gen, "__name__", "task")
        self.gen = gen
        #: Event fired with the task's return value (or failure).
        self.done = Event(sim, name=f"{self.name}.done")
        self._waiting_on: Optional[Event] = None
        self._resume_cb: Optional[Callable[[Event], None]] = None
        #: Ambient parent span inherited from the spawning context and
        #: this task's own span stack (see repro.sim.trace.Tracer).
        self.trace_parent: Optional[Any] = None
        self.trace_stack: Optional[list] = None
        #: Logical clock: number of times the kernel has resumed this
        #: task. Two accesses with the same clock value happened inside
        #: one uninterrupted run slice (no yield between them) — the
        #: happens-before primitive SimTSan builds on.
        self.clock = 0
        #: Tenant attribution for fair-share scheduling: RPC handlers
        #: stamp the tenant owning the work so shared resources (e.g.
        #: an xstream core in fair-share mode) can group by it. None
        #: means unattributed (legacy FIFO behaviour).
        self.tenant: Optional[str] = None

    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        """Whether the task has run to completion (or been killed)."""
        return self.done.fired

    def join(self) -> Event:
        """Event that fires with the task's return value."""
        return self.done

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the task at its current yield.

        Interrupting a finished task raises :class:`SimulationError`:
        there is no yield point left to deliver the interrupt to, so
        the caller is acting on a stale handle (check
        :attr:`finished` first when the race is expected). The task
        may catch the interrupt and continue.
        """
        if self.finished:
            raise SimulationError(
                f"interrupt() on finished task {self.name!r} "
                f"(cause: {cause!r})"
            )
        self._detach()
        self.sim._schedule_call(lambda: self._step(None, Interrupt(cause)))

    def kill(self) -> None:
        """Forcibly terminate the task; ``done`` fails with :class:`Killed`.

        Used by the platform model for process/"node" teardown (e.g. the
        static-restart experiment of Fig. 4).
        """
        if self.finished:
            return
        self._detach()
        self.gen.close()
        self.done.fail(Killed(f"task {self.name} killed"))

    # ------------------------------------------------------------------
    # kernel internals
    def _detach(self) -> None:
        if self._waiting_on is not None and self._resume_cb is not None:
            self._waiting_on.discard_callback(self._resume_cb)
        self._waiting_on = None
        self._resume_cb = None

    def _start(self) -> None:
        self._step(None, None)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        if self.finished:
            return
        # Switch instrumentation: one tick per resume, globally and on
        # the task's own logical clock (plain int bumps — cheap enough
        # to stay unconditional; SimTSan reads them lazily).
        self.sim._switch_epoch += 1
        self.clock += 1
        self.sim._current_task = self
        try:
            if exc is not None:
                target = self.gen.throw(exc)
            else:
                target = self.gen.send(value)
        except StopIteration as stop:
            self.done.succeed(stop.value)
            return
        except Killed as killed:
            self.done.fail(killed)
            return
        except BaseException as err:
            self.done.fail(err)
            if self.sim.strict:
                raise
            return
        finally:
            self.sim._current_task = None
        if not isinstance(target, Event):
            err = SimulationError(
                f"task {self.name!r} yielded {target!r}; tasks must yield Event objects"
            )
            self.done.fail(err)
            raise err
        self._waiting_on = target

        def resume(ev: Event, _task=self) -> None:
            _task._waiting_on = None
            _task._resume_cb = None
            if ev.ok:
                _task._step(ev._value, None)
            else:
                _task._step(None, ev._exc)

        self._resume_cb = resume
        target.add_callback(resume)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else "running"
        return f"<Task {self.name!r} {state}>"


class Simulation:
    """The event loop: simulated clock + deterministic scheduler.

    Parameters
    ----------
    seed:
        Seed for the simulation-owned :class:`~repro.sim.rng.RngRegistry`
        (named deterministic random streams).
    strict:
        When true (default), an uncaught exception in any task aborts
        :meth:`run`; when false, the failure is recorded on the task's
        ``done`` event only.
    perturb_seed:
        When given, same-timestamp tie-breaking follows a seeded
        bijective permutation of the schedule order instead of FIFO —
        still fully deterministic per seed, but a *different*
        interleaving, used by the schedule fuzzer to prove protocol
        correctness does not ride on accidental FIFO order. ``None``
        (the default) falls back to the ambient :func:`perturbed_ties`
        context, then to plain FIFO.
    tiebreaker:
        A :class:`repro.sim.tiebreak.TieBreaker` strategy naming the
        tie-break policy explicitly — ``Fifo()`` (bit-identical to the
        default), ``Perturbed(seed)`` (same as ``perturb_seed=seed``),
        or ``Controlled(driver)`` (the model checker's exploration
        hook). ``None`` falls back to the ambient
        :class:`~repro.sim.tiebreak.tie_strategy` context, then to the
        ``perturb_seed`` resolution above.
    """

    def __init__(
        self,
        seed: int = 0,
        strict: bool = True,
        perturb_seed: Optional[int] = None,
        tiebreaker: Optional[Any] = None,
    ):
        self._now = 0.0
        self._queue = EventQueue()
        self._seq = itertools.count()
        self.strict = strict
        if perturb_seed is None:
            perturb_seed = _default_perturb_seed
        #: The tie-break perturbation seed in force (None = FIFO).
        self.perturb_seed = perturb_seed
        self._perturb_salt = (
            None if perturb_seed is None else _splitmix64(perturb_seed & _MASK64)
        )
        #: Exploration driver for same-timestamp choices (installed by
        #: the Controlled tie-break strategy; None = no interposition).
        self._controller: Optional[Any] = None
        if tiebreaker is None:
            tiebreaker = _default_tiebreaker
        if tiebreaker is not None:
            tiebreaker.install(self)
        #: Global resume counter (see Task.clock).
        self._switch_epoch = 0
        #: Installed SimTSan detector, if any (repro.analysis.simtsan).
        self._simtsan: Optional[Any] = None
        self._current_task: Optional[Task] = None
        self.tasks: list[Task] = []
        # Finished tasks are pruned amortizedly (long runs spawn one
        # task per RPC dispatch; retaining them all is a memory leak).
        self._task_prune_at = 1024
        # Named interception points (see add_interceptor). Kept as a
        # plain dict so un-instrumented runs pay one dict lookup per
        # hook site and nothing more.
        self._interceptors: dict[str, list[Callable[..., Any]]] = {}
        # Deferred import keeps kernel importable standalone.
        from repro.sim.rng import RngRegistry

        self.rng = RngRegistry(seed)
        from repro.sim.trace import Tracer

        self.trace = Tracer(self)
        from repro.telemetry.metrics import MetricsRegistry

        self.metrics = MetricsRegistry()

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def current_task(self) -> Optional[Task]:
        """The task currently executing (None outside task context)."""
        return self._current_task

    # ------------------------------------------------------------------
    # interception points (fault injection / instrumentation)
    def add_interceptor(self, point: str, fn: Callable[..., Any]) -> None:
        """Register ``fn`` at a named interception point.

        Library layers consult points (``"na.send"``, ``"hg.handler"``,
        ``"margo.compute"``, ``"ssg.gossip"``, ...) via :meth:`intercept`
        at well-defined places in their fast paths; fault-injection and
        instrumentation tools hook in without subclassing. Interceptors
        at one point are consulted in registration order; the first
        non-``None`` return value wins.
        """
        self._interceptors.setdefault(point, []).append(fn)

    def remove_interceptor(self, point: str, fn: Callable[..., Any]) -> None:
        """Unregister ``fn`` from ``point`` (no-op if absent)."""
        fns = self._interceptors.get(point)
        if not fns:
            return
        try:
            fns.remove(fn)
        except ValueError:
            return
        if not fns:
            del self._interceptors[point]

    def intercept(self, point: str, *args: Any) -> Any:
        """Consult ``point``; returns the first non-None verdict (or None)."""
        fns = self._interceptors.get(point)
        if not fns:
            return None
        for fn in fns:
            verdict = fn(*args)
            if verdict is not None:
                return verdict
        return None

    # ------------------------------------------------------------------
    # construction of events
    def event(self, name: str = "") -> Event:
        """A fresh manual event."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None, name: str = "timeout") -> Event:
        """Event firing ``delay`` simulated seconds from now.

        The returned event is cancelable (:meth:`Event.cancel`): a timer
        whose race was lost — an RPC reply arriving before its deadline —
        can be withdrawn from the queue instead of firing into nothing.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        ev = Event(self, name)
        ev._shandle = self._schedule_at(self._now + delay, ev.succeed, value)
        return ev

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Combinator: fires when all ``events`` fired (list of values)."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Combinator: fires on the first of ``events`` ((index, value))."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # task management
    def spawn(self, gen: Coroutine, name: str = "") -> Task:
        """Create a task from a generator and schedule its first step."""
        task = Task(self, gen, name)
        if self._current_task is not None:
            task.tenant = self._current_task.tenant
        self.trace.inherit(task)
        self.tasks.append(task)
        if len(self.tasks) >= self._task_prune_at:
            self._prune_tasks()
        self._schedule_call(task._start)
        return task

    def _prune_tasks(self) -> None:
        """Drop finished tasks; amortized O(1) per spawn, deterministic
        (triggered purely by the spawn count, never by memory/GC state)."""
        self.tasks = [t for t in self.tasks if not t.finished]
        self._task_prune_at = max(1024, 2 * len(self.tasks))

    def spawn_at(self, when: float, gen: Coroutine, name: str = "") -> Task:
        """Spawn a task whose first step runs at absolute time ``when``."""
        if when < self._now:
            raise ValueError(f"spawn_at({when}) is in the past (now={self._now})")
        task = Task(self, gen, name)
        if self._current_task is not None:
            task.tenant = self._current_task.tenant
        self.trace.inherit(task)
        self.tasks.append(task)
        self._schedule_at(when, task._start)
        return task

    # ------------------------------------------------------------------
    # the loop
    def run(self, until: Optional[float] = None) -> float:
        """Process events until the queue drains or ``until`` is reached.

        Returns the simulated time at which the run stopped. The clock
        is advanced to ``until`` when given, even if the queue drained
        earlier.
        """
        if self._controller is not None:
            return self._run_controlled(until)
        queue = self._queue
        no_arg = NO_ARG
        while True:
            when = queue.peek_when()
            if when is None or (until is not None and when > until):
                break
            entry = queue.pop()
            self._now = when
            call, arg = entry[2], entry[3]
            if arg is no_arg:
                call()
            else:
                call(arg)
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def step(self) -> bool:
        """Process a single scheduled call; False when queue is empty."""
        ctl = self._controller
        if ctl is None:
            entry = self._queue.pop()
        else:
            entry = self._controlled_take(None)
        if entry is None:
            return False
        self._now = entry[0]
        call, arg = entry[2], entry[3]
        if ctl is not None:
            ctl.begin_step(self, entry)
        if arg is NO_ARG:
            call()
        else:
            call(arg)
        return True

    def _controlled_take(self, until: Optional[float]) -> Optional[tuple]:
        """Select the next event under an exploration driver.

        While the driver is armed and two or more live entries share
        the earliest timestamp, the driver chooses which fires (a
        *choice point*); otherwise this is a plain pop. Returns the
        consumed ``(when, key, call, arg)`` tuple, or None when idle
        (or past ``until``).
        """
        queue = self._queue
        when = queue.peek_when()
        if when is None or (until is not None and when > until):
            return None
        ctl = self._controller
        if ctl.armed:
            candidates = queue.frontier(when)
            if len(candidates) > 1:
                entry = candidates[ctl.choose(self, when, candidates)]
                return queue.take(entry)
        return queue.pop()

    def _run_controlled(self, until: Optional[float]) -> float:
        """The :meth:`run` loop with an exploration driver interposed."""
        ctl = self._controller
        no_arg = NO_ARG
        while True:
            popped = self._controlled_take(until)
            if popped is None:
                break
            self._now = popped[0]
            call, arg = popped[2], popped[3]
            ctl.begin_step(self, popped)
            if arg is no_arg:
                call()
            else:
                call(arg)
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def peek(self) -> Optional[float]:
        """Time of the next scheduled call, or None if idle."""
        return self._queue.peek_when()

    # ------------------------------------------------------------------
    # queue observability (chaos monitors, perf-budget tests, benches)
    @property
    def queue_depth(self) -> int:
        """Live (non-canceled) entries currently scheduled."""
        return len(self._queue)

    @property
    def queue_tombstones(self) -> int:
        """Canceled entries awaiting compaction."""
        return self._queue.tombstones

    def queue_stats(self) -> dict:
        """Event-queue op counters; also publishes them as gauges under
        the ``sim`` metrics scope (``sim.event_queue_*``), so the chaos
        monitor and bench reports observe compaction behaviour."""
        stats = self._queue.stats()
        scope = self.metrics.scope("sim")
        scope.gauge("event_queue_depth").set(stats["depth"])
        scope.gauge("event_queue_tombstones").set(stats["tombstones"])
        scope.gauge("event_queue_peak_depth").set(stats["peak_depth"])
        return stats

    # ------------------------------------------------------------------
    # kernel internals
    def _schedule_at(
        self, when: float, call: Callable[..., Any], arg: Any = NO_ARG
    ) -> list:
        """Schedule ``call`` (optionally with one argument — saving a
        closure allocation on the hottest paths) at absolute time
        ``when``. Returns the queue handle (cancelable)."""
        key = next(self._seq)
        if self._perturb_salt is not None:
            # Bijective, so keys stay unique: same-time events fire in
            # a seeded permutation of schedule order instead of FIFO.
            key = _splitmix64(key ^ self._perturb_salt)
        return self._queue.push(when, key, call, arg)

    def _schedule_call(self, call: Callable[..., Any], arg: Any = NO_ARG) -> list:
        return self._schedule_at(self._now, call, arg)

    def schedule_many(
        self, items: Iterable[tuple], relative: bool = False
    ) -> list:
        """Batch-schedule ``(when, call)`` or ``(when, call, arg)`` items.

        Items are assigned sequence keys in iteration order — exactly
        the order a loop of individual ``timeout``/``_schedule_at``
        calls would have produced — then inserted in one O(n + m)
        heapify when the batch is large. ``relative=True`` interprets
        each ``when`` as a delay from now. Returns the handles.
        """
        now = self._now
        seq = self._seq
        salt = self._perturb_salt
        specs = []
        for item in items:
            when, call = item[0], item[1]
            arg = item[2] if len(item) > 2 else NO_ARG
            if relative:
                if when < 0:
                    raise ValueError(f"negative delay {when!r}")
                when = now + when
            key = next(seq)
            if salt is not None:
                key = _splitmix64(key ^ salt)
            specs.append((when, key, call, arg))
        return self._queue.push_many(specs)
