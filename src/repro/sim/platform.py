"""The cluster model: nodes, process placement, and launch latencies.

Models a Cori-Haswell-like machine: ``nodes`` × ``cores_per_node``
cores, a dragonfly-ish network (we model it as a flat fabric with a
per-transport cost model — see :mod:`repro.na.costmodel`), node-local
shared memory, and a batch launcher (``srun``) whose start-up latency is
what the static-vs-elastic resizing experiment (Fig. 4) measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.kernel import Simulation
from repro.sim.resources import Resource

__all__ = ["Cluster", "LaunchModel", "Node", "PlatformParams"]


@dataclass
class PlatformParams:
    """Tunable constants of the machine model.

    Launch-latency defaults are calibrated against Fig. 4 of the paper:
    a full static restart of an ``n``-process staging area takes 5–40 s
    (mean ≈ 16 s), while launching one extra daemon for an elastic join
    is stable around 3.5 s (SSG propagation adds ~1.5 s on top, modeled
    in :mod:`repro.ssg`).
    """

    cores_per_node: int = 32
    mem_per_node_gb: float = 128.0

    # srun model: delay = base + per_proc * n + lognormal(mu, sigma)
    srun_base_s: float = 4.0
    srun_per_proc_s: float = 0.02
    srun_tail_mu: float = 2.2
    srun_tail_sigma: float = 0.55

    # Launching a single additional daemon (elastic join) is far more
    # predictable: no gang scheduling of a full job step.
    srun_single_base_s: float = 2.5
    srun_single_tail_mu: float = 0.0
    srun_single_tail_sigma: float = 0.30

    # Per-process service bring-up (margo init, library loading).
    service_init_s: float = 0.5
    # Tear-down of a running staging area on SIGKILL.
    kill_s: float = 0.2


@dataclass
class Node:
    """A compute node; cores are a shared FIFO resource."""

    index: int
    cores: Resource = field(repr=False, default=None)  # type: ignore[assignment]

    @property
    def name(self) -> str:
        return f"nid{self.index:05d}"


class Cluster:
    """Node registry + process placement + the launch model."""

    def __init__(
        self,
        sim: Simulation,
        nodes: int = 16,
        params: Optional[PlatformParams] = None,
    ):
        if nodes < 1:
            raise ValueError("cluster needs at least one node")
        self.sim = sim
        self.params = params or PlatformParams()
        self.nodes: List[Node] = [
            Node(i, Resource(sim, self.params.cores_per_node, name=f"nid{i:05d}.cores"))
            for i in range(nodes)
        ]
        self._placement: Dict[str, int] = {}
        self.launcher = LaunchModel(sim, self.params)

    # ------------------------------------------------------------------
    def node(self, index: int) -> Node:
        return self.nodes[index]

    def place(self, proc_name: str, node_index: int) -> Node:
        """Record that a named process lives on a node."""
        if not 0 <= node_index < len(self.nodes):
            raise ValueError(f"node {node_index} out of range")
        self._placement[proc_name] = node_index
        return self.nodes[node_index]

    def node_of(self, proc_name: str) -> Optional[int]:
        return self._placement.get(proc_name)

    def same_node(self, proc_a: str, proc_b: str) -> bool:
        na, nb = self._placement.get(proc_a), self._placement.get(proc_b)
        return na is not None and na == nb

    def __len__(self) -> int:
        return len(self.nodes)


class LaunchModel:
    """Batch-launcher latency model (``srun`` on Cori)."""

    def __init__(self, sim: Simulation, params: PlatformParams):
        self.sim = sim
        self.params = params

    def srun_delay(self, nprocs: int) -> float:
        """Latency to gang-launch a job step of ``nprocs`` processes."""
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        p = self.params
        rng = self.sim.rng.stream("platform.srun")
        if nprocs == 1:
            tail = rng.lognormal(p.srun_single_tail_mu, p.srun_single_tail_sigma)
            return p.srun_single_base_s + tail
        tail = rng.lognormal(p.srun_tail_mu, p.srun_tail_sigma)
        return p.srun_base_s + p.srun_per_proc_s * nprocs + tail

    def service_init_delay(self) -> float:
        """Per-process service bring-up time (margo init, dlopen, ...)."""
        rng = self.sim.rng.stream("platform.init")
        return self.params.service_init_s * float(rng.uniform(0.9, 1.1))

    def kill_delay(self) -> float:
        """Time for SIGKILL + job-step teardown."""
        return self.params.kill_s
