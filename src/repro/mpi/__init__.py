"""An MPI simulator with vendor profiles (the paper's baselines).

The paper compares MoNA against two **black-box** MPI implementations
on Cori: Cray-mpich (vendor-optimized, uGNI-native) and OpenMPI. We
model them the same way the paper treats them — as measured artifacts:

- p2p uses the calibrated Table I curves (including OpenMPI's
  rendezvous cliff at 16 KiB);
- ``reduce``/``allreduce`` and friends use calibrated *collective* cost
  functions anchored on Table II at 512 processes and scaled by tree
  depth for other process counts (vendor collectives are opaque; we
  don't pretend to know their algorithms).

Semantics reproduce what matters for elasticity:

- an :class:`MpiWorld` is created once with a fixed process count —
  there is **no way to add ranks later** (``MPI_COMM_WORLD`` is
  static). :meth:`MpiWorld.grow` raises, which is exactly the
  limitation Colza exists to work around.
- blocking calls *spin*: they hold the rank's core while waiting
  (:meth:`repro.argo.Xstream.spin_wait`), the behaviour footnote 3 of
  the paper contrasts with Argobots-aware MoNA.

The interface intentionally mirrors :class:`repro.mona.MonaComm` so
VTK/IceT controllers can be injected with either (the paper's
dependency-injection design).
"""

from repro.mpi.comm import MpiComm
from repro.mpi.world import MpiWorld, WorldFrozenError

__all__ = ["MpiComm", "MpiWorld", "WorldFrozenError"]
