"""Calibrated collective cost functions for the black-box MPI vendors.

Anchored on Table II (bxor reduce, 512 processes) and the Table I p2p
curves. For process counts other than 512 the reduce anchors scale by
relative tree depth ``log2(P)/log2(512)`` — vendor collectives are
logarithmic in P for the message sizes the paper uses.

Derived collectives are simple compositions documented inline; they
only need to be *consistent and vendor-ranked* (Cray < OpenMPI), since
no paper table constrains them directly.
"""

from __future__ import annotations

import math
from typing import Callable, Dict

from repro.na.costmodel import REDUCE_CALIBRATION_512, get_cost_model, interp_log_size

__all__ = ["collective_time"]

_US = 1e-6


def _depth_factor(procs: int) -> float:
    if procs <= 1:
        return 0.0
    return math.log2(procs) / math.log2(512)


def _reduce_time(profile: str, procs: int, nbytes: int) -> float:
    if procs <= 1:
        return 0.0
    anchors = REDUCE_CALIBRATION_512[profile]
    return interp_log_size(anchors, max(nbytes, 1)) * _US * _depth_factor(procs)


def _bcast_time(profile: str, procs: int, nbytes: int) -> float:
    if procs <= 1:
        return 0.0
    model = get_cost_model(profile)
    # Binomial tree: one p2p per level, ~20% software overhead.
    return math.ceil(math.log2(procs)) * model.p2p_time(nbytes) * 1.2


def _barrier_time(profile: str, procs: int, nbytes: int) -> float:
    if procs <= 1:
        return 0.0
    model = get_cost_model(profile)
    return math.ceil(math.log2(procs)) * model.p2p_time(8) * 1.5


def _gather_time(profile: str, procs: int, nbytes: int) -> float:
    """Binomial gather: data doubles each level toward the root."""
    if procs <= 1:
        return 0.0
    model = get_cost_model(profile)
    total = 0.0
    for level in range(math.ceil(math.log2(procs))):
        total += model.p2p_time(nbytes * (1 << level))
    return total


def _allgather_time(profile: str, procs: int, nbytes: int) -> float:
    """Ring allgather: P-1 steps of one block each."""
    if procs <= 1:
        return 0.0
    model = get_cost_model(profile)
    return (procs - 1) * model.p2p_time(nbytes)


def _alltoall_time(profile: str, procs: int, nbytes: int) -> float:
    if procs <= 1:
        return 0.0
    model = get_cost_model(profile)
    return (procs - 1) * model.p2p_time(nbytes)


def _allreduce_time(profile: str, procs: int, nbytes: int) -> float:
    # Vendor allreduce ~ reduce + bcast, slightly better than the naive sum.
    return 0.9 * (_reduce_time(profile, procs, nbytes) + _bcast_time(profile, procs, nbytes))


_TABLE: Dict[str, Callable[[str, int, int], float]] = {
    "reduce": _reduce_time,
    "allreduce": _allreduce_time,
    "bcast": _bcast_time,
    "barrier": _barrier_time,
    "gather": _gather_time,
    "scatter": _gather_time,  # symmetric tree, same volume profile
    "allgather": _allgather_time,
    "alltoall": _alltoall_time,
    "split": _barrier_time,  # a split costs about an (allgather-ish) sync
}


def collective_time(profile: str, op: str, procs: int, nbytes: int) -> float:
    """Seconds for one ``op`` over ``procs`` ranks moving ``nbytes``/rank."""
    try:
        fn = _TABLE[op]
    except KeyError:
        raise KeyError(f"no cost model for collective {op!r}") from None
    return fn(profile, procs, nbytes)
