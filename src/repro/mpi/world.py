"""The static MPI world.

An :class:`MpiWorld` materializes ``MPI_Init`` for N ranks: endpoints,
one xstream (core) per rank, and ``MPI_COMM_WORLD``. Its defining
feature for this paper is what it *cannot* do: change size. Attempting
to grow raises :class:`WorldFrozenError` — the limitation that makes
elastic in situ analysis impossible on a pure-MPI stack.
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from repro.argo import Xstream
from repro.na.costmodel import get_cost_model
from repro.na.fabric import Fabric
from repro.sim.kernel import Simulation

__all__ = ["MpiWorld", "WorldFrozenError"]


class WorldFrozenError(RuntimeError):
    """MPI cannot add or remove ranks at run time."""


class MpiWorld:
    """A fixed-size set of MPI ranks sharing a fabric.

    Parameters
    ----------
    profile:
        ``"craympich"`` or ``"openmpi"`` — selects the calibrated
        vendor cost model for p2p and collectives.
    """

    _instances = itertools.count()

    def __init__(
        self,
        sim: Simulation,
        fabric: Fabric,
        nprocs: int,
        profile: str = "craympich",
        procs_per_node: int = 32,
        first_node: int = 0,
        name: Optional[str] = None,
        node_of_rank=None,
    ):
        if nprocs < 1:
            raise ValueError("MPI world needs at least one rank")
        if profile not in ("craympich", "openmpi"):
            raise ValueError(f"unknown MPI profile {profile!r}")
        self.sim = sim
        self.fabric = fabric
        self.nprocs = nprocs
        self.profile = profile
        self.model = get_cost_model(profile)
        self.name = name or f"mpi{next(self._instances)}"
        self.xstreams: List[Xstream] = [
            Xstream(sim, name=f"{self.name}.rank{r}") for r in range(nprocs)
        ]
        placement = node_of_rank or (lambda r: first_node + r // procs_per_node)
        self.endpoints = [
            fabric.register(f"{self.name}-rank{r}", placement(r), self.model)
            for r in range(nprocs)
        ]
        from repro.mpi.comm import _CommGroup, MpiComm

        self._world_group = _CommGroup(self, list(range(nprocs)))
        self.comms: List[MpiComm] = [
            MpiComm(self, self._world_group, rank) for rank in range(nprocs)
        ]
        self._finalized = False

    # ------------------------------------------------------------------
    def comm_world(self, rank: int) -> "MpiComm":
        """Rank ``rank``'s handle on MPI_COMM_WORLD."""
        return self.comms[rank]

    def xstream(self, rank: int) -> Xstream:
        return self.xstreams[rank]

    def grow(self, extra_procs: int) -> None:
        """MPI cannot do this — always raises.

        (MPI_Comm_spawn/accept/connect are 'often not implemented by
        vendors or have limited support', §II; the simulator enforces
        the practical reality.)
        """
        raise WorldFrozenError(
            f"cannot add {extra_procs} ranks to a running MPI world: "
            "MPI_COMM_WORLD is fixed at MPI_Init"
        )

    def shrink(self, ranks: List[int]) -> None:
        """Also unavailable without ULFM-style extensions — raises."""
        raise WorldFrozenError("cannot remove ranks from a running MPI world")

    def finalize(self) -> None:
        if self._finalized:
            return
        self._finalized = True
        for ep in self.endpoints:
            self.fabric.deregister(ep)

    @property
    def finalized(self) -> bool:
        return self._finalized

    def __repr__(self) -> str:  # pragma: no cover
        return f"<MpiWorld {self.name!r} nprocs={self.nprocs} profile={self.profile}>"
